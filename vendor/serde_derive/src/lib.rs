//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde shim.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable
//! offline, so this crate parses the item's `TokenStream` directly. It
//! supports exactly what the workspace needs:
//!
//! * non-generic structs — named fields, tuple structs (newtypes serialize
//!   transparently, wider tuples as arrays) and unit structs,
//! * non-generic enums in serde's externally-tagged representation
//!   (`"Variant"` for unit variants, `{"Variant": …}` for data variants).
//!
//! Generics and `#[serde(...)]` attributes are rejected with a compile error
//! rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the shim's `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (the shim's `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated code parses")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

// ---- item model ----

struct Item {
    name: String,
    body: Body,
}

enum Body {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i)?;

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                body: Body::Struct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item {
                name,
                body: Body::Tuple(count_tuple_fields(g.stream())),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                body: Body::Unit,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                body: Body::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, found `{other}`")),
    }
}

/// Skips leading outer attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                match tokens.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
                    other => return Err(format!("malformed attribute: {other:?}")),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Parses `field: Type, ...`, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    Ok(fields)
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket aware).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => {
                    angle_depth += 1;
                    *i += 1;
                }
                '>' => {
                    angle_depth -= 1;
                    *i += 1;
                }
                _ => *i += 1,
            },
            _ => *i += 1,
        }
    }
}

/// Counts tuple-struct fields: top-level commas + 1 (angle-bracket aware).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0usize;
    let mut count = 0usize;
    while i < tokens.len() {
        // Skip attrs/vis then one type.
        let _ = skip_attrs_and_vis(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantFields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                return Err(format!(
                    "serde shim derive does not support explicit discriminants (variant `{name}`)"
                ));
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---- codegen ----

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let stream_body = gen_write_json(item);
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut s = String::from("let mut map = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "map.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(map)");
            s
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut map = ::std::collections::BTreeMap::new();\n\
                             map.insert({vname:?}.to_string(), {inner});\n\
                             ::serde::Value::Object(map)\n}}\n",
                            binds = binders.join(", "),
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut inner = String::from(
                            "let mut fields_map = ::std::collections::BTreeMap::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "fields_map.insert({f:?}.to_string(), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n{inner}\
                             let mut map = ::std::collections::BTreeMap::new();\n\
                             map.insert({vname:?}.to_string(), ::serde::Value::Object(fields_map));\n\
                             ::serde::Value::Object(map)\n}}\n",
                            binds = fields.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         fn write_json(&self, w: &mut ::serde::JsonWriter<'_>) \
         -> ::std::result::Result<(), ::serde::SerError> {{\n{stream_body}\n}}\n}}\n"
    )
}

/// Streaming `write_json` codegen: emits JSON text directly, with **fields
/// in sorted name order** so the bytes match `to_value`'s `BTreeMap`-backed
/// object exactly (the shim's byte-identity contract).
fn gen_write_json(item: &Item) -> String {
    let name = &item.name;

    // `{"a":…,"b":…}` over borrowed field expressions, sorted by name.
    fn object_fields(fields: &[String], access: impl Fn(&str) -> String) -> String {
        let mut sorted: Vec<&String> = fields.iter().collect();
        sorted.sort();
        let mut s = String::from("w.begin_object();\n");
        for (i, f) in sorted.iter().enumerate() {
            if i > 0 {
                s.push_str("w.comma();\n");
            }
            s.push_str(&format!(
                "w.key({f:?});\n::serde::Serialize::write_json({}, w)?;\n",
                access(f)
            ));
        }
        s.push_str("w.end_object();\n");
        s
    }

    fn array_items(exprs: &[String]) -> String {
        let mut s = String::from("w.begin_array();\n");
        for (i, e) in exprs.iter().enumerate() {
            if i > 0 {
                s.push_str("w.comma();\n");
            }
            s.push_str(&format!("::serde::Serialize::write_json({e}, w)?;\n"));
        }
        s.push_str("w.end_array();\n");
        s
    }

    let body = match &item.body {
        Body::Struct(fields) => object_fields(fields, |f| format!("&self.{f}")),
        Body::Tuple(1) => "::serde::Serialize::write_json(&self.0, w)?;\n".to_string(),
        Body::Tuple(n) => {
            let exprs: Vec<String> = (0..*n).map(|i| format!("&self.{i}")).collect();
            array_items(&exprs)
        }
        Body::Unit => "w.write_null();\n".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => {{ w.write_str({vname:?}); }}\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::write_json(f0, w)?;\n".to_string()
                        } else {
                            array_items(&binders)
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             w.begin_object();\nw.key({vname:?});\n{inner}\
                             w.end_object();\n}}\n",
                            binds = binders.join(", "),
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let inner = object_fields(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             w.begin_object();\nw.key({vname:?});\n{inner}\
                             w.end_object();\n}}\n",
                            binds = fields.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!("{body}::std::result::Result::Ok(())")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut s = format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object for struct {name}\", v))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(\
                     obj.get({f:?}).unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| ::serde::DeError::custom(\
                     format!(\"field `{f}` of {name}: {{e}}\")))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Tuple(n) => {
            let mut s = format!(
                "let items = v.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"array for tuple struct {name}\", v))?;\n\
                 if items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected {n} fields for {name}, found {{}}\", items.len())));\n}}\n\
                 ::std::result::Result::Ok({name}(\n"
            );
            for i in 0..*n {
                s.push_str(&format!(
                    "::serde::Deserialize::from_value(&items[{i}])?,\n"
                ));
            }
            s.push_str("))");
            s
        }
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantFields::Tuple(1) => data_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner).map_err(|e| \
                         ::serde::DeError::custom(format!(\
                         \"variant `{vname}` of {name}: {{e}}\")))?)),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let mut arm = format!(
                            "{vname:?} => {{\n\
                             let items = inner.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array for variant {vname}\", inner))?;\n\
                             if items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                             format!(\"expected {n} fields for {name}::{vname}, found {{}}\", \
                             items.len())));\n}}\n\
                             ::std::result::Result::Ok({name}::{vname}(\n"
                        );
                        for i in 0..*n {
                            arm.push_str(&format!(
                                "::serde::Deserialize::from_value(&items[{i}])?,\n"
                            ));
                        }
                        arm.push_str("))\n}\n");
                        data_arms.push_str(&arm);
                    }
                    VariantFields::Named(fields) => {
                        let mut arm = format!(
                            "{vname:?} => {{\n\
                             let obj = inner.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object for variant {vname}\", inner))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n"
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 obj.get({f:?}).unwrap_or(&::serde::Value::Null))\
                                 .map_err(|e| ::serde::DeError::custom(format!(\
                                 \"field `{f}` of {name}::{vname}: {{e}}\")))?,\n"
                            ));
                        }
                        arm.push_str("})\n}\n");
                        data_arms.push_str(&arm);
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(map) if map.len() == 1 => {{\n\
                 let (tag, inner) = map.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                 other => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"string or single-key object for enum {name}\", other)),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}
