//! Minimal vendored shim of the `rand` crate.
//!
//! Provides the exact surface this workspace uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is **xoshiro256++** seeded through SplitMix64 — not
//! upstream's ChaCha12 — so sequences differ from the real crate, but they
//! are fully deterministic per seed, which is all the simulation relies on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator's raw bits
/// (the shim's stand-in for `distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform-range sampler.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`. `lo <= hi` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(uniform_u128(span, rng) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128(span, rng) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw from `[0, span)` via rejection sampling.
fn uniform_u128<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span fits in u64 for every integer type we support.
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span) as u128;
        }
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::from_rng(rng);
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::from_rng(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++ (SplitMix64-seeded).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's small RNG is the same generator.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic per RNG state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..7);
            assert!((3..7).contains(&v));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
