//! Minimal vendored shim of `rand_distr`: the [`Distribution`] trait plus
//! the four distributions the workspace samples ([`Normal`], [`LogNormal`],
//! [`Beta`], [`Poisson`]), implemented with textbook algorithms
//! (Box–Muller, Marsaglia–Tsang, Knuth) over the vendored `rand` shim.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};
use std::fmt;

/// A distribution sampling values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter-validation error for every distribution in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Draws a standard normal via Box–Muller (first component only, so one
/// sample consumes exactly two uniforms — keeps streams deterministic).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be finite and `>= 0`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError("std_dev must be finite and non-negative"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal with the given underlying normal parameters.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Beta(α, β) distribution on `(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: GammaParams,
    beta: GammaParams,
}

impl Beta {
    /// Creates a beta distribution; both shape parameters must be positive.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, ParamError> {
        if !(alpha > 0.0 && alpha.is_finite() && beta > 0.0 && beta.is_finite()) {
            return Err(ParamError("beta shapes must be positive and finite"));
        }
        Ok(Beta {
            alpha: GammaParams::new(alpha),
            beta: GammaParams::new(beta),
        })
    }
}

/// Precomputed Marsaglia–Tsang constants for one Gamma(shape, 1) sampler.
///
/// `d`, `c` and the boost exponent depend only on the shape, so a
/// distribution constructed once and sampled many times (the detector fast
/// path) pays the `sqrt`/division once instead of per draw. The draw
/// sequence and every produced bit are identical to recomputing them per
/// call: the fields hold exactly the values the per-call expressions
/// produced.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GammaParams {
    /// `1/shape` when `shape < 1` (the boost exponent), else `None`.
    boost: Option<f64>,
    /// `eff_shape - 1/3`, where `eff_shape` is `shape + 1` under the boost.
    d: f64,
    /// `1 / sqrt(9 d)`.
    c: f64,
}

impl GammaParams {
    fn new(shape: f64) -> Self {
        let (boost, eff_shape) = if shape < 1.0 {
            (Some(1.0 / shape), shape + 1.0)
        } else {
            (None, shape)
        };
        let d = eff_shape - 1.0 / 3.0;
        GammaParams {
            boost,
            d,
            c: 1.0 / (9.0 * d).sqrt(),
        }
    }

    /// Gamma(shape, 1) via Marsaglia–Tsang, with the α < 1 boost.
    fn draw<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if let Some(inv_shape) = self.boost {
            // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a). The uniform is drawn
            // first, exactly like the pre-cache recursive implementation.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            return self.draw_core(rng) * u.powf(inv_shape);
        }
        self.draw_core(rng)
    }

    fn draw_core<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let (d, c) = (self.d, self.c);
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Beta {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = self.alpha.draw(rng);
        let y = self.beta.draw(rng);
        x / (x + y)
    }
}

/// Poisson(λ) distribution; samples are returned as `f64` like upstream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
    /// Knuth's limit `exp(-λ)`, hoisted out of `sample` (bit-identical: the
    /// constructor evaluates the very expression `sample` used to).
    neg_lambda_exp: f64,
    /// `sqrt(λ)` for the large-λ normal approximation.
    sqrt_lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution; `lambda` must be positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(ParamError("lambda must be positive and finite"));
        }
        Ok(Poisson {
            lambda,
            neg_lambda_exp: (-lambda).exp(),
            sqrt_lambda: lambda.sqrt(),
        })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's product-of-uniforms method.
            let limit = self.neg_lambda_exp;
            let mut product: f64 = rng.gen();
            let mut count = 0u64;
            while product > limit {
                product *= rng.gen::<f64>();
                count += 1;
            }
            count as f64
        } else {
            // Normal approximation with continuity correction for large λ.
            let draw = self.lambda + self.sqrt_lambda * standard_normal(rng);
            draw.round().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let m = mean_of(&xs);
        let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_is_exp_of_normal() {
        let d = LogNormal::new(0.0, 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let expected = (0.25f64 * 0.25 / 2.0).exp(); // E = exp(σ²/2)
        assert!((mean_of(&xs) - expected).abs() < 0.02);
    }

    #[test]
    fn beta_mean_matches() {
        let d = Beta::new(2.0, 6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!((mean_of(&xs) - 0.25).abs() < 0.01); // α/(α+β)
    }

    #[test]
    fn beta_small_shapes() {
        let d = Beta::new(0.5, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!((mean_of(&xs) - 0.5).abs() < 0.02);
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = StdRng::seed_from_u64(5);
        for lambda in [0.5, 4.0, 80.0] {
            let d = Poisson::new(lambda).unwrap();
            let xs: Vec<f64> = (0..30_000).map(|_| d.sample(&mut rng)).collect();
            assert!(xs.iter().all(|&x| x >= 0.0 && x.fract() == 0.0));
            let m = mean_of(&xs);
            assert!(
                (m - lambda).abs() < lambda.sqrt() * 0.1 + 0.05,
                "λ {lambda} mean {m}"
            );
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Poisson::new(0.0).is_err());
    }
}
