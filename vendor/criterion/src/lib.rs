//! Minimal vendored shim of `criterion`: enough harness to run the
//! workspace's benches and print per-benchmark timings. No statistics,
//! plots, or baselines — each benchmark is timed over a fixed measurement
//! window and reported as mean time per iteration.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness handle passed to `criterion_group!` targets.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
            budget: self.measure_for,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.total / bencher.iters as u32
        };
        println!(
            "bench {name:<40} {:>12.3} ns/iter ({} iters)",
            per_iter.as_nanos() as f64,
            bencher.iters
        );
        self
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
