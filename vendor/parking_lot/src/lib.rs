//! Minimal vendored shim of `parking_lot`: `Mutex`/`RwLock` with the
//! no-poisoning guard API, implemented over `std::sync`.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
