//! Minimal vendored shim of the `bytes` crate covering the surface the
//! workspace uses: cheaply-cloneable immutable byte buffers ([`Bytes`]), a
//! growable builder ([`BytesMut`]) and the little-endian cursor methods of
//! the [`Buf`]/[`BufMut`] traits.

#![forbid(unsafe_code)]

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
    /// Cursor for the `Buf` impl (offset from `start`).
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the (remaining) view.
    pub fn len(&self) -> usize {
        self.end - self.start - self.pos
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-slice view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let base = self.start + self.pos;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: base + lo,
            end: base + hi,
            pos: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start + self.pos..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-cursor operations over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread portion as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let b: [u8; 4] = self.chunk()[..4].try_into().expect("4 bytes");
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.pos += cnt;
    }
}

/// Write operations appending to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u32() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(0xdead_beef);
        b.put_slice(b"xy");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 6);
        assert_eq!(frozen.get_u32_le(), 0xdead_beef);
        assert_eq!(frozen.chunk(), b"xy");
    }

    #[test]
    fn slices_share_and_index() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(&b[..2], &[1, 2]);
    }
}
