//! Minimal vendored shim of `serde_json`: RFC 8259 JSON text to and from the
//! serde shim's [`serde::Value`] data model.
//!
//! Integers are emitted and parsed as exact `u64`/`i64` (never routed
//! through `f64`), so 64-bit seeds survive a wire round-trip bit-for-bit.
//! Floats are written in Rust's shortest round-trip form.

#![forbid(unsafe_code)]

use serde::{de::DeserializeOwned, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Error for serialization or parsing failures.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e)
    }
}

// ---- serialization ----

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes a value into a reusable `String` buffer.
///
/// The buffer is cleared first; its capacity is kept, so a caller encoding
/// many messages through one buffer amortises the output allocation
/// (upstream's `to_writer` serves this role).
pub fn to_string_into<T: Serialize + ?Sized>(out: &mut String, value: &T) -> Result<(), Error> {
    out.clear();
    write_value(out, &value.to_value(), None, 0)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite numbers"));
            }
            out.push_str(&x.to_string());
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !map.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

/// Parses a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text.as_bytes())?;
    Ok(T::from_value(&value)?)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let value = parse_value_complete(bytes)?;
    Ok(T::from_value(&value)?)
}

fn parse_value_complete(bytes: &[u8]) -> Result<Value, Error> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword(b"null", Value::Null),
            Some(b't') => self.parse_keyword(b"true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword(b"false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected byte {:?} at offset {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &[u8], value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this repo's
                            // payloads; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("unsupported \\u escape"))?;
                            s.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(Error::new("control character in string")),
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u32>("17").unwrap(), 17);
        assert_eq!(from_str::<i32>("-17").unwrap(), -17);
    }

    #[test]
    fn u64_survives_exactly() {
        let big: u64 = 0xdead_beef_cafe_f00d;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn f64_shortest_form_round_trips() {
        for x in [0.1, 1.0 / 3.0, 2.5e-8, 1234.5678, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x, "{json}");
        }
    }

    #[test]
    fn vec_and_option() {
        let v = vec![Some(1.0f64), None, Some(3.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3.5]");
        assert_eq!(from_str::<Vec<Option<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("{{{").is_err());
        assert!(from_str::<f64>("1.5 x").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
        assert!(from_str::<f64>("").is_err());
    }

    #[test]
    fn pretty_is_indented_and_parses() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }
}
