//! Minimal vendored shim of `serde_json`: RFC 8259 JSON text to and from the
//! serde shim's [`serde::Value`] data model.
//!
//! Integers are emitted and parsed as exact `u64`/`i64` (never routed
//! through `f64`), so 64-bit seeds survive a wire round-trip bit-for-bit.
//! Floats are written in Rust's shortest round-trip form.
//!
//! **Serialization streams.** [`to_string`]/[`to_string_into`]/[`to_vec`]
//! render through [`serde::Serialize::write_json`], which appends JSON text
//! directly to the output buffer — no intermediate [`Value`] tree, no
//! `BTreeMap` nodes or key clones, and numbers go through a non-allocating
//! formatter instead of one `to_string` per number. The original
//! serialize-via-`Value` implementation stays in this crate: it still backs
//! [`to_string_pretty`] and, under `#[cfg(test)]`, serves as the oracle the
//! proptest suite pins the streaming output against byte-for-byte.
//!
//! **Binary codec.** [`to_vec_binary`]/[`to_vec_binary_into`]/
//! [`from_slice_binary`] carry the same [`Value`] data model in a compact
//! self-describing binary form (tag byte per value, LEB128 varints for
//! integers and lengths, raw little-endian `f64`, a per-message key
//! dictionary so repeated object keys cost one varint after their first
//! appearance). It shares the derive machinery end to end — encoding goes
//! through [`Serialize::to_value`] and decoding through
//! `Deserialize::from_value` — and mirrors the JSON path's semantics:
//! non-finite floats are rejected on both encode and decode, and
//! non-negative `I64`s normalize to `U64` exactly as JSON digit text
//! re-parses. A binary round trip is therefore a fixpoint after one pass,
//! and the JSON rendering of a round-tripped tree is byte-identical to the
//! original's — the property suite pins both.

#![forbid(unsafe_code)]

use serde::{de::DeserializeOwned, JsonWriter, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Error for serialization or parsing failures.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e)
    }
}

impl From<serde::SerError> for Error {
    fn from(e: serde::SerError) -> Self {
        Error::new(e)
    }
}

// ---- serialization ----

/// Serializes a value to a JSON string (streaming — no `Value` tree).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut JsonWriter::new(&mut out))?;
    Ok(out)
}

/// Serializes a value to an indented JSON string.
///
/// Pretty output is for humans (persisted calibrations, bench reports), not
/// the wire hot path, so it still renders through the [`Value`] tree.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Serializes a value to JSON bytes (streaming — no `Value` tree).
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes a value into a reusable `String` buffer (streaming — no
/// `Value` tree).
///
/// The buffer is cleared first; its capacity is kept, so a caller encoding
/// many messages through one buffer amortises the output allocation
/// (upstream's `to_writer` serves this role). `wire::encode_frame_into` and
/// the per-session encode buffers ride this path.
pub fn to_string_into<T: Serialize + ?Sized>(out: &mut String, value: &T) -> Result<(), Error> {
    out.clear();
    value.write_json(&mut JsonWriter::new(out))?;
    Ok(())
}

/// The original serialize-via-[`Value`]-tree `to_string`, kept as the
/// byte-identity oracle for the streaming path.
#[cfg(test)]
fn to_string_via_value<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite numbers"));
            }
            out.push_str(&x.to_string());
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !map.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

/// Parses a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text.as_bytes())?;
    Ok(T::from_value(&value)?)
}

/// Parses a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let value = parse_value_complete(bytes)?;
    Ok(T::from_value(&value)?)
}

fn parse_value_complete(bytes: &[u8]) -> Result<Value, Error> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword(b"null", Value::Null),
            Some(b't') => self.parse_keyword(b"true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword(b"false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected byte {:?} at offset {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &[u8], value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this repo's
                            // payloads; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("unsupported \\u escape"))?;
                            s.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err(Error::new("control character in string")),
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

// ---- binary codec ----

/// Tag bytes for the binary encoding of each [`Value`] variant.
///
/// Layout after each tag:
/// - `NULL`, `FALSE`, `TRUE` — nothing.
/// - `UINT` — LEB128 varint of the value. Non-negative `I64`s are
///   normalized here (the JSON path does the same: `5` re-parses as `U64`).
/// - `NEGINT` — LEB128 varint of the magnitude `m = -(n + 1)`, so `-1`
///   encodes `m = 0` and `i64::MIN` encodes `m = i64::MAX as u64`.
/// - `FLOAT` — 8 raw little-endian bytes; non-finite rejected both ways.
/// - `STRING` — varint byte length + UTF-8 bytes.
/// - `ARRAY` — varint element count + encoded elements.
/// - `OBJECT` — varint entry count + (key, value) pairs in `BTreeMap`
///   (sorted) order. A key is either varint `0` followed by varint length +
///   UTF-8 bytes (a new key, appended to the message's key dictionary) or
///   varint `k > 0`, a back-reference to the `k`-th interned key. Repeated
///   keys — every frame after the first object of a batch, every object in
///   an array of structs — cost one or two bytes instead of the full text.
///   The dictionary may start pre-seeded with a static table both sides
///   agree on out of band ([`to_vec_binary_into_with_dict`](crate::to_vec_binary_into_with_dict)),
///   making even first-use protocol keys one back-reference byte.
mod btag {
    pub const NULL: u8 = 0;
    pub const FALSE: u8 = 1;
    pub const TRUE: u8 = 2;
    pub const UINT: u8 = 3;
    pub const NEGINT: u8 = 4;
    pub const FLOAT: u8 = 5;
    pub const STRING: u8 = 6;
    pub const ARRAY: u8 = 7;
    pub const OBJECT: u8 = 8;
}

/// Serializes a value to compact binary bytes.
pub fn to_vec_binary<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = Vec::new();
    write_binary_root(&mut out, &value.to_value(), &[])?;
    Ok(out)
}

/// Serializes a value into a reusable byte buffer (cleared first, capacity
/// kept) — the binary sibling of [`to_string_into`] for wire hot paths.
pub fn to_vec_binary_into<T: Serialize + ?Sized>(
    out: &mut Vec<u8>,
    value: &T,
) -> Result<(), Error> {
    out.clear();
    write_binary_root(out, &value.to_value(), &[])
}

/// Like [`to_vec_binary_into`], but with the key dictionary pre-seeded
/// from `static_keys` — an HPACK-style static table. Keys in the table
/// cost one back-reference byte even on first use, instead of their full
/// text; keys not in the table intern after it exactly as before. The
/// decoder must be given the identical table
/// ([`from_slice_binary_with_dict`]): the table is part of the format the
/// two sides agree on, not discoverable from the bytes.
///
/// `static_keys` must not contain duplicates (a duplicate would desync
/// the encoder's map from the decoder's list; debug builds assert).
pub fn to_vec_binary_into_with_dict<T: Serialize + ?Sized>(
    out: &mut Vec<u8>,
    value: &T,
    static_keys: &[&str],
) -> Result<(), Error> {
    out.clear();
    write_binary_root(out, &value.to_value(), static_keys)
}

/// Parses a value from compact binary bytes produced by [`to_vec_binary`].
pub fn from_slice_binary<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let value = parse_binary_complete(bytes, &[])?;
    Ok(T::from_value(&value)?)
}

/// Parses a value encoded with [`to_vec_binary_into_with_dict`] under the
/// same static key table. Passing a different table than the encoder used
/// yields garbage keys or an out-of-range back-reference error — never
/// silent misdecoding of other value kinds.
pub fn from_slice_binary_with_dict<T: DeserializeOwned>(
    bytes: &[u8],
    static_keys: &[&str],
) -> Result<T, Error> {
    let value = parse_binary_complete(bytes, static_keys)?;
    Ok(T::from_value(&value)?)
}

fn write_binary_root<'a>(
    out: &mut Vec<u8>,
    v: &'a Value,
    static_keys: &'a [&'a str],
) -> Result<(), Error> {
    let mut dict = BinaryKeyDict::default();
    for (i, k) in static_keys.iter().enumerate() {
        let prev = dict.by_key.insert(k, i as u64 + 1);
        debug_assert!(prev.is_none(), "duplicate key {k:?} in static dictionary");
    }
    write_binary_value(out, v, &mut dict)
}

/// Encode-side key dictionary: maps already-seen keys to their 1-based
/// interning index. Lookup only — assignment order is traversal order, so
/// the encoding is deterministic.
#[derive(Default)]
struct BinaryKeyDict<'a> {
    by_key: std::collections::HashMap<&'a str, u64>,
}

fn write_varint(out: &mut Vec<u8>, mut n: u64) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn write_binary_value<'a>(
    out: &mut Vec<u8>,
    v: &'a Value,
    dict: &mut BinaryKeyDict<'a>,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push(btag::NULL),
        Value::Bool(false) => out.push(btag::FALSE),
        Value::Bool(true) => out.push(btag::TRUE),
        Value::U64(n) => {
            out.push(btag::UINT);
            write_varint(out, *n);
        }
        Value::I64(n) if *n >= 0 => {
            out.push(btag::UINT);
            write_varint(out, *n as u64);
        }
        Value::I64(n) => {
            out.push(btag::NEGINT);
            // Two's complement: `!n == -(n + 1)`, a non-negative magnitude.
            write_varint(out, (!*n) as u64);
        }
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new(
                    "binary codec cannot represent non-finite numbers",
                ));
            }
            out.push(btag::FLOAT);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::String(s) => {
            out.push(btag::STRING);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(btag::ARRAY);
            write_varint(out, items.len() as u64);
            for item in items {
                write_binary_value(out, item, dict)?;
            }
        }
        Value::Object(map) => {
            out.push(btag::OBJECT);
            write_varint(out, map.len() as u64);
            for (k, item) in map {
                match dict.by_key.get(k.as_str()) {
                    Some(&idx) => write_varint(out, idx),
                    None => {
                        let idx = dict.by_key.len() as u64 + 1;
                        dict.by_key.insert(k.as_str(), idx);
                        write_varint(out, 0);
                        write_varint(out, k.len() as u64);
                        out.extend_from_slice(k.as_bytes());
                    }
                }
                write_binary_value(out, item, dict)?;
            }
        }
    }
    Ok(())
}

fn parse_binary_complete(bytes: &[u8], static_keys: &[&str]) -> Result<Value, Error> {
    let mut p = BinaryParser {
        bytes,
        pos: 0,
        keys: static_keys.iter().map(|k| k.to_string()).collect(),
    };
    let v = p.parse_value()?;
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing bytes at offset {} of binary value",
            p.pos
        )));
    }
    Ok(v)
}

struct BinaryParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    keys: Vec<String>,
}

impl<'a> BinaryParser<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, Error> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| Error::new("truncated binary value"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos.checked_add(n).ok_or_else(length_overflow)?)
            .ok_or_else(|| Error::new("truncated binary value"))?;
        self.pos += n;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, Error> {
        let mut n: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            let chunk = (byte & 0x7f) as u64;
            if shift == 63 && chunk > 1 {
                return Err(Error::new("varint overflows u64"));
            }
            n |= chunk << shift;
            if byte & 0x80 == 0 {
                return Ok(n);
            }
        }
        Err(Error::new("varint longer than 10 bytes"))
    }

    fn length(&mut self) -> Result<usize, Error> {
        let n = self.varint()?;
        usize::try_from(n).map_err(|_| length_overflow())
    }

    fn utf8(&mut self, len: usize) -> Result<String, Error> {
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|e| Error::new(format!("invalid UTF-8 in binary string: {e}")))
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.byte()? {
            btag::NULL => Ok(Value::Null),
            btag::FALSE => Ok(Value::Bool(false)),
            btag::TRUE => Ok(Value::Bool(true)),
            btag::UINT => Ok(Value::U64(self.varint()?)),
            btag::NEGINT => {
                let m = self.varint()?;
                let m = i64::try_from(m)
                    .map_err(|_| Error::new(format!("negative integer magnitude {m} overflows")))?;
                Ok(Value::I64(!m))
            }
            btag::FLOAT => {
                let raw: [u8; 8] = self.take(8)?.try_into().expect("take(8) yields 8 bytes");
                let x = f64::from_le_bytes(raw);
                if !x.is_finite() {
                    return Err(Error::new(
                        "binary codec cannot represent non-finite numbers",
                    ));
                }
                Ok(Value::F64(x))
            }
            btag::STRING => {
                let len = self.length()?;
                Ok(Value::String(self.utf8(len)?))
            }
            btag::ARRAY => {
                let count = self.length()?;
                // Every element costs at least a tag byte, so `remaining`
                // bounds a hostile count before any allocation.
                let mut items = Vec::with_capacity(count.min(self.remaining()));
                for _ in 0..count {
                    items.push(self.parse_value()?);
                }
                Ok(Value::Array(items))
            }
            btag::OBJECT => {
                let count = self.length()?;
                let mut map = BTreeMap::new();
                for _ in 0..count {
                    let key = match self.varint()? {
                        0 => {
                            let len = self.length()?;
                            let key = self.utf8(len)?;
                            self.keys.push(key.clone());
                            key
                        }
                        idx => self.keys.get(idx as usize - 1).cloned().ok_or_else(|| {
                            Error::new(format!("key back-reference {idx} out of range"))
                        })?,
                    };
                    let value = self.parse_value()?;
                    map.insert(key, value);
                }
                Ok(Value::Object(map))
            }
            other => Err(Error::new(format!(
                "unknown binary tag {other} at offset {}",
                self.pos - 1
            ))),
        }
    }
}

fn length_overflow() -> Error {
    Error::new("binary length overflows usize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u32>("17").unwrap(), 17);
        assert_eq!(from_str::<i32>("-17").unwrap(), -17);
    }

    #[test]
    fn u64_survives_exactly() {
        let big: u64 = 0xdead_beef_cafe_f00d;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn f64_shortest_form_round_trips() {
        for x in [0.1, 1.0 / 3.0, 2.5e-8, 1234.5678, f64::MIN_POSITIVE] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x, "{json}");
        }
    }

    #[test]
    fn vec_and_option() {
        let v = vec![Some(1.0f64), None, Some(3.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3.5]");
        assert_eq!(from_str::<Vec<Option<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("{{{").is_err());
        assert!(from_str::<f64>("1.5 x").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
        assert!(from_str::<f64>("").is_err());
    }

    #[test]
    fn pretty_is_indented_and_parses() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }
}

/// Seeded generators shared by the equivalence and binary-codec suites,
/// biased toward the tricky spots: integer extremes, float edge cases,
/// escape-heavy strings, empty and nested containers.
#[cfg(test)]
mod stream_equivalence_tests_generators {
    use super::Value;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Random string mixing plain ASCII, every escape class, control
    /// characters and multi-byte UTF-8.
    pub fn arb_string(rng: &mut StdRng) -> String {
        const POOL: &[&str] = &[
            "a", "Z", "0", " ", "\"", "\\", "\n", "\r", "\t", "\u{1}", "\u{b}", "\u{1f}", "/", "é",
            "日", "🦀", "\u{7f}", "-", "{", "}", "[", "]", ":", ",",
        ];
        let len = rng.gen_range(0..12);
        (0..len)
            .map(|_| POOL[rng.gen_range(0..POOL.len())])
            .collect()
    }

    pub fn arb_f64(rng: &mut StdRng) -> f64 {
        match rng.gen_range(0..8) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::MIN_POSITIVE,
            3 => f64::MAX,
            4 => -1.0 / 3.0,
            5 => 2.5e-18,
            6 => rng.gen::<f64>() * 1e6 - 5e5,
            _ => rng.gen::<f64>(),
        }
    }

    /// Recursive random `Value` tree.
    pub fn arb_value(rng: &mut StdRng, depth: usize) -> Value {
        let pick = if depth == 0 {
            rng.gen_range(0..6) // leaves only
        } else {
            rng.gen_range(0..8)
        };
        match pick {
            0 => Value::Null,
            1 => Value::Bool(rng.gen()),
            2 => Value::U64(match rng.gen_range(0..3) {
                0 => u64::MAX,
                1 => rng.gen_range(0..100),
                _ => rng.gen(),
            }),
            3 => Value::I64(match rng.gen_range(0..3) {
                0 => i64::MIN,
                1 => -(rng.gen_range(1..100i64)),
                _ => -(rng.gen::<i64>().unsigned_abs().max(1) as i64).saturating_abs(),
            }),
            4 => Value::F64(arb_f64(rng)),
            5 => Value::String(arb_string(rng)),
            6 => {
                let n = rng.gen_range(0..5);
                Value::Array((0..n).map(|_| arb_value(rng, depth - 1)).collect())
            }
            _ => {
                let n = rng.gen_range(0..5);
                Value::Object(
                    (0..n)
                        .map(|_| (arb_string(rng), arb_value(rng, depth - 1)))
                        .collect(),
                )
            }
        }
    }
}

/// Byte-identity suite: the streaming serializer against the original
/// serialize-via-`Value` implementation ([`to_string_via_value`]), which
/// stays in this crate as the oracle.
#[cfg(test)]
mod stream_equivalence_tests {
    use super::stream_equivalence_tests_generators::{arb_f64, arb_string, arb_value};
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_stream_matches_oracle<T: Serialize + ?Sized + std::fmt::Debug>(value: &T) {
        let stream = to_string(value);
        let oracle = to_string_via_value(value);
        match (stream, oracle) {
            (Ok(s), Ok(o)) => assert_eq!(s, o, "streaming vs Value-tree for {value:?}"),
            (Err(_), Err(_)) => {}
            (s, o) => panic!("paths disagree on fallibility for {value:?}: {s:?} vs {o:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Arbitrary `Value` trees serialize to exactly the oracle's bytes,
        /// and the result (when valid JSON) parses back to the same tree.
        #[test]
        fn streaming_matches_value_tree_oracle(seed in proptest::prelude::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = arb_value(&mut rng, 4);
            let stream = to_string(&v);
            let oracle = to_string_via_value(&v);
            match (stream, oracle) {
                (Ok(s), Ok(o)) => {
                    prop_assert_eq!(&s, &o);
                    // Parsing may legitimately re-type a number (`0.0` emits
                    // as `0` and `-0.0` as `-0`, which parse back as
                    // integers), so instead of tree equality the check is
                    // that one parse/serialize pass reaches a fixpoint.
                    let s2 = to_string(&from_str::<Value>(&s).unwrap()).unwrap();
                    let s3 = to_string(&from_str::<Value>(&s2).unwrap()).unwrap();
                    prop_assert_eq!(&s3, &s2);
                }
                (Err(_), Err(_)) => {} // non-finite float somewhere in the tree
                (s, o) => prop_assert!(false, "paths disagree: {:?} vs {:?}", s, o),
            }
        }

        /// Scalar floats: both paths agree byte-for-byte (or both reject
        /// non-finite values).
        #[test]
        fn f64_scalars_match(seed in proptest::prelude::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            assert_stream_matches_oracle(&arb_f64(&mut rng));
        }

        /// Escape-heavy strings match byte-for-byte.
        #[test]
        fn strings_match(seed in proptest::prelude::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            assert_stream_matches_oracle(&arb_string(&mut rng));
        }
    }

    #[test]
    fn integer_extremes_round_trip_exactly() {
        for n in [0u64, 1, u64::MAX - 1, u64::MAX] {
            assert_stream_matches_oracle(&n);
            assert_eq!(from_str::<u64>(&to_string(&n).unwrap()).unwrap(), n);
        }
        for n in [i64::MIN, i64::MIN + 1, -1, 0, i64::MAX] {
            assert_stream_matches_oracle(&n);
            assert_eq!(from_str::<i64>(&to_string(&n).unwrap()).unwrap(), n);
        }
    }

    #[test]
    fn non_finite_floats_error_on_both_paths() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(to_string(&x).is_err());
            assert!(to_string_via_value(&x).is_err());
            // …including when buried inside a container.
            assert!(to_string(&vec![1.0, x]).is_err());
            assert!(to_string_into(&mut String::new(), &Some(x)).is_err());
        }
    }

    #[test]
    fn all_control_characters_escape_identically() {
        let s: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        assert_stream_matches_oracle(&s);
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn deep_nesting_matches() {
        let mut v = Value::U64(7);
        for i in 0..200 {
            v = if i % 2 == 0 {
                Value::Array(vec![v])
            } else {
                let mut m = BTreeMap::new();
                m.insert("k".to_string(), v);
                Value::Object(m)
            };
        }
        assert_stream_matches_oracle(&v);
    }

    #[test]
    fn to_string_into_streams_and_reuses_buffer() {
        let mut buf = String::from("stale");
        to_string_into(&mut buf, &vec![1u32, 2, 3]).unwrap();
        assert_eq!(buf, "[1,2,3]");
        let cap = buf.capacity();
        to_string_into(&mut buf, &9u32).unwrap();
        assert_eq!(buf, "9");
        assert_eq!(buf.capacity(), cap);
    }

    // ---- derive coverage: streaming codegen vs the tree path ----

    use serde::{Deserialize, Serialize};

    /// Declaration order deliberately unsorted: the tree path stores fields
    /// in a `BTreeMap`, so the streaming codegen must emit sorted keys.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Unsorted {
        zeta: f64,
        alpha: u64,
        mid: Option<String>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Newtype(u64);

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Pair(i32, String);

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct UnitMarker;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Mixed {
        Plain,
        One(f64),
        Wide(u8, u8),
        Named { y: i64, x: Vec<bool> },
    }

    #[test]
    fn derived_struct_emits_sorted_keys() {
        let v = Unsorted {
            zeta: 0.5,
            alpha: u64::MAX,
            mid: Some("a\"b".to_string()),
        };
        let json = to_string(&v).unwrap();
        assert_eq!(
            json,
            "{\"alpha\":18446744073709551615,\"mid\":\"a\\\"b\",\"zeta\":0.5}"
        );
        assert_stream_matches_oracle(&v);
        assert_eq!(from_str::<Unsorted>(&json).unwrap(), v);
        let none = Unsorted {
            zeta: -1.25,
            alpha: 0,
            mid: None,
        };
        assert_stream_matches_oracle(&none);
    }

    #[test]
    fn derived_tuple_and_unit_structs_match() {
        assert_stream_matches_oracle(&Newtype(42));
        assert_stream_matches_oracle(&Pair(-3, "x\ty".to_string()));
        assert_stream_matches_oracle(&UnitMarker);
        assert_eq!(to_string(&Newtype(42)).unwrap(), "42");
        assert_eq!(to_string(&UnitMarker).unwrap(), "null");
    }

    #[test]
    fn derived_enum_variants_match() {
        for v in [
            Mixed::Plain,
            Mixed::One(2.5e-8),
            Mixed::Wide(1, 255),
            Mixed::Named {
                y: -9,
                x: vec![true, false],
            },
        ] {
            assert_stream_matches_oracle(&v);
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<Mixed>(&json).unwrap(), v);
        }
        // Named variant fields are sorted too ("x" before "y").
        assert_eq!(
            to_string(&Mixed::Named { y: 1, x: vec![] }).unwrap(),
            "{\"Named\":{\"x\":[],\"y\":1}}"
        );
    }
}

/// Binary codec suite: round trips pinned against the JSON tree serializer
/// as the semantic oracle — a binary round trip must preserve exactly the
/// JSON meaning of the tree (byte-identical re-serialization), reach a
/// fixpoint after one pass, and reject the same values JSON rejects.
#[cfg(test)]
mod binary_codec_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Reuse the equivalence suite's biased generators.
    use super::stream_equivalence_tests_generators::{arb_string, arb_value};

    fn binary_round_trip(v: &Value) -> Value {
        let bytes = to_vec_binary(v).expect("finite tree encodes");
        from_slice_binary::<Value>(&bytes).expect("own encoding decodes")
    }

    /// The JSON rendering of a tree, used as the semantic oracle: two trees
    /// that render identically are the same value on the wire.
    fn json_meaning(v: &Value) -> String {
        to_string_via_value(v).expect("finite tree renders")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Arbitrary trees survive a binary round trip with their JSON
        /// meaning intact, and a second round trip is the identity (the only
        /// re-typing is non-negative `I64` → `U64`, applied on pass one).
        #[test]
        fn round_trip_preserves_json_meaning(seed in proptest::prelude::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = arb_value(&mut rng, 4);
            match to_vec_binary(&v) {
                Ok(bytes) => {
                    let back = from_slice_binary::<Value>(&bytes).unwrap();
                    prop_assert_eq!(json_meaning(&back), json_meaning(&v));
                    let twice = binary_round_trip(&back);
                    prop_assert_eq!(&twice, &back);
                    // Re-encoding the normalized tree is byte-identical.
                    prop_assert_eq!(to_vec_binary(&back).unwrap(), bytes);
                }
                // Encode fails only where JSON also fails: non-finite f64.
                Err(_) => prop_assert!(to_string_via_value(&v).is_err()),
            }
        }

        /// Strings with every escape class and multi-byte UTF-8 round-trip
        /// exactly (no escaping exists in the binary form to get wrong).
        #[test]
        fn strings_round_trip(seed in proptest::prelude::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = arb_string(&mut rng);
            let bytes = to_vec_binary(&s).unwrap();
            prop_assert_eq!(from_slice_binary::<String>(&bytes).unwrap(), s);
        }

        /// Truncating an encoding at any point errors rather than panicking
        /// or mis-decoding (the decoder sees hostile input off the wire).
        #[test]
        fn truncation_always_errors(seed in proptest::prelude::any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let v = arb_value(&mut rng, 3);
            if let Ok(bytes) = to_vec_binary(&v) {
                for cut in 0..bytes.len() {
                    prop_assert!(from_slice_binary::<Value>(&bytes[..cut]).is_err());
                }
            }
        }

        /// A pre-seeded static key table changes the bytes but never the
        /// meaning, for any tree — including trees whose keys aren't in the
        /// table at all (their interned indices shift past the table).
        #[test]
        fn static_dict_round_trip_preserves_json_meaning(seed in proptest::prelude::any::<u64>()) {
            const TABLE: &[&str] = &["id", "objects", "bbox", "score", "a", "b"];
            let mut rng = StdRng::seed_from_u64(seed);
            let v = arb_value(&mut rng, 4);
            let mut bytes = Vec::new();
            if to_vec_binary_into_with_dict(&mut bytes, &v, TABLE).is_ok() {
                let back = from_slice_binary_with_dict::<Value>(&bytes, TABLE).unwrap();
                prop_assert_eq!(json_meaning(&back), json_meaning(&v));
            }
        }
    }

    #[test]
    fn static_dict_saves_first_use_key_bytes() {
        const TABLE: &[&str] = &["id", "score", "bbox"];
        let v: Value = from_str(r#"{"bbox":{"id":2},"id":1,"score":0.5}"#).unwrap();
        let plain = to_vec_binary(&v).unwrap();
        let mut seeded = Vec::new();
        to_vec_binary_into_with_dict(&mut seeded, &v, TABLE).unwrap();
        // Every key is in the table: each first use shrinks from
        // `0, len, text` to a single back-reference byte.
        let key_text_bytes: usize = TABLE.iter().map(|k| 2 + k.len()).sum();
        assert_eq!(seeded.len(), plain.len() - key_text_bytes + TABLE.len());
        let back: Value = from_slice_binary_with_dict(&seeded, TABLE).unwrap();
        assert_eq!(json_meaning(&back), json_meaning(&v));
        // Decoding under the wrong (empty) table must not silently yield
        // the same value: back-references land out of range.
        assert!(from_slice_binary::<Value>(&seeded).is_err());
    }

    #[test]
    fn integer_extremes_round_trip_exactly() {
        for n in [0u64, 1, 127, 128, u64::MAX - 1, u64::MAX] {
            let bytes = to_vec_binary(&n).unwrap();
            assert_eq!(from_slice_binary::<u64>(&bytes).unwrap(), n);
        }
        for n in [i64::MIN, i64::MIN + 1, -129, -128, -1, 0, i64::MAX] {
            let bytes = to_vec_binary(&n).unwrap();
            assert_eq!(from_slice_binary::<i64>(&bytes).unwrap(), n);
        }
    }

    #[test]
    fn nonnegative_i64_normalizes_to_u64_like_json() {
        let bytes = to_vec_binary(&Value::I64(42)).unwrap();
        assert_eq!(from_slice_binary::<Value>(&bytes).unwrap(), Value::U64(42));
        // …and encodes identically to the U64 it means.
        assert_eq!(bytes, to_vec_binary(&Value::U64(42)).unwrap());
    }

    #[test]
    fn non_finite_floats_error_on_encode_and_decode() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(to_vec_binary(&x).is_err());
            assert!(to_vec_binary(&vec![1.0, x]).is_err());
            let mut buf = Vec::new();
            assert!(to_vec_binary_into(&mut buf, &Some(x)).is_err());
            // Hand-built hostile frame: FLOAT tag + non-finite bits.
            let mut raw = vec![super::btag::FLOAT];
            raw.extend_from_slice(&x.to_le_bytes());
            assert!(from_slice_binary::<Value>(&raw).is_err());
        }
    }

    #[test]
    fn deep_nesting_round_trips() {
        let mut v = Value::U64(7);
        for i in 0..200 {
            v = if i % 2 == 0 {
                Value::Array(vec![v])
            } else {
                let mut m = BTreeMap::new();
                m.insert("k".to_string(), v);
                Value::Object(m)
            };
        }
        let bytes = to_vec_binary(&v).unwrap();
        assert_eq!(from_slice_binary::<Value>(&bytes).unwrap(), v);
    }

    #[test]
    fn key_dictionary_compresses_repeated_keys() {
        // An array of identical structs: keys are written once, then cost a
        // one-byte back-reference per object.
        let obj = |n: u64| {
            let mut m = BTreeMap::new();
            m.insert("difficulty".to_string(), Value::F64(0.5));
            m.insert("texture_seed".to_string(), Value::U64(n));
            Value::Object(m)
        };
        let many = Value::Array((0..16).map(obj).collect());
        let bytes = to_vec_binary(&many).unwrap();
        let json = to_string(&many).unwrap();
        assert!(
            bytes.len() * 2 < json.len(),
            "expected <0.5x JSON on key-heavy data: {} vs {}",
            bytes.len(),
            json.len()
        );
        assert_eq!(from_slice_binary::<Value>(&bytes).unwrap(), many);
    }

    #[test]
    fn hostile_inputs_error_cleanly() {
        // Unknown tag.
        assert!(from_slice_binary::<Value>(&[99]).is_err());
        // Empty input.
        assert!(from_slice_binary::<Value>(&[]).is_err());
        // Trailing bytes after a complete value.
        assert!(from_slice_binary::<Value>(&[super::btag::NULL, 0]).is_err());
        // Varint longer than a u64 (11 continuation bytes).
        let long = [
            super::btag::UINT,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x80,
            0x01,
        ];
        assert!(from_slice_binary::<Value>(&long).is_err());
        // Varint that overflows u64 in the 10th byte.
        let overflow = [
            super::btag::UINT,
            0xff,
            0xff,
            0xff,
            0xff,
            0xff,
            0xff,
            0xff,
            0xff,
            0xff,
            0x7f,
        ];
        assert!(from_slice_binary::<Value>(&overflow).is_err());
        // Negative-int magnitude beyond i64::MAX.
        let mut too_neg = vec![super::btag::NEGINT];
        super::write_varint(&mut too_neg, u64::MAX);
        assert!(from_slice_binary::<Value>(&too_neg).is_err());
        // String length pointing past the end of input.
        assert!(from_slice_binary::<Value>(&[super::btag::STRING, 0x20, b'x']).is_err());
        // Hostile array count with no elements behind it.
        let mut huge = vec![super::btag::ARRAY];
        super::write_varint(&mut huge, u64::MAX / 2);
        assert!(from_slice_binary::<Value>(&huge).is_err());
        // Key back-reference into an empty dictionary.
        let mut badref = vec![super::btag::OBJECT];
        super::write_varint(&mut badref, 1);
        super::write_varint(&mut badref, 7); // reference, but nothing interned
        badref.push(super::btag::NULL);
        assert!(from_slice_binary::<Value>(&badref).is_err());
        // Invalid UTF-8 in a string body.
        assert!(from_slice_binary::<Value>(&[super::btag::STRING, 2, 0xff, 0xfe]).is_err());
    }

    // ---- derived structs and enums through the binary path ----

    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Extremes {
        big: u64,
        small: i64,
        text: String,
        maybe: Option<f64>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        New(u64),
        Tuple(i32, String),
        Named { a: Vec<f64>, b: bool },
    }

    #[test]
    fn derived_struct_round_trips_exactly() {
        let v = Extremes {
            big: u64::MAX,
            small: i64::MIN,
            text: "a\"b\\c\nd\te\u{1}é日🦀".to_string(),
            maybe: None,
        };
        let bytes = to_vec_binary(&v).unwrap();
        assert_eq!(from_slice_binary::<Extremes>(&bytes).unwrap(), v);
    }

    #[test]
    fn derived_enum_variants_round_trip() {
        for v in [
            Shape::Unit,
            Shape::New(u64::MAX),
            Shape::Tuple(-3, "x\ty".to_string()),
            Shape::Named {
                a: vec![0.25, -1.5],
                b: true,
            },
        ] {
            let bytes = to_vec_binary(&v).unwrap();
            assert_eq!(from_slice_binary::<Shape>(&bytes).unwrap(), v);
        }
    }

    #[test]
    fn buffer_reuse_clears_and_keeps_capacity() {
        let mut buf = vec![1u8, 2, 3];
        to_vec_binary_into(&mut buf, &vec![1u32, 2, 3]).unwrap();
        let first = buf.clone();
        assert_eq!(from_slice_binary::<Vec<u32>>(&first).unwrap(), [1, 2, 3]);
        let cap = buf.capacity();
        to_vec_binary_into(&mut buf, &9u32).unwrap();
        assert_eq!(from_slice_binary::<u32>(&buf).unwrap(), 9);
        assert!(buf.capacity() >= cap.min(buf.len()));
    }
}
