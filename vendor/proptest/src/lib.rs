//! Minimal vendored shim of `proptest`.
//!
//! Supports the workspace's property tests: the [`proptest!`] macro (with an
//! optional `#![proptest_config(...)]` header), range / `any` / tuple
//! strategies, `prop_map`, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::select`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: cases run from a fixed deterministic seed and
//! there is **no shrinking** — a failing case reports its values via the
//! assertion message instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
pub use rand::Rng as __Rng;
use rand::{SampleUniform, SeedableRng, Standard};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl fmt::Display) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// The deterministic RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of values for one property input.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Strategy for any value of a [`Standard`]-samplable type.
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// Uniformly random value of `T` (full bit range).
pub fn any<T: Standard>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Strategy always yielding a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Combinator modules mirroring upstream's `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy producing vectors with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vector of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy producing `Option<T>` (≈ 25 % `None`, like upstream).
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some(inner)` three times out of four, otherwise `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen::<f64>() < 0.25 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// Uniformly random element of `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.gen_range(0..self.options.len())].clone()
            }
        }
    }
}

/// Everything a test file imports.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs one property's cases; used by the [`proptest!`] expansion.
pub fn run_cases<F>(name: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Deterministic seed per property name so failures reproduce.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    let mut rng = TestRng::seed_from_u64(seed);
    let mut ran = 0u32;
    let mut rejected = 0u32;
    while ran < config.cases {
        match case(&mut rng) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.cases * 16,
                    "property `{name}`: too many prop_assume rejections"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed after {ran} passing cases: {msg}")
            }
        }
    }
}

/// Declares property tests (shim of upstream's macro; no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    stringify!($name),
                    $cfg,
                    |__proptest_rng| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property, reporting generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if cond {} else { fail }` rather than `if !cond` so clippy's
        // neg_cmp_op_on_partial_ord lint cannot fire on float conditions.
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+),
            )));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}` (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}` (left: {:?}, right: {:?}): {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+),
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}` (both: {:?})",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

/// Skips the case (without failing) when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..1.0, n in 3usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..10).contains(&n));
        }

        #[test]
        fn tuples_and_maps(v in (0u32..5, 1u32..4).prop_map(|(a, b)| a * b)) {
            prop_assert!(v < 20);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0i32..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }

        #[test]
        fn select_and_option(
            k in prop::sample::select(vec![1usize, 3, 5]),
            o in prop::option::of(0.5f64..1.0),
        ) {
            prop_assert!(k == 1 || k == 3 || k == 5);
            if let Some(x) = o {
                prop_assert!((0.5..1.0).contains(&x));
            }
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_context() {
        crate::run_cases("demo", ProptestConfig::with_cases(8), |rng| {
            use rand::Rng;
            let x: f64 = rng.gen();
            crate::prop_assert!(x < 0.5, "x was {x}");
            Ok(())
        });
    }
}
