//! Minimal vendored shim of `crossbeam`: the `channel` module with unbounded
//! and bounded MPMC channels and crossbeam's disconnect semantics, built on
//! a `Mutex<VecDeque>` + two `Condvar`s (one for readers waiting on items,
//! one for bounded senders waiting on space).

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
        space: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty (senders still connected).
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived before the deadline (senders still connected).
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a bounded FIFO channel holding at most `cap` queued values.
    ///
    /// [`Sender::send`] blocks while the queue is full (and at least one
    /// receiver is alive), so a slow consumer applies backpressure to its
    /// producers instead of letting the queue grow without bound. A `cap`
    /// of zero is rounded up to one (this shim has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueues a value; fails if every receiver has been dropped.
        ///
        /// On a [`bounded`] channel this blocks while the queue is full,
        /// returning only once space frees up (value enqueued) or every
        /// receiver disappears (value handed back in the error).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match state.cap {
                    Some(cap) if state.items.len() >= cap => {
                        state = self
                            .shared
                            .space
                            .wait(state)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.items.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks until a value is available, all senders are dropped, or the
        /// timeout elapses — whichever happens first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = state.items.pop_front() {
                    drop(state);
                    self.shared.space.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = state.items.pop_front() {
                drop(state);
                self.shared.space.notify_one();
                Ok(v)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers += 1;
            drop(state);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
            let last = state.receivers == 0;
            drop(state);
            if last {
                // Wake bounded senders blocked on space so they observe the
                // disconnect and fail instead of waiting forever.
                self.shared.space.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_order() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_semantics() {
        use std::time::Duration;
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 5);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn crosses_threads() {
        let (tx, rx) = channel::unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_blocks_sender_until_space() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        use std::time::Duration;

        let (tx, rx) = channel::bounded::<u32>(2);
        let sent = Arc::new(AtomicUsize::new(0));
        let sent2 = Arc::clone(&sent);
        let h = std::thread::spawn(move || {
            for i in 0..6 {
                tx.send(i).unwrap();
                sent2.fetch_add(1, Ordering::SeqCst);
            }
        });
        // With the receiver stalled, exactly `cap` sends complete.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sent.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(sent.load(Ordering::SeqCst), 2);
        // Draining unblocks the sender; FIFO order is preserved.
        let mut got = Vec::new();
        for _ in 0..6 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..6).collect::<Vec<_>>());
        assert_eq!(sent.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn bounded_send_fails_when_receiver_drops_mid_block() {
        use std::time::Duration;

        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(0).unwrap();
        let h = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(Duration::from_millis(30));
        drop(rx);
        let res = h.join().unwrap();
        assert!(res.is_err());
    }

    #[test]
    fn bounded_zero_capacity_rounds_up_to_one() {
        let (tx, rx) = channel::bounded::<u32>(0);
        tx.send(9).unwrap();
        assert_eq!(rx.recv().unwrap(), 9);
    }
}
