//! Minimal vendored shim of `serde`.
//!
//! Unlike upstream's visitor architecture, this shim converts through an
//! owned data model ([`Value`]): [`Serialize`] renders a value *into* a
//! [`Value`] tree and [`Deserialize`] rebuilds a value *from* one. The
//! `serde_json` shim then maps [`Value`] to and from JSON text. Integers are
//! carried as `u64`/`i64` (never through `f64`), so `u64` seeds round-trip
//! exactly — the simulation's determinism depends on this.
//!
//! The derive macros come from the vendored `serde_derive` and support
//! non-generic structs (named, tuple, unit) and enums with serde's
//! externally-tagged representation.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The owned data model both traits convert through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (exact).
    U64(u64),
    /// Negative integer (exact).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with ordered keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, when this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when rebuilding a value from the data model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// Type-mismatch helper.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError::custom(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Error produced when rendering a value as JSON text (today: only
/// non-finite floats, which RFC 8259 cannot represent).
#[derive(Debug, Clone, PartialEq)]
pub struct SerError {
    msg: String,
}

impl SerError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        SerError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for SerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for SerError {}

/// Streaming compact-JSON sink for [`Serialize::write_json`].
///
/// Appends JSON text directly to a caller-owned `String`, so serializing a
/// value builds **no intermediate [`Value`] tree** — no `BTreeMap` nodes, no
/// key clones, no per-number `to_string` allocations. Separator discipline
/// is the caller's: composite writers emit their own `,` between items
/// (generated derive code knows each field's position statically).
///
/// Upstream serde separates the data model from the text format; this shim
/// exists solely to feed the vendored `serde_json`, so the writer lives here
/// where both the derive output and the manual `Serialize` impls can reach
/// it. `serde_json` keeps its original tree serializer as the equivalence
/// oracle: every override of [`Serialize::write_json`] must produce exactly
/// the bytes the [`Value`]-tree path produces (object keys in the
/// `BTreeMap`'s sorted order included), and proptest suites in `serde_json`
/// hold the two byte-for-byte equal.
pub struct JsonWriter<'a> {
    out: &'a mut String,
}

impl<'a> JsonWriter<'a> {
    /// Creates a writer appending to `out` (the buffer is not cleared).
    pub fn new(out: &'a mut String) -> Self {
        JsonWriter { out }
    }

    /// Writes `null`.
    pub fn write_null(&mut self) {
        self.out.push_str("null");
    }

    /// Writes `true` or `false`.
    pub fn write_bool(&mut self, b: bool) {
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// Writes an unsigned integer (stack-buffer formatter, no allocation).
    pub fn write_u64(&mut self, mut n: u64) {
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        loop {
            i -= 1;
            buf[i] = b'0' + (n % 10) as u8;
            n /= 10;
            if n == 0 {
                break;
            }
        }
        self.out
            .push_str(std::str::from_utf8(&buf[i..]).expect("digits are ASCII"));
    }

    /// Writes a signed integer (identical text to `n.to_string()`).
    pub fn write_i64(&mut self, n: i64) {
        if n < 0 {
            self.out.push('-');
        }
        self.write_u64(n.unsigned_abs());
    }

    /// Writes a finite float in Rust's shortest round-trip form, straight
    /// into the output buffer (no intermediate `String`).
    ///
    /// # Errors
    ///
    /// Fails on non-finite values, which JSON cannot represent.
    pub fn write_f64(&mut self, x: f64) -> Result<(), SerError> {
        if !x.is_finite() {
            return Err(SerError::custom("JSON cannot represent non-finite numbers"));
        }
        use fmt::Write;
        write!(self.out, "{x}").expect("writing to a String never fails");
        Ok(())
    }

    /// Writes a string literal with RFC 8259 escaping.
    pub fn write_str(&mut self, s: &str) {
        let out = &mut *self.out;
        out.push('"');
        let bytes = s.as_bytes();
        let mut start = 0usize;
        for (i, &b) in bytes.iter().enumerate() {
            // Escapes only ever trigger on ASCII bytes, so the slices below
            // always cut at char boundaries; multi-byte UTF-8 passes through.
            let named: &str = match b {
                b'"' => "\\\"",
                b'\\' => "\\\\",
                b'\n' => "\\n",
                b'\r' => "\\r",
                b'\t' => "\\t",
                b if b < 0x20 => "",
                _ => continue,
            };
            out.push_str(&s[start..i]);
            if named.is_empty() {
                const HEX: &[u8; 16] = b"0123456789abcdef";
                out.push_str("\\u00");
                out.push(HEX[(b >> 4) as usize] as char);
                out.push(HEX[(b & 0xf) as usize] as char);
            } else {
                out.push_str(named);
            }
            start = i + 1;
        }
        out.push_str(&s[start..]);
        out.push('"');
    }

    /// Opens an object.
    pub fn begin_object(&mut self) {
        self.out.push('{');
    }

    /// Closes an object.
    pub fn end_object(&mut self) {
        self.out.push('}');
    }

    /// Opens an array.
    pub fn begin_array(&mut self) {
        self.out.push('[');
    }

    /// Closes an array.
    pub fn end_array(&mut self) {
        self.out.push(']');
    }

    /// Writes the `,` separator between items.
    pub fn comma(&mut self) {
        self.out.push(',');
    }

    /// Writes an escaped object key followed by `:`.
    pub fn key(&mut self, k: &str) {
        self.write_str(k);
        self.out.push(':');
    }

    /// Streams a [`Value`] tree (compact). This is the default
    /// [`Serialize::write_json`] path for types without a direct override.
    pub fn write_value(&mut self, v: &Value) -> Result<(), SerError> {
        match v {
            Value::Null => self.write_null(),
            Value::Bool(b) => self.write_bool(*b),
            Value::U64(n) => self.write_u64(*n),
            Value::I64(n) => self.write_i64(*n),
            Value::F64(x) => self.write_f64(*x)?,
            Value::String(s) => self.write_str(s),
            Value::Array(items) => {
                self.begin_array();
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        self.comma();
                    }
                    self.write_value(item)?;
                }
                self.end_array();
            }
            Value::Object(map) => {
                self.begin_object();
                for (i, (k, item)) in map.iter().enumerate() {
                    if i > 0 {
                        self.comma();
                    }
                    self.key(k);
                    self.write_value(item)?;
                }
                self.end_object();
            }
        }
        Ok(())
    }
}

/// Types renderable into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;

    /// Streams `self` as compact JSON text into `w` without building a
    /// [`Value`] tree.
    ///
    /// The default renders through [`to_value`](Self::to_value); primitives,
    /// std containers and the derive macro override it with direct streaming
    /// code. Every override must emit **exactly** the bytes the default
    /// emits — same escaping, same number text, object keys in sorted
    /// (`BTreeMap`) order — so the two paths stay interchangeable; the
    /// vendored `serde_json` pins them byte-for-byte against its original
    /// tree serializer.
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        w.write_value(&self.to_value())
    }
}

/// Types rebuildable from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization helpers mirroring upstream's `serde::de` module.
pub mod de {
    /// Upstream marks owned-deserializable types with this alias; here every
    /// [`Deserialize`](crate::Deserialize) type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---- impls for primitives ----

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
            fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
                w.write_u64(*self as u64);
                Ok(())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(DeError::expected("unsigned integer", v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
            fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
                // Same text whether the tree path routed through U64 or I64.
                w.write_i64(*self as i64);
                Ok(())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::custom(format!("integer {n} out of range")))?,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        w.write_f64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        w.write_f64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        w.write_bool(*self);
        Ok(())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        w.write_str(self);
        Ok(())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        w.write_str(self);
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        (**self).write_json(w)
    }
}

fn write_json_seq<'t, T: Serialize + 't>(
    items: impl Iterator<Item = &'t T>,
    w: &mut JsonWriter<'_>,
) -> Result<(), SerError> {
    w.begin_array();
    for (i, item) in items.enumerate() {
        if i > 0 {
            w.comma();
        }
        item.write_json(w)?;
    }
    w.end_array();
    Ok(())
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        write_json_seq(self.iter(), w)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        write_json_seq(self.iter(), w)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        write_json_seq(self.iter(), w)
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        match self {
            Some(x) => x.write_json(w),
            None => {
                w.write_null();
                Ok(())
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
            fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
                w.begin_array();
                $(
                    if $idx > 0 {
                        w.comma();
                    }
                    self.$idx.write_json(w)?;
                )+
                w.end_array();
                Ok(())
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, found array of {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// Deliberately no `write_json` override: `Value::Object` re-sorts the
// stringified keys (`BTreeMap<u32, _>` keys 2 and 10 order as "10" < "2"),
// so streaming in `K`-order could diverge from the tree path. Maps are not
// on the wire hot path; the default keeps the byte-identity guarantee.
impl<K: Serialize + fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
    fn write_json(&self, w: &mut JsonWriter<'_>) -> Result<(), SerError> {
        w.write_value(self)
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let v: Option<f64> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::F64(2.5)).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn u64_is_exact() {
        let big: u64 = u64::MAX - 3;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
    }

    #[test]
    fn tuple_round_trip() {
        let t = (1usize, 2.5f64);
        let v = t.to_value();
        assert_eq!(<(usize, f64)>::from_value(&v).unwrap(), t);
    }

    #[test]
    fn array_round_trip() {
        let a = [0.1f64, 0.2, 0.3, 0.4, 0.5];
        let v = a.to_value();
        assert_eq!(<[f64; 5]>::from_value(&v).unwrap(), a);
        assert!(<[f64; 4]>::from_value(&v).is_err());
    }

    #[test]
    fn type_mismatch_reports_kinds() {
        let err = bool::from_value(&Value::U64(1)).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
    }
}
