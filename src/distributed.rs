//! Real distributed deployment: fleet specs, the shared per-device driver,
//! and two interchangeable fleet runners.
//!
//! A *fleet* is one cloud node serving `edges × devices_per_edge` edge
//! sessions. The same [`DeploymentSpec`] drives both runners:
//!
//! * [`run_fleet_in_memory`] — every node in this process, connected over
//!   [`core::transport::memory_listener`]. Deterministic and fast; the
//!   reference result.
//! * [`run_fleet_processes`] — real OS processes (`cloud-node` + one
//!   `edge-node` per edge) talking length-framed JSON over loopback TCP,
//!   orchestrated through a line protocol on stdout (`LISTENING`/`REPORT`/
//!   `STATS`).
//!
//! Because every session's virtual-time result is a pure function of its
//! own message stream (the cloud shards one worker per connection), the two
//! runners produce **bit-identical per-session reports** — pinned by
//! `tests/transport.rs` and checkable any time with
//! `smallbig-orchestrate --mode check`.
//!
//! Wall-clock aggregates in [`NodeStats`] (e.g. `busy_s`) are summed in
//! connection-completion order and are *not* part of the bit-identity
//! contract; compare [`DeploymentReport::sessions`], not the node stats.

use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::AtomicBool;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use datagen::{Dataset, DatasetProfile, SplitId};
use modelzoo::{Detector, ModelKind, SimDetector};
use serde::{Deserialize, Serialize};
use simnet::{LinkModel, LinkTrace, RetryConfig};
use smallbig_core::transport::{
    memory_listener, serve, ConnectOptions, NodeStats, RemoteCloud, ServeOptions, Transport,
};
use smallbig_core::wire::Encoding;
use smallbig_core::{
    AutoscaleConfig, CloudConfig, DifficultCaseDiscriminator, EdgePipeline, OffloadPolicy, Policy,
    SchedulerConfig, SessionConfig, SessionReport, UpdateConfig,
};

// ---------------------------------------------------------------------------
// Spec types
// ---------------------------------------------------------------------------

/// Which synthetic workload the fleet runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitName {
    /// PASCAL VOC 2007 (20 classes).
    Voc07,
    /// The 18-class COCO subset.
    Coco18,
    /// The HELMET dataset (2 classes).
    Helmet,
}

impl SplitName {
    /// Parses the CLI spelling (`voc07` / `coco18` / `helmet`).
    pub fn parse(s: &str) -> Option<SplitName> {
        match s {
            "voc07" => Some(SplitName::Voc07),
            "coco18" => Some(SplitName::Coco18),
            "helmet" => Some(SplitName::Helmet),
            _ => None,
        }
    }

    /// Dataset profile, split id and class count for this workload.
    pub fn materialize(self) -> (DatasetProfile, SplitId, usize) {
        match self {
            SplitName::Voc07 => (DatasetProfile::voc(), SplitId::Voc07, 20),
            SplitName::Coco18 => (DatasetProfile::coco18(), SplitId::Coco18, 18),
            SplitName::Helmet => (DatasetProfile::helmet(), SplitId::Helmet, 2),
        }
    }

    /// The big (cloud-side) detector for this workload.
    pub fn big_model(self) -> SimDetector {
        let (_, split, classes) = self.materialize();
        SimDetector::new(ModelKind::SsdVgg16, split, classes)
    }

    /// The small (edge-side) detector for this workload.
    pub fn small_model(self) -> SimDetector {
        let (_, split, classes) = self.materialize();
        SimDetector::new(ModelKind::VggLiteSsd, split, classes)
    }
}

/// Which offload strategy every edge device runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// The paper's difficult-case discriminator (default thresholds).
    Discriminator,
    /// Upload every frame.
    CloudOnly,
    /// Never upload.
    EdgeOnly,
}

impl PolicySpec {
    /// Parses the CLI spelling (`discriminator` / `cloud-only` / `edge-only`).
    pub fn parse(s: &str) -> Option<PolicySpec> {
        match s {
            "discriminator" => Some(PolicySpec::Discriminator),
            "cloud-only" => Some(PolicySpec::CloudOnly),
            "edge-only" => Some(PolicySpec::EdgeOnly),
            _ => None,
        }
    }

    /// The edge pipeline and policy object this spec stands for, mirroring
    /// the [`smallbig_core::RuntimeMode`] mapping.
    pub fn build(self) -> (EdgePipeline, Box<dyn OffloadPolicy>) {
        match self {
            PolicySpec::Discriminator => (
                EdgePipeline::Full,
                Box::new(DifficultCaseDiscriminator::default()),
            ),
            PolicySpec::CloudOnly => (EdgePipeline::Bypass, Box::new(Policy::CloudOnly)),
            PolicySpec::EdgeOnly => (EdgePipeline::ModelOnly, Box::new(Policy::EdgeOnly)),
        }
    }
}

/// Which static link model each session uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkSpec {
    /// The paper's shared WLAN.
    Wlan,
    /// A faster association.
    FastWifi,
    /// A cellular uplink.
    Cellular,
}

impl LinkSpec {
    /// Parses the CLI spelling (`wlan` / `fast-wifi` / `cellular`).
    pub fn parse(s: &str) -> Option<LinkSpec> {
        match s {
            "wlan" => Some(LinkSpec::Wlan),
            "fast-wifi" => Some(LinkSpec::FastWifi),
            "cellular" => Some(LinkSpec::Cellular),
            _ => None,
        }
    }

    /// The concrete link model.
    pub fn build(self) -> LinkModel {
        match self {
            LinkSpec::Wlan => LinkModel::wlan(),
            LinkSpec::FastWifi => LinkModel::fast_wifi(),
            LinkSpec::Cellular => LinkModel::cellular(),
        }
    }
}

/// Optional dynamic overlay on the static link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceSpec {
    /// No trace: the static fast path.
    None,
    /// A trace that never degrades (exercises the traced code path while
    /// staying loss-free).
    Constant,
    /// One total outage window.
    Outage {
        /// Outage start (virtual seconds).
        start_s: f64,
        /// Outage duration (virtual seconds).
        duration_s: f64,
    },
    /// Gilbert–Elliott bursty loss, seeded.
    Bursty {
        /// Seed for the sojourn-time RNG.
        seed: u64,
    },
}

impl TraceSpec {
    /// Parses the CLI spelling (`none` / `constant` / `outage:START,DUR` /
    /// `bursty:SEED`).
    pub fn parse(s: &str) -> Option<TraceSpec> {
        if s == "none" {
            return Some(TraceSpec::None);
        }
        if s == "constant" {
            return Some(TraceSpec::Constant);
        }
        if let Some(rest) = s.strip_prefix("outage:") {
            let (a, b) = rest.split_once(',')?;
            return Some(TraceSpec::Outage {
                start_s: a.parse().ok()?,
                duration_s: b.parse().ok()?,
            });
        }
        if let Some(rest) = s.strip_prefix("bursty:") {
            return Some(TraceSpec::Bursty {
                seed: rest.parse().ok()?,
            });
        }
        None
    }

    /// The concrete trace, if any.
    pub fn build(self) -> Option<LinkTrace> {
        match self {
            TraceSpec::None => None,
            TraceSpec::Constant => Some(LinkTrace::constant()),
            TraceSpec::Outage {
                start_s,
                duration_s,
            } => Some(LinkTrace::step_outage(start_s, duration_s)),
            TraceSpec::Bursty { seed } => Some(LinkTrace::bursty(seed, 120.0, 3.0, 1.5, 0.9)),
        }
    }
}

/// Cloud-node configuration (the serializable face of [`CloudConfig`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudSpec {
    /// Seed for the cloud's uplink-jitter RNG stream.
    pub seed: u64,
    /// Maximum frames fused into one big-model batch.
    pub max_batch: usize,
    /// Big-model inference threads (wall-clock only; never virtual time).
    pub workers: usize,
    /// Which scheduler forms batches.
    pub scheduler: SchedulerConfig,
    /// Admission control queue limit, if any.
    pub queue_limit: Option<usize>,
    /// Deterministic autoscaling of the inference pool, if any.
    pub autoscale: Option<AutoscaleConfig>,
    /// Cloud-driven calibration update loop, if any (`None` keeps the
    /// deployment bit-identical to pre-update builds). Spec JSON written
    /// before the update loop existed still parses: missing fields
    /// deserialize as `null`, which an `Option` reads as `None`.
    pub updates: Option<UpdateConfig>,
}

impl Default for CloudSpec {
    fn default() -> Self {
        let base = CloudConfig::default();
        CloudSpec {
            seed: base.seed,
            max_batch: base.max_batch,
            workers: base.workers,
            scheduler: base.scheduler,
            queue_limit: base.queue_limit,
            autoscale: base.autoscale,
            updates: base.updates,
        }
    }
}

impl CloudSpec {
    /// The concrete [`CloudConfig`] (default device, empty fault plan).
    pub fn build(&self) -> CloudConfig {
        CloudConfig {
            seed: self.seed,
            max_batch: self.max_batch,
            workers: self.workers,
            scheduler: self.scheduler,
            queue_limit: self.queue_limit,
            autoscale: self.autoscale,
            updates: self.updates,
            ..CloudConfig::default()
        }
    }
}

/// Per-device edge configuration, identical across the fleet (per-session
/// variety comes from the session id folded into seeds and dataset names).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeSpec {
    /// Offload strategy.
    pub policy: PolicySpec,
    /// Static link model.
    pub link: LinkSpec,
    /// Dynamic link overlay.
    pub trace: TraceSpec,
    /// Square frame edge length in pixels.
    pub frame_px: usize,
    /// Optional per-frame latency deadline (virtual seconds).
    pub deadline_s: Option<f64>,
    /// Base seed for session RNG streams (xored with the session id).
    pub session_seed: u64,
    /// Backoff schedule — used both for traced virtual-time retransmits
    /// and for real TCP reconnects in the process runner.
    pub retry: RetryConfig,
    /// Frame encoding edges request in the handshake. `None` (and old
    /// serialized specs, which lack the field) means JSON.
    pub encoding: Option<Encoding>,
    /// Whether each edge node multiplexes all its devices' sessions over
    /// one connection instead of dialing per device. `None` (and old
    /// specs) means no.
    pub mux: Option<bool>,
}

impl Default for EdgeSpec {
    fn default() -> Self {
        EdgeSpec {
            policy: PolicySpec::Discriminator,
            link: LinkSpec::Wlan,
            trace: TraceSpec::None,
            frame_px: 96,
            deadline_s: None,
            session_seed: 0xeed5,
            retry: RetryConfig::default(),
            encoding: None,
            mux: None,
        }
    }
}

impl EdgeSpec {
    /// The wire encoding this spec asks for (JSON when unset).
    pub fn wire_encoding(&self) -> Encoding {
        self.encoding.unwrap_or_default()
    }

    /// Whether this spec asks each edge node to multiplex its devices over
    /// a single connection.
    pub fn mux_enabled(&self) -> bool {
        self.mux == Some(true)
    }
}

/// A whole deployment: one cloud node and `edges × devices_per_edge`
/// sessions over a common workload.
///
/// Not to be confused with [`smallbig_core::fleet::FleetSpec`], which
/// describes a *simulated population* for the in-process fleet engine;
/// a `DeploymentSpec` describes real nodes (processes, connections,
/// wire encodings). Both were briefly named `FleetSpec`, which made
/// every quickstart ambiguous — this one is the deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentSpec {
    /// Number of edge nodes (processes in the process runner).
    pub edges: usize,
    /// Devices (sessions) per edge node, driven sequentially.
    pub devices_per_edge: usize,
    /// Frames each device streams.
    pub frames_per_device: usize,
    /// Workload.
    pub split: SplitName,
    /// Base seed for per-session dataset generation.
    pub dataset_seed: u64,
    /// Cloud-node configuration.
    pub cloud: CloudSpec,
    /// Edge-device configuration.
    pub edge: EdgeSpec,
}

impl Default for DeploymentSpec {
    fn default() -> Self {
        DeploymentSpec {
            edges: 2,
            devices_per_edge: 1,
            frames_per_device: 8,
            split: SplitName::Helmet,
            dataset_seed: 0xda7a,
            cloud: CloudSpec::default(),
            edge: EdgeSpec::default(),
        }
    }
}

impl DeploymentSpec {
    /// Total sessions in the fleet.
    pub fn total_sessions(&self) -> usize {
        self.edges * self.devices_per_edge
    }

    /// The session id of device `device` on edge `edge` — the one global
    /// numbering both runners share.
    pub fn session_id(&self, edge: usize, device: usize) -> u64 {
        (edge * self.devices_per_edge + device) as u64
    }

    /// The [`SessionConfig`] for `session`, derived deterministically from
    /// the spec so every runner builds the identical session.
    pub fn session_config(&self, session: u64) -> SessionConfig {
        let (_, _, classes) = self.split.materialize();
        let (pipeline, _) = self.edge.policy.build();
        SessionConfig {
            link: self.edge.link.build(),
            frame_size: (self.edge.frame_px, self.edge.frame_px),
            seed: self.edge.session_seed ^ session,
            deadline_s: self.edge.deadline_s,
            pipeline,
            link_trace: self.edge.trace.build(),
            retry: self.edge.retry,
            ..SessionConfig::new(classes)
        }
    }

    /// The dataset device `session` streams.
    pub fn dataset(&self, session: u64) -> Dataset {
        let (profile, _, _) = self.split.materialize();
        Dataset::generate(
            &format!("edge{session}"),
            &profile,
            self.frames_per_device,
            self.dataset_seed.wrapping_add(session),
        )
    }
}

// ---------------------------------------------------------------------------
// The shared device driver
// ---------------------------------------------------------------------------

/// Streams one device's frames through an established [`RemoteCloud`]
/// connection in lockstep (submit, then poll) and returns the session
/// report. Both the in-memory runner and the `edge-node` binary call this,
/// so the two paths cannot drift.
pub fn run_device_session(
    remote: &RemoteCloud,
    spec: &DeploymentSpec,
    session: u64,
) -> SessionReport {
    let data = spec.dataset(session);
    let small = spec.split.small_model();
    let (_, policy) = spec.edge.policy.build();
    let mut sess = remote.attach(spec.session_config(session), &small, policy);
    for scene in data.iter() {
        let ticket = sess.submit(scene);
        sess.poll(ticket).expect("frame resolves");
    }
    sess.drain()
}

/// Drives **all** of one edge node's device sessions interleaved over a
/// single multiplexed connection (`remote` must have negotiated
/// [`RemoteCloud::mux`]): every device attaches via
/// [`RemoteCloud::attach_as`], then the driver round-robins one frame per
/// device — all submits go out back to back before any poll, so the
/// sessions' round trips overlap on the shared socket. Each session still
/// experiences exactly the sequential driver's submit→poll order on its
/// own stream — and the cloud demuxes to one worker per session — so the
/// reports are bit-identical to [`run_device_session`] run per device over
/// dedicated connections.
///
/// Returns the reports in device order (ascending session id).
pub fn run_edge_sessions_mux(
    remote: &RemoteCloud,
    spec: &DeploymentSpec,
    edge: usize,
) -> Vec<SessionReport> {
    assert!(
        remote.mux(),
        "run_edge_sessions_mux needs a mux-negotiated connection"
    );
    let small = spec.split.small_model();
    let ids: Vec<u64> = (0..spec.devices_per_edge)
        .map(|d| spec.session_id(edge, d))
        .collect();
    let datasets: Vec<Dataset> = ids.iter().map(|&s| spec.dataset(s)).collect();
    let mut sessions = Vec::with_capacity(ids.len());
    for &session in &ids {
        let (_, policy) = spec.edge.policy.build();
        sessions.push(remote.attach_as(session, spec.session_config(session), &small, policy));
    }
    // Submit the whole fleet's frame before polling any of it: the one
    // connection carries every session's upload back to back, overlapping
    // their round trips across sessions. Within a session the driver stays
    // strictly lockstep (submit, then poll, then the next submit) — the
    // session's virtual clock models an edge that waits for each answer,
    // so a deeper per-session window would simulate a different device,
    // not just drive this one faster. Lockstep per session is exactly what
    // keeps the reports bit-identical to driving the devices one
    // connection each.
    for f in 0..spec.frames_per_device {
        let tickets: Vec<_> = sessions
            .iter_mut()
            .zip(&datasets)
            .map(|(sess, data)| sess.submit(&data.scenes()[f]))
            .collect();
        for (sess, ticket) in sessions.iter_mut().zip(tickets) {
            sess.poll(ticket).expect("frame resolves over mux");
        }
    }
    sessions.iter_mut().map(|s| s.drain()).collect()
}

// ---------------------------------------------------------------------------
// Deployment report
// ---------------------------------------------------------------------------

/// The merged outcome of a deployment run: every session's report (sorted
/// by session id) plus the cloud node's stats and fleet-wide totals.
/// (The simulated-population analogue is
/// [`smallbig_core::fleet::FleetReport`].)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// Per-session reports, sorted by `session` — the bit-identity
    /// contract between runners lives here.
    pub sessions: Vec<SessionReport>,
    /// The cloud node's merged stats (wall-clock fields are run-dependent).
    pub cloud: NodeStats,
    /// Total frames across sessions.
    pub frames: usize,
    /// Total uploads across sessions.
    pub uploads: usize,
    /// Total uplink bytes across sessions.
    pub uplink_bytes: u64,
    /// Total deadline misses across sessions.
    pub deadline_misses: usize,
    /// Total traced-link fallbacks across sessions.
    pub link_fallbacks: usize,
    /// Total admission-control fallbacks across sessions.
    pub admission_fallbacks: usize,
}

impl DeploymentReport {
    /// Sorts `sessions` by id and computes the fleet totals.
    pub fn merge(mut sessions: Vec<SessionReport>, cloud: NodeStats) -> DeploymentReport {
        sessions.sort_by_key(|r| r.session);
        let mut report = DeploymentReport {
            sessions: Vec::new(),
            cloud,
            frames: 0,
            uploads: 0,
            uplink_bytes: 0,
            deadline_misses: 0,
            link_fallbacks: 0,
            admission_fallbacks: 0,
        };
        for s in &sessions {
            report.frames += s.frames;
            report.uploads += s.uploads;
            report.uplink_bytes += s.uplink_bytes;
            report.deadline_misses += s.deadline_misses;
            report.link_fallbacks += s.link_fallbacks;
            report.admission_fallbacks += s.admission_fallbacks;
        }
        report.sessions = sessions;
        report
    }

    /// Checks fleet-wide calibration-version convergence: every session
    /// must have ended the run on the newest version any cloud worker
    /// published (all zeros when the update loop is disabled).
    ///
    /// Convergence is a property of the run's shape, not of the update
    /// loop itself: a session whose final answer carried a fresh artifact
    /// never serves the frame that would apply it, so callers asserting
    /// convergence should pick an update cadence that settles before the
    /// tail of the run (see `--update-epoch-s` and
    /// `smallbig-orchestrate --assert-converged`).
    ///
    /// # Errors
    ///
    /// Returns the lagging `(session, version)` pairs if any session's
    /// active version differs from the fleet-wide newest.
    pub fn calibration_converged(&self) -> Result<u64, Vec<(u64, u64)>> {
        let newest = self.cloud.cloud.calibration_version;
        let laggards: Vec<(u64, u64)> = self
            .sessions
            .iter()
            .filter(|s| s.calibration_version != newest)
            .map(|s| (s.session, s.calibration_version))
            .collect();
        if laggards.is_empty() {
            Ok(newest)
        } else {
            Err(laggards)
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory runner
// ---------------------------------------------------------------------------

/// Runs the whole fleet in this process over the in-memory transport: one
/// serving thread (stopping after [`DeploymentSpec::total_sessions`]
/// connections), one thread per edge node, devices sequential per edge.
///
/// # Panics
///
/// Panics if any session fails — in-process the transport cannot drop, so
/// a failure is a bug, not weather.
pub fn run_fleet_in_memory(spec: &DeploymentSpec) -> DeploymentReport {
    let (mut listener, connector) = memory_listener();
    let cloud_cfg = spec.cloud.build();
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(spec.split.big_model());
    let opts = ServeOptions {
        expect_sessions: Some(spec.total_sessions()),
        ..ServeOptions::default()
    };
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let stop = AtomicBool::new(false);
            serve(&mut listener, &cloud_cfg, &big, &opts, &stop)
        });
        let mut edges = Vec::new();
        for e in 0..spec.edges {
            let connector = connector.clone();
            edges.push(scope.spawn(move || {
                let mut reports = Vec::new();
                for d in 0..spec.devices_per_edge {
                    let session = spec.session_id(e, d);
                    let dial = connector.clone();
                    // The reference runner always dials one connection per
                    // device (never mux), so it stays the fixed point the
                    // multiplexed process runner is compared against. It
                    // does honor the spec's encoding: reports are
                    // codec-independent, and the conformance tests pin
                    // that.
                    let conn_opts = ConnectOptions {
                        retry: spec.edge.retry,
                        dialer: Some(Box::new(move || {
                            dial.connect().map(|t| Box::new(t) as Box<dyn Transport>)
                        })),
                        encoding: spec.edge.wire_encoding(),
                        ..ConnectOptions::default()
                    };
                    let transport = connector.connect().expect("listener alive");
                    let remote = RemoteCloud::connect(Box::new(transport), session, conn_opts)
                        .expect("in-memory handshake succeeds");
                    reports.push(run_device_session(&remote, spec, session));
                    remote.close();
                }
                reports
            }));
        }
        drop(connector);
        let mut sessions = Vec::new();
        for h in edges {
            sessions.extend(h.join().expect("edge thread completes"));
        }
        let cloud = server.join().expect("serve thread completes");
        DeploymentReport::merge(sessions, cloud)
    })
}

// ---------------------------------------------------------------------------
// Process runner
// ---------------------------------------------------------------------------

/// Line prefix the cloud node prints once bound: `LISTENING <addr>`.
pub const LINE_LISTENING: &str = "LISTENING ";
/// Line prefix an edge node prints per finished session: `REPORT <json>`.
pub const LINE_REPORT: &str = "REPORT ";
/// Line prefix an edge node prints once a session's handshake completed:
/// `CONNECTED <session>` — lets a harness time faults against real
/// connection progress.
pub const LINE_CONNECTED: &str = "CONNECTED ";
/// Line prefix the cloud node prints on exit: `STATS <json>`.
pub const LINE_STATS: &str = "STATS ";

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::other(msg.into())
}

/// Reads a child's stdout on a thread so the child never blocks on a full
/// pipe, forwarding lines over a channel.
fn line_reader(child: &mut Child, name: &'static str) -> io::Result<mpsc::Receiver<String>> {
    let out = child
        .stdout
        .take()
        .ok_or_else(|| proto_err(format!("{name}: stdout not piped")))?;
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(out).lines().map_while(Result::ok) {
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    Ok(rx)
}

/// Receives every line the reader thread will ever send (the channel
/// disconnects when the child's stdout hits EOF). Call after the child
/// exited; errors if the reader stalls past `deadline`.
fn drain_lines(rx: &mpsc::Receiver<String>, deadline: Instant) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(left) {
            Ok(line) => out.push(line),
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(out),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "stdout reader stalled",
                ))
            }
        }
    }
}

fn kill_fleet(cloud: &mut Child, edges: &mut [Child]) {
    let _ = cloud.kill();
    for e in edges {
        let _ = e.kill();
    }
}

/// Waits for `child` until `deadline`, killing it on timeout.
fn wait_with_timeout(
    child: &mut Child,
    deadline: Instant,
    name: &str,
) -> io::Result<std::process::ExitStatus> {
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(status);
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("{name} did not exit in time"),
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Runs the fleet as real OS processes: spawns `cloud_bin`, waits for its
/// `LISTENING` line, spawns one `edge_bin` per edge, scrapes their
/// `REPORT` lines, then collects the cloud's `STATS` line. Produces a
/// [`DeploymentReport`] whose per-session reports are bit-identical to
/// [`run_fleet_in_memory`] of the same spec.
///
/// # Errors
///
/// Fails when a child cannot be spawned, exits non-zero, breaks the line
/// protocol, or blows `timeout` (every child is killed on the way out).
pub fn run_fleet_processes(
    spec: &DeploymentSpec,
    cloud_bin: &Path,
    edge_bin: &Path,
    timeout: Duration,
) -> io::Result<DeploymentReport> {
    let deadline = Instant::now() + timeout;
    let spec_json = serde_json::to_string(spec).map_err(|e| proto_err(e.to_string()))?;

    let mut cloud = Command::new(cloud_bin)
        .args(["--listen", "127.0.0.1:0", "--spec", &spec_json])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    let cloud_lines = line_reader(&mut cloud, "cloud-node")?;

    // Wait for the cloud to bind.
    let addr = loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match cloud_lines.recv_timeout(left) {
            Ok(line) => {
                if let Some(a) = line.strip_prefix(LINE_LISTENING) {
                    break a.trim().to_string();
                }
            }
            Err(_) => {
                kill_fleet(&mut cloud, &mut []);
                return Err(proto_err("cloud-node never bound"));
            }
        }
    };

    // Spawn the edges and their readers.
    let mut edges = Vec::new();
    let mut edge_lines = Vec::new();
    for e in 0..spec.edges {
        let mut child = Command::new(edge_bin)
            .args([
                "--cloud",
                &addr,
                "--edge-index",
                &e.to_string(),
                "--spec",
                &spec_json,
            ])
            .stdout(Stdio::piped())
            .spawn()?;
        edge_lines.push(line_reader(&mut child, "edge-node")?);
        edges.push(child);
    }

    // Collect every edge's reports.
    let mut sessions: Vec<SessionReport> = Vec::new();
    for e in 0..edges.len() {
        let outcome = wait_with_timeout(&mut edges[e], deadline, &format!("edge-node {e}"))
            .and_then(|status| {
                if status.success() {
                    drain_lines(&edge_lines[e], deadline)
                } else {
                    Err(proto_err(format!("edge-node {e} exited with {status}")))
                }
            });
        let lines = match outcome {
            Ok(lines) => lines,
            Err(err) => {
                kill_fleet(&mut cloud, &mut edges);
                return Err(err);
            }
        };
        for line in lines {
            if let Some(json) = line.strip_prefix(LINE_REPORT) {
                let report: SessionReport =
                    serde_json::from_str(json).map_err(|err| proto_err(err.to_string()))?;
                sessions.push(report);
            }
        }
    }
    if sessions.len() != spec.total_sessions() {
        kill_fleet(&mut cloud, &mut edges);
        return Err(proto_err(format!(
            "expected {} session reports, saw {}",
            spec.total_sessions(),
            sessions.len()
        )));
    }

    // The cloud stops by itself after `total_sessions()` connections; the
    // stdin nudge is the belt-and-braces path if it is still serving.
    if let Some(stdin) = cloud.stdin.as_mut() {
        let _ = stdin.write_all(b"shutdown\n");
        let _ = stdin.flush();
    }
    wait_with_timeout(&mut cloud, deadline, "cloud-node")?;
    let mut stats: Option<NodeStats> = None;
    for line in drain_lines(&cloud_lines, deadline)? {
        if let Some(json) = line.strip_prefix(LINE_STATS) {
            stats = Some(serde_json::from_str(json).map_err(|err| proto_err(err.to_string()))?);
        }
    }
    let stats = stats.ok_or_else(|| proto_err("cloud-node exited without a STATS line"))?;
    Ok(DeploymentReport::merge(sessions, stats))
}

// ---------------------------------------------------------------------------
// CLI argument helper (no external parser in the vendored world)
// ---------------------------------------------------------------------------

/// A minimal `--key value` argument bag shared by the node binaries.
#[derive(Debug, Default)]
pub struct CliArgs {
    pairs: Vec<(String, String)>,
}

impl CliArgs {
    /// Parses `args` (without the program name) as `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Fails on a token that is not a `--key`, or a trailing key with no
    /// value.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<CliArgs, String> {
        let mut out = CliArgs::default();
        let mut it = args.into_iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("unexpected argument `{key}` (expected --key)"));
            };
            let Some(value) = it.next() else {
                return Err(format!("--{name} is missing its value"));
            };
            out.pairs.push((name.to_string(), value));
        }
        Ok(out)
    }

    /// The last value given for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the value for `key` with `parse`, or returns `default` when
    /// the key is absent.
    ///
    /// # Errors
    ///
    /// Fails when the key is present but `parse` rejects its value.
    pub fn get_with<T>(
        &self,
        key: &str,
        default: T,
        parse: impl FnOnce(&str) -> Option<T>,
    ) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => parse(v).ok_or_else(|| format!("invalid value for --{key}: `{v}`")),
        }
    }
}

/// Builds a [`DeploymentSpec`] from CLI arguments: `--spec JSON` (or
/// `--spec-file PATH`) wins outright; otherwise individual flags
/// (`--edges`, `--devices`, `--frames`, `--split`, `--policy`, `--link`,
/// `--trace`, `--frame-px`, `--deadline-s`, `--scheduler`,
/// `--queue-limit`, `--max-batch`, `--workers`, `--seed`,
/// `--dataset-seed`, `--encoding json|binary`, `--mux true|false`,
/// `--update-epoch-s SECS` — enables the cloud's calibration update loop
/// at that virtual-time cadence, default rollout policy —
/// and `--update-min-examples N`, the refit floor of an enabled loop)
/// overlay [`DeploymentSpec::default`].
///
/// # Errors
///
/// Fails on an unreadable spec file, malformed JSON, or an invalid flag
/// value.
pub fn deployment_spec_from_args(args: &CliArgs) -> Result<DeploymentSpec, String> {
    let json = match (args.get("spec"), args.get("spec-file")) {
        (Some(j), _) => Some(j.to_string()),
        (None, Some(path)) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("--spec-file {path}: {e}"))?)
        }
        (None, None) => None,
    };
    if let Some(json) = json {
        return serde_json::from_str(&json).map_err(|e| format!("bad fleet spec: {e}"));
    }
    let base = DeploymentSpec::default();
    Ok(DeploymentSpec {
        edges: args.get_with("edges", base.edges, |v| v.parse().ok())?,
        devices_per_edge: args.get_with("devices", base.devices_per_edge, |v| v.parse().ok())?,
        frames_per_device: args.get_with("frames", base.frames_per_device, |v| v.parse().ok())?,
        split: args.get_with("split", base.split, SplitName::parse)?,
        dataset_seed: args.get_with("dataset-seed", base.dataset_seed, |v| v.parse().ok())?,
        cloud: CloudSpec {
            seed: args.get_with("seed", base.cloud.seed, |v| v.parse().ok())?,
            max_batch: args.get_with("max-batch", base.cloud.max_batch, |v| v.parse().ok())?,
            workers: args.get_with("workers", base.cloud.workers, |v| v.parse().ok())?,
            scheduler: args.get_with("scheduler", base.cloud.scheduler, parse_scheduler)?,
            queue_limit: args.get_with("queue-limit", base.cloud.queue_limit, |v| {
                v.parse().ok().map(Some)
            })?,
            autoscale: base.cloud.autoscale,
            updates: {
                let updates = args.get_with("update-epoch-s", base.cloud.updates, |v| {
                    v.parse().ok().map(|epoch_s| {
                        Some(UpdateConfig {
                            epoch_s,
                            ..UpdateConfig::default()
                        })
                    })
                })?;
                match updates {
                    // `--update-min-examples` tunes the refit floor of an
                    // enabled loop (short demo runs never reach the
                    // production default of 32 pseudo-labels).
                    Some(cfg) => Some(UpdateConfig {
                        min_examples: args.get_with(
                            "update-min-examples",
                            cfg.min_examples,
                            |v| v.parse().ok(),
                        )?,
                        ..cfg
                    }),
                    None => {
                        if args.get("update-min-examples").is_some() {
                            return Err(
                                "--update-min-examples needs --update-epoch-s (or a spec with \
                                 cloud updates enabled)"
                                    .into(),
                            );
                        }
                        None
                    }
                }
            },
        },
        edge: EdgeSpec {
            policy: args.get_with("policy", base.edge.policy, PolicySpec::parse)?,
            link: args.get_with("link", base.edge.link, LinkSpec::parse)?,
            trace: args.get_with("trace", base.edge.trace, TraceSpec::parse)?,
            frame_px: args.get_with("frame-px", base.edge.frame_px, |v| v.parse().ok())?,
            deadline_s: args.get_with("deadline-s", base.edge.deadline_s, |v| {
                v.parse().ok().map(Some)
            })?,
            session_seed: base.edge.session_seed,
            retry: base.edge.retry,
            encoding: args.get_with("encoding", base.edge.encoding, |v| {
                Encoding::parse(v).map(Some)
            })?,
            mux: args.get_with("mux", base.edge.mux, |v| v.parse().ok().map(Some))?,
        },
    })
}

/// Parses the CLI scheduler spelling: `fifo`, `deadline:LOOKAHEAD` or
/// `difficulty:LOOKAHEAD`.
pub fn parse_scheduler(s: &str) -> Option<SchedulerConfig> {
    if s == "fifo" {
        return Some(SchedulerConfig::Fifo);
    }
    if let Some(rest) = s.strip_prefix("deadline:") {
        return Some(SchedulerConfig::DeadlineAware {
            lookahead: rest.parse().ok()?,
        });
    }
    if let Some(rest) = s.strip_prefix("difficulty:") {
        return Some(SchedulerConfig::DifficultyPriority {
            lookahead: rest.parse().ok()?,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_spec_round_trips_through_json() {
        let spec = DeploymentSpec {
            edges: 3,
            devices_per_edge: 2,
            cloud: CloudSpec {
                scheduler: SchedulerConfig::DeadlineAware { lookahead: 4 },
                queue_limit: Some(6),
                autoscale: Some(AutoscaleConfig::default()),
                ..CloudSpec::default()
            },
            edge: EdgeSpec {
                policy: PolicySpec::CloudOnly,
                trace: TraceSpec::Outage {
                    start_s: 1.0,
                    duration_s: 2.5,
                },
                deadline_s: Some(0.25),
                ..EdgeSpec::default()
            },
            ..DeploymentSpec::default()
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: DeploymentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn cli_flags_build_the_expected_spec() {
        let args = CliArgs::parse(
            [
                "--edges",
                "3",
                "--devices",
                "2",
                "--frames",
                "5",
                "--split",
                "voc07",
                "--policy",
                "cloud-only",
                "--trace",
                "outage:2,1.5",
                "--scheduler",
                "difficulty:3",
                "--queue-limit",
                "8",
            ]
            .map(String::from),
        )
        .unwrap();
        let spec = deployment_spec_from_args(&args).unwrap();
        assert_eq!(spec.edges, 3);
        assert_eq!(spec.devices_per_edge, 2);
        assert_eq!(spec.frames_per_device, 5);
        assert_eq!(spec.split, SplitName::Voc07);
        assert_eq!(spec.edge.policy, PolicySpec::CloudOnly);
        assert_eq!(
            spec.edge.trace,
            TraceSpec::Outage {
                start_s: 2.0,
                duration_s: 1.5
            }
        );
        assert_eq!(
            spec.cloud.scheduler,
            SchedulerConfig::DifficultyPriority { lookahead: 3 }
        );
        assert_eq!(spec.cloud.queue_limit, Some(8));
    }

    #[test]
    fn in_memory_fleet_sessions_are_deterministic() {
        let spec = DeploymentSpec {
            edges: 2,
            devices_per_edge: 2,
            frames_per_device: 6,
            ..DeploymentSpec::default()
        };
        let a = run_fleet_in_memory(&spec);
        let b = run_fleet_in_memory(&spec);
        assert_eq!(a.sessions, b.sessions);
        assert_eq!(a.frames, 2 * 2 * 6);
        assert_eq!(a.cloud.connections, 4);
        assert_eq!(a.cloud.aborted, 0);
        let ids: Vec<u64> = a.sessions.iter().map(|s| s.session).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
