//! `cloud-node` — one cloud server as a real OS process.
//!
//! Binds a TCP listener (`--listen`, default an ephemeral loopback port),
//! prints `LISTENING <addr>` on stdout, then serves edge-node connections
//! until `--expect-sessions` connections completed (default: the fleet
//! spec's total; `0` = serve until a `shutdown` line arrives on stdin) and
//! finally prints `STATS <json NodeStats>`.
//!
//! Configure with `--spec JSON` / `--spec-file PATH` or individual fleet
//! flags (see `smallbig::distributed::deployment_spec_from_args`).

use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use smallbig::core::transport::{serve, Listener, ServeOptions, TcpWireListener};
use smallbig::distributed::{deployment_spec_from_args, CliArgs, LINE_LISTENING, LINE_STATS};
use smallbig::modelzoo::Detector;

fn die(msg: &str) -> ! {
    eprintln!("cloud-node: {msg}");
    eprintln!(
        "usage: cloud-node [--listen ADDR] [--spec JSON | --spec-file PATH | fleet flags] \
         [--expect-sessions N (0 = serve until `shutdown` on stdin)] [--hello-timeout-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let args = CliArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| die(&e));
    let spec = deployment_spec_from_args(&args).unwrap_or_else(|e| die(&e));
    let listen = args.get("listen").unwrap_or("127.0.0.1:0").to_string();
    let expect = args
        .get_with("expect-sessions", Some(spec.total_sessions()), |v| {
            v.parse::<usize>().ok().map(|n| (n > 0).then_some(n))
        })
        .unwrap_or_else(|e| die(&e));
    let hello_ms = args
        .get_with("hello-timeout-ms", 5000u64, |v| v.parse().ok())
        .unwrap_or_else(|e| die(&e));

    let mut listener =
        TcpWireListener::bind(&listen).unwrap_or_else(|e| die(&format!("bind {listen}: {e}")));
    println!("{LINE_LISTENING}{}", listener.local_addr());

    let stop = Arc::new(AtomicBool::new(false));
    let waker = listener.waker();
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for line in std::io::stdin().lock().lines().map_while(Result::ok) {
                if line.trim() == "shutdown" {
                    stop.store(true, Ordering::SeqCst);
                    waker();
                    break;
                }
            }
        });
    }

    let big: Arc<dyn Detector + Send + Sync> = Arc::new(spec.split.big_model());
    let opts = ServeOptions {
        hello_timeout: Duration::from_millis(hello_ms),
        expect_sessions: expect,
    };
    let stats = serve(&mut listener, &spec.cloud.build(), &big, &opts, &stop);
    let json = serde_json::to_string(&stats).unwrap_or_else(|e| die(&format!("stats: {e}")));
    println!("{LINE_STATS}{json}");
}
