//! `edge-node` — one edge node (a batch of devices) as a real OS process.
//!
//! Dials the cloud node at `--cloud ADDR` (retrying with the spec's
//! backoff schedule, so it may be launched before the cloud finishes
//! binding), then drives its devices: device `d` of edge `--edge-index e`
//! runs session `e * devices_per_edge + d`, streaming the same
//! deterministic workload the in-memory runner would, and prints
//! `REPORT <json SessionReport>` per finished session.
//!
//! With `--mux true` the edge dials **one** connection and interleaves all
//! of its devices' sessions over it; otherwise each device gets its own
//! connection and runs to completion before the next starts. Either way
//! the per-session reports are bit-identical. `--encoding binary` asks the
//! cloud for the compact binary frame codec in the handshake.
//!
//! Configure with `--spec JSON` / `--spec-file PATH` or individual fleet
//! flags (see `smallbig::distributed::deployment_spec_from_args`).

use smallbig::core::transport::RemoteCloud;
use smallbig::distributed::{
    deployment_spec_from_args, run_device_session, run_edge_sessions_mux, CliArgs, LINE_CONNECTED,
    LINE_REPORT,
};

fn die(msg: &str) -> ! {
    eprintln!("edge-node: {msg}");
    eprintln!(
        "usage: edge-node --cloud ADDR [--edge-index N] \
         [--spec JSON | --spec-file PATH | fleet flags]"
    );
    std::process::exit(2);
}

fn main() {
    let args = CliArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| die(&e));
    let spec = deployment_spec_from_args(&args).unwrap_or_else(|e| die(&e));
    let Some(cloud) = args.get("cloud") else {
        die("--cloud ADDR is required");
    };
    let edge_index = args
        .get_with("edge-index", 0usize, |v| v.parse().ok())
        .unwrap_or_else(|e| die(&e));
    if edge_index >= spec.edges {
        die(&format!(
            "--edge-index {edge_index} out of range for a {}-edge fleet",
            spec.edges
        ));
    }

    let encoding = spec.edge.wire_encoding();
    if spec.edge.mux_enabled() {
        // One connection for the whole edge; the handshake session id is
        // the edge's first device (it only names the connection — every
        // device's session is registered explicitly over the mux layer).
        let session = spec.session_id(edge_index, 0);
        let remote =
            RemoteCloud::connect_tcp_with(cloud, session, &spec.edge.retry, encoding, true)
                .unwrap_or_else(|e| die(&format!("edge {edge_index}: connect {cloud}: {e}")));
        for d in 0..spec.devices_per_edge {
            println!("{LINE_CONNECTED}{}", spec.session_id(edge_index, d));
        }
        let reports = run_edge_sessions_mux(&remote, &spec, edge_index);
        remote.close();
        for report in reports {
            let json = serde_json::to_string(&report)
                .unwrap_or_else(|e| die(&format!("session {}: report: {e}", report.session)));
            println!("{LINE_REPORT}{json}");
        }
    } else {
        for d in 0..spec.devices_per_edge {
            let session = spec.session_id(edge_index, d);
            let remote =
                RemoteCloud::connect_tcp_with(cloud, session, &spec.edge.retry, encoding, false)
                    .unwrap_or_else(|e| die(&format!("session {session}: connect {cloud}: {e}")));
            println!("{LINE_CONNECTED}{session}");
            let report = run_device_session(&remote, &spec, session);
            remote.close();
            let json = serde_json::to_string(&report)
                .unwrap_or_else(|e| die(&format!("session {session}: report: {e}")));
            println!("{LINE_REPORT}{json}");
        }
    }
}
