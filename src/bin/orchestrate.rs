//! `smallbig-orchestrate` — launch a whole fleet and merge its results.
//!
//! Three modes (`--mode`, default `process`):
//!
//! * `process` — spawn `cloud-node` plus one `edge-node` per edge as real
//!   OS processes over loopback TCP, scrape their stdout line protocol,
//!   and print the merged fleet report as JSON.
//! * `memory`  — run the identical fleet in this process over the
//!   in-memory transport.
//! * `check`   — run both and assert every per-session report is
//!   bit-identical between them, then print the process-path report.
//!
//! Binary paths default to `cloud-node` / `edge-node` next to this
//! executable (override with `--cloud-bin` / `--edge-bin`). Fleet shape
//! comes from `--spec JSON` / `--spec-file PATH` or individual flags (see
//! `smallbig::distributed::deployment_spec_from_args`).
//!
//! With `--assert-converged true` the orchestrator additionally checks
//! that every session ended the run on the newest calibration version the
//! cloud published (see `--update-epoch-s`), exiting 1 with the laggard
//! sessions otherwise.

use std::path::PathBuf;
use std::time::Duration;

use smallbig::distributed::{
    deployment_spec_from_args, run_fleet_in_memory, run_fleet_processes, CliArgs, DeploymentReport,
};

fn die(msg: &str) -> ! {
    eprintln!("smallbig-orchestrate: {msg}");
    eprintln!(
        "usage: smallbig-orchestrate [--mode process|memory|check] \
         [--cloud-bin PATH] [--edge-bin PATH] [--timeout-s N] \
         [--assert-converged true] \
         [--spec JSON | --spec-file PATH | fleet flags]"
    );
    std::process::exit(2);
}

fn sibling_bin(name: &str) -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join(name)))
        .unwrap_or_else(|| PathBuf::from(name))
}

fn print_report(report: &DeploymentReport) {
    match serde_json::to_string(report) {
        Ok(json) => println!("{json}"),
        Err(e) => die(&format!("report: {e}")),
    }
}

/// `--assert-converged`: every session must end on the newest calibration
/// version the cloud published (exit 1 otherwise, listing the laggards).
fn assert_converged(report: &DeploymentReport) {
    match report.calibration_converged() {
        Ok(version) => eprintln!(
            "converged: {} sessions on calibration version {version}",
            report.sessions.len()
        ),
        Err(laggards) => {
            eprintln!(
                "smallbig-orchestrate: calibration did not converge (newest version {}):",
                report.cloud.cloud.calibration_version
            );
            for (session, version) in laggards {
                eprintln!("  session {session} ended on version {version}");
            }
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = CliArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| die(&e));
    let spec = deployment_spec_from_args(&args).unwrap_or_else(|e| die(&e));
    let mode = args.get("mode").unwrap_or("process");
    let check_converged = args
        .get_with("assert-converged", false, |v| v.parse().ok())
        .unwrap_or_else(|e| die(&e));
    let timeout_s = args
        .get_with("timeout-s", 120u64, |v| v.parse().ok())
        .unwrap_or_else(|e| die(&e));
    let timeout = Duration::from_secs(timeout_s);
    let cloud_bin = args
        .get("cloud-bin")
        .map(PathBuf::from)
        .unwrap_or_else(|| sibling_bin("cloud-node"));
    let edge_bin = args
        .get("edge-bin")
        .map(PathBuf::from)
        .unwrap_or_else(|| sibling_bin("edge-node"));

    let report = match mode {
        "memory" => run_fleet_in_memory(&spec),
        "process" => run_fleet_processes(&spec, &cloud_bin, &edge_bin, timeout)
            .unwrap_or_else(|e| die(&format!("process fleet: {e}"))),
        "check" => {
            let reference = run_fleet_in_memory(&spec);
            let processes = run_fleet_processes(&spec, &cloud_bin, &edge_bin, timeout)
                .unwrap_or_else(|e| die(&format!("process fleet: {e}")));
            if processes.sessions != reference.sessions {
                die("process-path session reports differ from the in-memory reference");
            }
            eprintln!(
                "check ok: {} sessions bit-identical between process and in-memory fleets",
                reference.sessions.len()
            );
            processes
        }
        other => die(&format!("unknown --mode `{other}`")),
    };
    if check_converged {
        assert_converged(&report);
    }
    print_report(&report);
}
