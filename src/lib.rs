//! # smallbig — edge-cloud collaborated object detection
//!
//! A complete Rust reproduction of *Edge-Cloud Collaborated Object Detection
//! via Difficult-Case Discriminator* (ICDCS 2023): a lightweight **small
//! model** runs on the edge device, a heavyweight **big model** runs in the
//! cloud, and a **difficult-case discriminator** decides per image whether
//! the local result suffices or the frame must be uploaded.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`detcore`] | boxes, IoU, NMS, matching, VOC mAP, counting metrics |
//! | [`imaging`] | raster frames, blur/noise, Brenner sharpness, byte-size model |
//! | [`datagen`] | synthetic VOC / COCO-18 / HELMET datasets at published sizes |
//! | [`modelzoo`] | SSD/MobileNet/YOLO architectures (FLOPs, params, anchors) and the behavioural detector simulator |
//! | [`simnet`] | Jetson-Nano / GPU-server devices, WLAN link models, dynamic link traces and fault plans |
//! | [`core`] | the discriminator, calibration, trait-based offload policies, batch evaluator, the streaming multi-edge runtime and the wire transport |
//! | [`eval`] | experiment harness regenerating every paper table and figure |
//! | [`distributed`] | fleet specs, the `cloud-node` / `edge-node` binaries and the multi-process orchestration harness |
//!
//! Two runtimes live in [`core`]:
//!
//! * the **batch** path ([`core::evaluate`], [`core::run_system`]) mirrors
//!   the paper's one-edge, whole-dataset measurement protocol, and
//! * the **streaming** path ([`core::CloudServer`] / [`core::EdgeSession`])
//!   serves many concurrent edges — each with its own link model, virtual
//!   clock and [`core::OffloadPolicy`] — against one cloud worker that
//!   batches big-model inference across sessions. `run_system` is a thin
//!   wrapper over a single session and reproduces its historical reports
//!   bit for bit.
//!
//! The cloud side has a pluggable *scheduling control plane*
//! ([`core::Scheduler`]): FIFO batching (the bit-identical default),
//! earliest-deadline-first and difficulty-priority batch formation,
//! admission control ([`core::CloudConfig::queue_limit`]) that sheds
//! over-limit frames to the edge before any uplink is spent, and a
//! deterministic autoscaler ([`core::CloudConfig::autoscale`]) that sizes
//! the wall-clock inference pool from queue depth and fault-plan stall
//! windows without moving a single virtual timestamp (see
//! `examples/cloud_scheduling.rs` and the `scheduling` experiment).
//!
//! Networks need not be static: overlay any link with a
//! [`simnet::LinkTrace`] (outages, diurnal ramps, Gilbert–Elliott bursty
//! loss, seeded random walks) and schedule faults with a
//! [`simnet::FaultPlan`]; traced sessions retransmit with backoff against
//! their virtual clocks and fall back to the edge-only answer when the
//! link cannot deliver (see `examples/degraded_network.rs` and the
//! `degraded` experiment).
//!
//! # Quickstart
//!
//! ```
//! use smallbig::prelude::*;
//!
//! // A reduced-scale VOC07 split (use 1.0 for the paper's full sizes).
//! let split = Split::load_scaled(SplitId::Voc07, 0.01);
//! let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
//! let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
//!
//! // Calibrate the three thresholds on the training set (Sec. V-D)…
//! let (cal, _) = calibrate(&split.train, &small, &big);
//! let disc = DifficultCaseDiscriminator::new(cal.thresholds);
//!
//! // …and evaluate the small-big system on the test set.
//! let outcome = evaluate(
//!     &split.test,
//!     &small,
//!     &big,
//!     &Policy::DifficultCase(disc),
//!     &EvalConfig::default(),
//! );
//! println!(
//!     "end-to-end mAP {:.1}% at {:.0}% upload",
//!     outcome.e2e_map_pct,
//!     outcome.upload_ratio * 100.0
//! );
//! ```
//!
//! # Streaming quickstart
//!
//! ```
//! use std::sync::Arc;
//! use smallbig::prelude::*;
//!
//! let data = Dataset::generate("demo", &DatasetProfile::helmet(), 8, 1);
//! let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
//! let big: Arc<dyn Detector + Send + Sync> =
//!     Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
//!
//! let mut cloud = CloudServer::spawn(CloudConfig::default(), big);
//! let mut edge = cloud.connect(
//!     SessionConfig { frame_size: (96, 96), ..SessionConfig::new(2) },
//!     &small,
//!     Box::new(DifficultCaseDiscriminator::default()),
//! );
//! for scene in data.iter() {
//!     let ticket = edge.submit(scene);
//!     let result = edge.poll(ticket).expect("frame resolves");
//!     assert!(result.completed_at >= 0.0);
//! }
//! let report = edge.drain();
//! assert_eq!(report.frames, 8);
//! ```
//!
//! # Fleet-scale quickstart (100k sessions, one process)
//!
//! Beyond a handful of edges, threads and channels stop being the right
//! shape. The **fleet engine** ([`core::fleet`]) runs the *same* session
//! and cloud state machines inline from a central virtual-time event
//! queue — no thread or channel per session — so one process carries
//! 10⁵–10⁶ concurrent heterogeneous sessions. Populations are drawn from
//! seeded distributions (device/link/policy/deadline mixes, Zipf tenant
//! sizes, diurnal arrivals), and a run aggregates p50/p99/p999 latency,
//! per-tenant breakdowns and a deadline-miss curve:
//!
//! ```no_run
//! use smallbig::prelude::*;
//!
//! // 100k sessions over 4 cloud shards: Jetson edges on a
//! // wlan/fast-wifi/cellular mix, 20 Zipf tenants, diurnal arrivals,
//! // half the fleet under a 500 ms deadline. Shard groups are driven in
//! // parallel (`spec.threads`, default one worker per core) and the
//! // report is bit-identical for any thread count; a shard drive that
//! // panics surfaces as a typed `FleetError` instead of unwinding.
//! let spec = FleetSpec::new(100_000);
//! let report = run_fleet(&spec).expect("no shard failed");
//! println!(
//!     "{} sessions, {} frames: p50 {:.0} ms, p99 {:.0} ms, p999 {:.0} ms",
//!     report.sessions,
//!     report.frames,
//!     report.latency.p50_s * 1e3,
//!     report.latency.p99_s * 1e3,
//!     report.latency.p999_s * 1e3,
//! );
//! for t in &report.tenants {
//!     println!("tenant {}: {} frames, p99 {:.0} ms", t.tenant, t.frames, t.latency.p99_s * 1e3);
//! }
//! ```
//!
//! The same spec can be replayed through the historical
//! thread-per-session deployment ([`core::fleet::run_fleet_reference`]);
//! both produce **bit-identical** per-session reports — the conformance
//! contract `tests/fleet.rs` pins and the bench re-asserts before any
//! timing. See `examples/fleet.rs`.
//!
//! # Model-update quickstart (recalibration under drift)
//!
//! Workloads drift — day turns to night, crowds form — and a calibration
//! fitted once decays. With [`core::CloudConfig::updates`] set, the cloud
//! treats every big-model answer as a free pseudo-label, refits the
//! discriminator calibration on virtual-time epoch boundaries, and pushes
//! versioned artifacts to lagging sessions on the answer path; edges
//! apply them atomically between frames and roll back if a probation
//! window diverges from the pre-update holdout:
//!
//! ```
//! use std::sync::Arc;
//! use smallbig::prelude::*;
//!
//! let schedule = DriftSchedule::day_night(DatasetProfile::helmet(), 30.0);
//! let day = Dataset::generate("upd-day", schedule.profile_at(0.0), 16, 7);
//! let night = Dataset::generate("upd-night", schedule.profile_at(30.0), 16, 7);
//! let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
//! let big: Arc<dyn Detector + Send + Sync> =
//!     Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
//!
//! let mut cloud = CloudServer::spawn(
//!     CloudConfig {
//!         updates: Some(UpdateConfig { epoch_s: 10.0, min_examples: 4, ..UpdateConfig::default() }),
//!         ..CloudConfig::default()
//!     },
//!     big,
//! );
//! let mut edge = cloud.connect(
//!     SessionConfig { frame_size: (96, 96), ..SessionConfig::new(2) },
//!     &small,
//!     Box::new(Policy::DifficultCase(DifficultCaseDiscriminator::default())),
//! );
//! for i in 0..60 {
//!     let t = i as f64;
//!     let pool = if schedule.phase_index(t) == 0 { &day } else { &night };
//!     edge.advance_to(t);
//!     let ticket = edge.submit(&pool.scenes()[i % pool.len()]);
//!     edge.poll(ticket).expect("frame resolves");
//! }
//! let report = edge.drain();
//! println!(
//!     "calibration v{} after {} applies ({} rollbacks)",
//!     report.calibration_version, report.updates_applied, report.rollbacks
//! );
//! ```
//!
//! `updates: None` (the default) is bit-identical to builds that predate
//! the loop; `tests/model_update.rs` pins the golden trajectories
//! (lost-update replay, rollback-after-divergence, disabled-path
//! identity), and the `drift` experiment measures a static calibration
//! decaying under day/night drift while the update loop holds. Fleets get
//! the same loop via `CloudSpec::updates` / `--update-epoch-s`, and
//! `smallbig-orchestrate --assert-converged true` checks every session
//! ended on the newest published version. See `examples/model_update.rs`.
//!
//! # Distributed deployment
//!
//! The streaming runtime also speaks a real wire protocol
//! ([`core::transport`]): the cloud worker serves sessions over TCP (or any
//! custom [`core::transport::Transport`]), edges dial in with a versioned
//! handshake and reconnect with backoff, and — because all simulation time
//! is virtual — a fleet of separate OS processes produces **bit-identical**
//! per-session reports to the in-process path. Three binaries package this:
//!
//! ```bash
//! # Terminal 1 — the cloud node (prints "LISTENING <addr>"):
//! cloud-node --listen 127.0.0.1:4810 --edges 2 --frames 8
//!
//! # Terminals 2 and 3 — one edge node each (they may start first; they
//! # retry the dial with backoff until the cloud is up):
//! edge-node --cloud 127.0.0.1:4810 --edge-index 0 --edges 2 --frames 8
//! edge-node --cloud 127.0.0.1:4810 --edge-index 1 --edges 2 --frames 8
//!
//! # Same fleet on the compact binary frame codec (negotiated per
//! # connection in the handshake; JSON-only peers keep working), with each
//! # edge's devices multiplexed over ONE TCP connection instead of one
//! # connection per device:
//! edge-node --cloud 127.0.0.1:4810 --edge-index 0 --edges 2 --frames 8 \
//!           --encoding binary --mux true
//!
//! # Or let the orchestrator spawn the whole fleet and merge the reports —
//! # `--mode check` also runs the in-memory fleet and asserts the two are
//! # bit-identical:
//! smallbig-orchestrate --mode check --edges 3 --devices 1 --frames 6
//! ```
//!
//! Every node takes the same fleet description (`--spec JSON`,
//! `--spec-file PATH`, or individual flags — split, policy, link, trace,
//! scheduler, admission, autoscaling, `--encoding json|binary`,
//! `--mux true|false`); see [`distributed`] for the spec types, the
//! in-memory reference runner and the process harness, and
//! [`core::wire`] for the codecs and their negotiation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;

pub use datagen;
pub use detcore;
pub use eval;
pub use imaging;
pub use modelzoo;
pub use simnet;
pub use smallbig_core as core;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use datagen::{Dataset, DatasetProfile, DriftSchedule, Scene, Split, SplitId};
    pub use detcore::{
        ApProtocol, BBox, ClassId, Detection, GroundTruth, ImageDetections, MapEvaluator, Taxonomy,
    };
    pub use modelzoo::{Capability, Detector, ModelKind, SimDetector};
    pub use simnet::{DeviceModel, FaultPlan, LinkModel, LinkState, LinkTrace};
    pub use smallbig_core::fleet::{
        run_fleet, run_fleet_with, ArrivalCurve, FleetError, FleetPolicy, FleetReport, FleetSpec,
        LinkChoice, MetricsMode,
    };
    pub use smallbig_core::{
        calibrate, evaluate, evaluate_streaming, run_system, AutoscaleConfig, CaseKind,
        CloudConfig, CloudServer, DifficultCaseDiscriminator, EdgeSession, EvalConfig,
        OffloadPolicy, Policy, RuntimeConfig, RuntimeMode, Scheduler, SchedulerConfig,
        SessionConfig, SessionReport, Thresholds, UpdateConfig,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let b = BBox::new(0.0, 0.0, 0.5, 0.5).unwrap();
        assert!(b.area() > 0.0);
        assert_eq!(Taxonomy::voc20().len(), 20);
        assert!(ModelKind::SsdVgg16.is_big());
    }
}
