//! # smallbig — edge-cloud collaborated object detection
//!
//! A complete Rust reproduction of *Edge-Cloud Collaborated Object Detection
//! via Difficult-Case Discriminator* (ICDCS 2023): a lightweight **small
//! model** runs on the edge device, a heavyweight **big model** runs in the
//! cloud, and a **difficult-case discriminator** decides per image whether
//! the local result suffices or the frame must be uploaded.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`detcore`] | boxes, IoU, NMS, matching, VOC mAP, counting metrics |
//! | [`imaging`] | raster frames, blur/noise, Brenner sharpness, byte-size model |
//! | [`datagen`] | synthetic VOC / COCO-18 / HELMET datasets at published sizes |
//! | [`modelzoo`] | SSD/MobileNet/YOLO architectures (FLOPs, params, anchors) and the behavioural detector simulator |
//! | [`simnet`] | Jetson-Nano / GPU-server devices and WLAN link models |
//! | [`core`] | the discriminator, calibration, offload policies, batch evaluator and the live threaded runtime |
//! | [`eval`] | experiment harness regenerating every paper table and figure |
//!
//! # Quickstart
//!
//! ```
//! use smallbig::prelude::*;
//!
//! // A reduced-scale VOC07 split (use 1.0 for the paper's full sizes).
//! let split = Split::load_scaled(SplitId::Voc07, 0.01);
//! let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
//! let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
//!
//! // Calibrate the three thresholds on the training set (Sec. V-D)…
//! let (cal, _) = calibrate(&split.train, &small, &big);
//! let disc = DifficultCaseDiscriminator::new(cal.thresholds);
//!
//! // …and evaluate the small-big system on the test set.
//! let outcome = evaluate(
//!     &split.test,
//!     &small,
//!     &big,
//!     &Policy::DifficultCase(disc),
//!     &EvalConfig::default(),
//! );
//! println!(
//!     "end-to-end mAP {:.1}% at {:.0}% upload",
//!     outcome.e2e_map_pct,
//!     outcome.upload_ratio * 100.0
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use datagen;
pub use detcore;
pub use eval;
pub use imaging;
pub use modelzoo;
pub use simnet;
pub use smallbig_core as core;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use datagen::{Dataset, DatasetProfile, Scene, Split, SplitId};
    pub use detcore::{
        ApProtocol, BBox, ClassId, Detection, GroundTruth, ImageDetections, MapEvaluator,
        Taxonomy,
    };
    pub use modelzoo::{Capability, Detector, ModelKind, SimDetector};
    pub use simnet::{DeviceModel, LinkModel};
    pub use smallbig_core::{
        calibrate, evaluate, run_system, CaseKind, DifficultCaseDiscriminator, EvalConfig,
        Policy, RuntimeConfig, RuntimeMode, Thresholds,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let b = BBox::new(0.0, 0.0, 0.5, 0.5).unwrap();
        assert!(b.area() > 0.0);
        assert_eq!(Taxonomy::voc20().len(), 20);
        assert!(ModelKind::SsdVgg16.is_big());
    }
}
