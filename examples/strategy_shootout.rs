//! Strategy shootout: our difficult-case discriminator against every baseline
//! the paper compares (Sec. VI-E), at a matched upload ratio.
//!
//! ```bash
//! cargo run --release --example strategy_shootout
//! ```

use smallbig::prelude::*;

fn main() {
    let split = Split::load_scaled(SplitId::Voc0712, 0.05);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc0712, 20);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc0712, 20);

    let (cal, _) = calibrate(&split.train, &small, &big);
    let disc = DifficultCaseDiscriminator::new(cal.thresholds);
    let cfg = EvalConfig::default();

    // Our method first, to learn the matched upload ratio.
    let ours = evaluate(
        &split.test,
        &small,
        &big,
        &Policy::DifficultCase(disc.clone()),
        &cfg,
    );
    let q = ours.upload_ratio;

    let contenders: Vec<Policy> = vec![
        Policy::DifficultCase(disc),
        Policy::Random {
            upload_fraction: q,
            seed: 0xbeef,
        },
        Policy::BlurQuantile {
            upload_fraction: q,
            render_size: (128, 96),
        },
        Policy::Top1Quantile { upload_fraction: q },
        Policy::Oracle,
        Policy::EdgeOnly,
        Policy::CloudOnly,
    ];

    println!(
        "all strategies at ~{:.0}% upload (except the extremes):\n",
        q * 100.0
    );
    println!(
        "{:<48} {:>9} {:>12} {:>9}",
        "strategy", "e2e mAP", "dets vs big", "upload"
    );
    for policy in contenders {
        let out = evaluate(&split.test, &small, &big, &policy, &cfg);
        println!(
            "{:<48} {:>8.2}% {:>11.2}% {:>8.1}%",
            policy.name(),
            out.e2e_map_pct,
            out.e2e_detected_vs_big_pct(),
            out.upload_ratio * 100.0
        );
    }
    println!("\nsemantics beat pixels: the discriminator's two features (object count,");
    println!("min object area) routinely beat random, blur and confidence ranking.");
}
