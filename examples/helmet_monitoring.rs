//! Safety-helmet monitoring on a building site — the paper's real-world
//! deployment (Sec. VI-D): a Jetson Nano at the edge, an RTX3060 server in
//! the cloud, connected over a congested WLAN.
//!
//! Runs the live threaded runtime in all three modes and prints the Table XI
//! style comparison, plus the per-component latency breakdown for ours.
//!
//! ```bash
//! cargo run --release --example helmet_monitoring
//! ```

use smallbig::core::difficult_fraction;
use smallbig::prelude::*;

fn main() {
    // Quarter-scale HELMET footage (use 1.0 for the full test set).
    let split = Split::load_scaled(SplitId::Helmet, 0.25);
    println!(
        "HELMET-like footage: {} training clips, {} test frames",
        split.train.len(),
        split.test.len()
    );

    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);

    // Calibrate on the site's own footage.
    let (cal, examples) = calibrate(&split.train, &small, &big);
    println!(
        "difficult-case rate on site footage: {:.1}%  (thresholds: conf {:.2}, count {}, area {:.2})\n",
        difficult_fraction(&examples) * 100.0,
        cal.thresholds.conf,
        cal.thresholds.count,
        cal.thresholds.area
    );
    let disc = DifficultCaseDiscriminator::new(cal.thresholds);

    // The live runtime: real threads, serialized frames, simulated clocks.
    let rt = RuntimeConfig {
        edge: DeviceModel::jetson_nano(),
        cloud: DeviceModel::gpu_server(),
        link: LinkModel::wlan(),
        frame_size: (300, 300),
        ..Default::default()
    };
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>9}  latency/frame",
        "mode", "mAP(%)", "detected", "total(s)", "upload(%)"
    );
    for (name, mode) in [
        ("edge-only", RuntimeMode::EdgeOnly),
        ("cloud-only", RuntimeMode::CloudOnly),
        ("small-big", RuntimeMode::SmallBig),
    ] {
        let r = run_system(&split.test, &small, &big, &disc, mode, &rt);
        println!(
            "{name:<12} {:>8.2} {:>6}/{:<4} {:>12.2} {:>9.1}  {:>8.0} ms",
            r.map_pct,
            r.detected,
            r.total_gt,
            r.total_time_s,
            r.upload_ratio * 100.0,
            r.latency.mean_s() * 1000.0
        );
        if mode == RuntimeMode::SmallBig {
            let l = &r.latency.total;
            println!(
                "  breakdown: edge {:.1}s + discriminator {:.2}s + uplink {:.1}s + cloud {:.1}s + downlink {:.1}s; {} KB uploaded",
                l.edge_infer_s,
                l.discriminator_s,
                l.uplink_s,
                l.cloud_infer_s,
                l.downlink_s,
                r.uplink_bytes / 1024
            );
        }
    }
    println!("\nthe small-big system keeps most frames local, halving bandwidth and");
    println!("cutting end-to-end time while staying within a few mAP of cloud-only.");
}
