//! The model-update loop end to end: the cloud refits the discriminator
//! calibration from its own big-model answers (free pseudo-labels — no
//! human labels anywhere), rolls the refit out as versioned artifacts on
//! the answer path, and the edge applies them atomically between frames
//! with a probation window that rolls back on divergence.
//!
//! Three scenarios:
//!
//! 1. **Drift.** A camera drifts from day to night mid-run. A static
//!    calibration keeps routing on day-shaped difficulty scores; the
//!    update loop re-anchors the edge's score history each epoch.
//! 2. **Lost updates.** A session that goes dark while refits publish
//!    catches up with a single apply on its next served frame — versions
//!    are cumulative, so nothing is replayed.
//! 3. **Rollback.** A zero divergence bound turns any probation shift
//!    into a trip: the edge restores its pre-apply snapshot and reverts
//!    the active version.
//!
//! Everything is deterministic (virtual clocks, seeded pools, grid-search
//! refits), and the final determinism check pins that an update loop
//! which never fires changes nothing at all.
//!
//! ```bash
//! cargo run --release --example model_update
//! ```

use smallbig::prelude::*;
use std::sync::Arc;

const NUM_CLASSES: usize = 2;
const FRAMES: usize = 120;
const SWAP_AT_S: f64 = 60.0;
const WINDOW_S: usize = 20;

/// One scene pool per drift phase, generated up front so every run (and
/// every configuration) sees byte-identical frames.
fn pools(schedule: &DriftSchedule) -> Vec<Dataset> {
    (0..FRAMES)
        .map(|i| i as f64)
        .fold(Vec::new(), |mut acc, t| {
            let phase = schedule.phase_index(t);
            if phase == acc.len() {
                acc.push(Dataset::generate(
                    &format!("update-phase{phase}"),
                    schedule.profile_at(t),
                    40,
                    0x10ad ^ (phase as u64) << 16,
                ));
            }
            acc
        })
}

/// Drives the drifting camera against one cloud configuration, one frame
/// per virtual second, and prints the per-window upload fraction.
fn drive(
    label: &str,
    schedule: &DriftSchedule,
    updates: Option<UpdateConfig>,
) -> (SessionReport, smallbig::core::CloudStats) {
    let pools = pools(schedule);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, NUM_CLASSES);
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(SimDetector::new(
        ModelKind::SsdVgg16,
        SplitId::Helmet,
        NUM_CLASSES,
    ));
    let mut cloud = CloudServer::spawn(
        CloudConfig {
            updates,
            ..CloudConfig::default()
        },
        big,
    );
    let mut sess = cloud.connect(
        SessionConfig {
            frame_size: (96, 96),
            ..SessionConfig::new(NUM_CLASSES)
        },
        &small,
        Box::new(Policy::DifficultCase(DifficultCaseDiscriminator::default())),
    );

    print!("  {label:<22}");
    let mut window_uploads = 0usize;
    for i in 0..FRAMES {
        let t = i as f64;
        let pool = &pools[schedule.phase_index(t)];
        sess.advance_to(t);
        let ticket = sess.submit(&pool.scenes()[i % pool.len()]);
        let result = sess.poll(ticket).expect("frame resolves");
        if result.decision.is_upload() {
            window_uploads += 1;
        }
        if (i + 1) % WINDOW_S == 0 {
            print!(" {:>4.0}%", 100.0 * window_uploads as f64 / WINDOW_S as f64);
            window_uploads = 0;
        }
    }
    let report = sess.drain();
    drop(sess);
    let stats = cloud.shutdown();
    println!(
        "   v{} ({} applied, {} rollbacks)",
        report.calibration_version, report.updates_applied, report.rollbacks
    );
    (report, stats)
}

fn main() {
    let schedule = DriftSchedule::day_night(DatasetProfile::helmet(), SWAP_AT_S);
    let cfg = UpdateConfig {
        epoch_s: 15.0,
        min_examples: 6,
        holdout: 4,
        divergence: 1.0, // scenario 3 tightens this
    };

    // ---- 1. Day→night drift: static calibration vs the update loop ----
    println!(
        "drifting camera ({FRAMES} frames, day→night at t={SWAP_AT_S}s; \
         upload fraction per {WINDOW_S}s window):"
    );
    let (static_report, _) = drive("static calibration", &schedule, None);
    let (updated_report, stats) = drive("update loop", &schedule, Some(cfg));
    assert_eq!(static_report.updates_applied, 0);
    assert!(stats.updates_published >= 2);
    assert!(updated_report.updates_applied >= 1);
    println!(
        "  the cloud refit {} times; the edge ended on version {} of the calibration",
        stats.updates_published, updated_report.calibration_version
    );

    // ---- 2. Lost updates: a quiet session catches up in one apply ----
    // The cloud pushes the *newest* artifact right before a lagging
    // session's next answer, so a session that slept through several
    // versions needs exactly one apply to converge.
    let pool = pools(&schedule).remove(0);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, NUM_CLASSES);
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(SimDetector::new(
        ModelKind::SsdVgg16,
        SplitId::Helmet,
        NUM_CLASSES,
    ));
    let mut cloud = CloudServer::spawn(
        CloudConfig {
            updates: Some(cfg),
            ..CloudConfig::default()
        },
        big,
    );
    let session_cfg = SessionConfig {
        frame_size: (96, 96),
        ..SessionConfig::new(NUM_CLASSES)
    };
    let mk_policy = || Box::new(Policy::DifficultCase(DifficultCaseDiscriminator::default()));
    let mut busy = cloud.connect(session_cfg.clone(), &small, mk_policy());
    let mut quiet = cloud.connect(session_cfg, &small, mk_policy());
    for i in 0..80 {
        busy.advance_to(i as f64);
        let t = busy.submit(&pool.scenes()[i % pool.len()]);
        busy.poll(t).expect("frame resolves");
    }
    for i in 80..82 {
        quiet.advance_to(i as f64);
        let t = quiet.submit(&pool.scenes()[i % pool.len()]);
        quiet.poll(t).expect("frame resolves");
    }
    let busy_report = busy.drain();
    let quiet_report = quiet.drain();
    drop((busy, quiet));
    let stats = cloud.shutdown();
    println!(
        "\nlost-update catch-up: {} versions published while one session slept; \
         it woke, applied {} artifact, and landed on v{} (newest is v{})",
        stats.updates_published,
        quiet_report.updates_applied,
        quiet_report.calibration_version,
        stats.calibration_version,
    );
    assert_eq!(quiet_report.updates_applied, 1);
    assert_eq!(quiet_report.calibration_version, stats.calibration_version);
    assert!(busy_report.updates_applied >= 1);

    // ---- 3. Rollback: a zero divergence bound trips probation ----
    println!("\nzero divergence bound (every probation shift is a trip):");
    let (tripped, _) = drive(
        "paranoid bound",
        &schedule,
        Some(UpdateConfig {
            divergence: 0.0,
            ..cfg
        }),
    );
    assert!(tripped.rollbacks >= 1, "probation must trip at least once");
    println!(
        "  {} rollback(s): each trip restored the pre-apply snapshot and reverted the version",
        tripped.rollbacks
    );

    // ---- 4. Determinism: replays are bit-identical; a loop that never
    //         fires changes nothing ----
    let (replay, _) = drive("replay (bit-check)", &schedule, Some(cfg));
    assert_eq!(replay, updated_report, "update runs must replay exactly");
    let starved = UpdateConfig {
        min_examples: usize::MAX,
        ..UpdateConfig::default()
    };
    let (starved_report, _) = drive("starved loop", &schedule, Some(starved));
    assert_eq!(
        starved_report, static_report,
        "an update loop that never fires must not move a byte"
    );
    println!("\ndeterminism: replay bit-identical; starved loop == updates disabled (asserted)");
}
