//! Multi-edge streaming: four edge devices with different links and offload
//! policies share one cloud server — the deployment shape the legacy batch
//! API (`run_system`) could not express.
//!
//! ```bash
//! cargo run --release --example multi_edge
//! ```

use smallbig::core::{CloudConfig, CloudServer, Policy, SessionConfig, Thresholds};
use smallbig::prelude::*;
use std::sync::Arc;

fn main() {
    // A HELMET-like monitoring workload (2 classes: person, helmet).
    let data = Dataset::generate("multi-edge", &DatasetProfile::helmet(), 120, 42);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big: Arc<dyn Detector + Send + Sync> =
        Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));

    // One cloud, batching up to 4 frames across sessions per GPU pass.
    let mut cloud = CloudServer::spawn(
        CloudConfig {
            max_batch: 4,
            ..CloudConfig::default()
        },
        big,
    );

    let disc = DifficultCaseDiscriminator::new(Thresholds {
        conf: 0.21,
        count: 4,
        area: 0.03,
    });
    let base = SessionConfig::new(2);
    // Four edges: a well-connected site, a congested WLAN, a cellular
    // roadside unit, and a bandwidth-starved unit uploading everything.
    let mut sessions = vec![
        (
            "site-A fast-wifi + discriminator",
            cloud.connect(
                SessionConfig {
                    link: LinkModel::fast_wifi(),
                    seed: 1,
                    ..base.clone()
                },
                &small,
                Box::new(disc.clone()),
            ),
        ),
        (
            "site-B wlan + discriminator",
            cloud.connect(
                SessionConfig {
                    link: LinkModel::wlan(),
                    seed: 2,
                    ..base.clone()
                },
                &small,
                Box::new(disc.clone()),
            ),
        ),
        (
            "site-C cellular + random 30%",
            cloud.connect(
                SessionConfig {
                    link: LinkModel::cellular(),
                    seed: 3,
                    ..base.clone()
                },
                &small,
                Box::new(Policy::Random {
                    upload_fraction: 0.3,
                    seed: 7,
                }),
            ),
        ),
        (
            "site-D wlan + cloud-only",
            cloud.connect(
                SessionConfig {
                    link: LinkModel::wlan(),
                    seed: 4,
                    ..base.clone()
                },
                &small,
                Box::new(Policy::CloudOnly),
            ),
        ),
    ];

    // Skewed traffic: site k sees every (k+1)-th frame of the stream.
    for (i, scene) in data.iter().enumerate() {
        for (k, (_, session)) in sessions.iter_mut().enumerate() {
            if i % (k + 1) == 0 {
                session.submit(scene);
            }
        }
    }

    println!(
        "{:<36} {:>6} {:>8} {:>9} {:>9} {:>10}",
        "edge session", "frames", "upload%", "mAP%", "time(s)", "mean lat"
    );
    for (name, session) in sessions.iter_mut() {
        let r = session.drain();
        println!(
            "{name:<36} {:>6} {:>7.1}% {:>8.2}% {:>8.2}s {:>8.0} ms",
            r.frames,
            r.upload_ratio * 100.0,
            r.map_pct,
            r.total_time_s,
            r.latency.mean_s() * 1000.0
        );
    }

    drop(sessions);
    let stats = cloud.shutdown();
    println!(
        "\ncloud: served {} frames in {} batches ({:.1} frames/batch), busy {:.2}s",
        stats.served,
        stats.batches,
        stats.served as f64 / stats.batches.max(1) as f64,
        stats.busy_s
    );
}
