//! Why not Neurosurgeon-style model partitioning? (paper Sec. II-C)
//!
//! For object detectors, the intermediate activations that a partitioned
//! execution would ship across the network are larger than the encoded image
//! itself at almost every split point — which is precisely why the paper
//! uploads (selected) images instead.
//!
//! ```bash
//! cargo run --release --example partition_motivation
//! ```

use modelzoo::PartitionAnalysis;
use smallbig::prelude::*;

fn main() {
    let net = modelzoo::ssd300_vgg16(20);
    let analysis = PartitionAnalysis::of(&net);

    // A representative encoded camera frame.
    let scene = Scene::sample(&DatasetProfile::voc(), 1, 0);
    let frame = imaging::render(&scene.render_spec(300, 300));
    let image_bytes = imaging::encoded_size_bytes(&frame) as u64;
    println!("encoded 300x300 camera frame: {} KB\n", image_bytes / 1024);

    println!(
        "{:<12} {:>14} {:>12} {:>12}",
        "split after", "activation", "vs image", "edge FLOPs"
    );
    let total: u64 = analysis
        .splits
        .last()
        .map(|s| s.device_flops + s.cloud_flops)
        .unwrap_or(1);
    for sp in analysis.splits.iter().step_by(2) {
        println!(
            "{:<12} {:>11} KB {:>11.1}x {:>11.1}%",
            sp.layer_name,
            sp.transfer_bytes / 1024,
            sp.transfer_bytes as f64 / image_bytes as f64,
            sp.device_flops as f64 / total as f64 * 100.0
        );
    }

    let worse = analysis.splits_larger_than_image(image_bytes);
    println!(
        "\n{}/{} split points would transfer MORE than the image itself.",
        worse,
        analysis.splits.len()
    );
    if let Some(sp) = analysis.min_transfer_within_budget(0.25) {
        println!(
            "even the best split within a 25% edge-compute budget ships {:.1}x the image (after {}).",
            sp.transfer_bytes as f64 / image_bytes as f64,
            sp.layer_name
        );
    }
    println!("conclusion: for detection, ship (difficult) images — not features.");
}
