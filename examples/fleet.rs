//! Fleet-scale simulation: a diurnal, Zipf-skewed population of edge
//! sessions over sharded clouds, run through the event-driven virtual-time
//! core — no thread or channel per session.
//!
//! ```bash
//! cargo run --release --example fleet              # 20k sessions
//! cargo run --release --example fleet -- 100000    # pick your own scale
//! cargo run --release --example fleet -- 100000 4  # …on 4 drive threads
//! ```

use smallbig::prelude::*;
use std::time::Instant;

fn main() {
    let sessions: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("session count"))
        .unwrap_or(20_000);
    let threads: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("thread count"))
        .unwrap_or(0); // 0 = one worker per core

    // The default population: Jetson edges over a wlan/fast-wifi/cellular
    // mix (one slice traced through a diurnal bandwidth ramp), 20
    // Zipf(1.1) tenants, diurnal arrivals, half the fleet under a 500 ms
    // deadline, 4 cloud shards. The report is bit-identical for any
    // `threads` value — the knob changes wall-clock time only.
    let spec = FleetSpec {
        threads,
        ..FleetSpec::new(sessions)
    };

    let wall = Instant::now();
    let report = run_fleet(&spec).expect("no shard failed");
    let elapsed = wall.elapsed().as_secs_f64();

    println!(
        "fleet: {} sessions, {} tenants, {} frames ({:.0}% uploaded), seed {:#x}",
        report.sessions,
        report.tenants.len(),
        report.frames,
        report.upload_ratio * 100.0,
        report.seed,
    );
    println!(
        "wall: {elapsed:.2}s ({:.0} sessions/sec, {:.0} frames/sec)",
        report.sessions as f64 / elapsed,
        report.frames as f64 / elapsed,
    );
    println!(
        "virtual horizon: {:.1}s; uplink {:.1} MB ({:.0} bytes/session)",
        report.completed_horizon_s,
        report.uplink_bytes as f64 / 1e6,
        report.uplink_bytes as f64 / report.sessions as f64,
    );

    let q = &report.latency;
    println!(
        "\nlatency: mean {:.1} ms | p50 {:.1} ms | p90 {:.1} ms | p99 {:.1} ms | p999 {:.1} ms | max {:.1} ms",
        q.mean_s * 1e3,
        q.p50_s * 1e3,
        q.p90_s * 1e3,
        q.p99_s * 1e3,
        q.p999_s * 1e3,
        q.max_s * 1e3,
    );
    println!(
        "fallbacks: {} deadline misses, {} link, {} admission",
        report.deadline_misses, report.link_fallbacks, report.admission_fallbacks,
    );

    println!("\ndeadline-miss curve (fraction of frames missing each deadline):");
    for point in &report.miss_curve {
        let bar = "#".repeat((point.miss_fraction * 40.0).round() as usize);
        println!(
            "  {:>6.0} ms  {:>6.2}%  {bar}",
            point.deadline_s * 1e3,
            point.miss_fraction * 100.0
        );
    }

    println!("\nper-tenant breakdown (Zipf sizes; largest first):");
    println!(
        "  {:>6} {:>9} {:>9} {:>8} {:>9} {:>9} {:>9}",
        "tenant", "sessions", "frames", "upload%", "p50(ms)", "p99(ms)", "p999(ms)"
    );
    let mut tenants = report.tenants.clone();
    tenants.sort_by_key(|t| std::cmp::Reverse(t.sessions));
    for t in tenants.iter().take(8) {
        println!(
            "  {:>6} {:>9} {:>9} {:>7.1}% {:>9.1} {:>9.1} {:>9.1}",
            t.tenant,
            t.sessions,
            t.frames,
            t.uploads as f64 / t.frames.max(1) as f64 * 100.0,
            t.latency.p50_s * 1e3,
            t.latency.p99_s * 1e3,
            t.latency.p999_s * 1e3,
        );
    }
    if tenants.len() > 8 {
        println!("  … {} more tenants", tenants.len() - 8);
    }
}
