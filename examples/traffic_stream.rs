//! Streaming scenario: a roadside camera produces a temporally correlated
//! video feed (objects persist and drift between frames), processed frame by
//! frame — the situation the paper's intro motivates (video streams over a
//! constrained uplink).
//!
//! Demonstrates the discriminator used online (per frame, no batch sorting),
//! temporal coherence of its verdicts, and the per-frame latency/bandwidth
//! ledger.
//!
//! ```bash
//! cargo run --release --example traffic_stream
//! ```

use smallbig::core::PREDICTION_THRESHOLD;
use smallbig::datagen::{VideoProfile, VideoSequence};
use smallbig::prelude::*;

fn main() {
    // A COCO-traffic-like content mix evolving at ~1 fps.
    let video_profile = VideoProfile::surveillance(DatasetProfile::coco18());
    let video = VideoSequence::generate(&video_profile, 24, 0xcafe);
    println!(
        "generated {} frames; mean object persistence between frames: {:.0}%\n",
        video.len(),
        video.mean_persistence() * 100.0
    );

    let nc = video_profile.base.taxonomy.len();
    let small = SimDetector::new(ModelKind::MobileNetV1Ssd, SplitId::Coco18, nc);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Coco18, nc);

    // Calibrate on a static training set from the same content distribution.
    let train =
        smallbig::datagen::Dataset::generate("roadside-train", &video_profile.base, 800, 0xfeed);
    let (cal, _) = calibrate(&train, &small, &big);
    let disc = DifficultCaseDiscriminator::new(cal.thresholds);

    let wlan = LinkModel::wlan();
    let nano = DeviceModel::jetson_nano();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);

    println!("frame  objects  small-boxes  verdict    final-boxes  latency");
    let mut uploaded = 0usize;
    let mut bytes_up = 0u64;
    let mut prev_verdict: Option<CaseKind> = None;
    let mut verdict_flips = 0usize;

    for (i, scene) in video.frames().iter().enumerate() {
        let small_dets = small.detect(scene);
        let verdict = disc.classify(&small_dets);
        if let Some(prev) = prev_verdict {
            if prev != verdict {
                verdict_flips += 1;
            }
        }
        prev_verdict = Some(verdict);
        let mut latency = nano.inference_time(small.flops());

        let final_count = if verdict.is_difficult() {
            let frame = imaging::render(&scene.render_spec(160, 120));
            let size = imaging::encoded_size_bytes(&frame);
            bytes_up += size as u64;
            uploaded += 1;
            latency += wlan.transfer_time(size, &mut rng)
                + DeviceModel::gpu_server().inference_time(big.flops());
            big.detect(scene).count_above(PREDICTION_THRESHOLD)
        } else {
            small_dets.count_above(PREDICTION_THRESHOLD)
        };

        println!(
            "{i:>5}  {:>7}  {:>11}  {:<9}  {:>11}  {:>6.0} ms",
            scene.num_objects(),
            small_dets.count_above(PREDICTION_THRESHOLD),
            verdict.to_string(),
            final_count,
            latency * 1000.0
        );
    }
    println!(
        "\nuploaded {uploaded}/{} frames ({} KB); verdict changed {verdict_flips} times — \
         coherent scenes give coherent routing",
        video.len(),
        bytes_up / 1024
    );
}
