//! Quickstart: calibrate the discriminator, evaluate the small-big system on
//! a VOC07-like split (the paper's batch protocol), then stream the same
//! deployment through the session API.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use smallbig::prelude::*;
use std::sync::Arc;

fn main() {
    // 10% of the published VOC07 sizes keeps this snappy; use 1.0 for full.
    let split = Split::load_scaled(SplitId::Voc07, 0.1);
    println!(
        "VOC07-like split: {} train / {} test images, {} classes",
        split.train.len(),
        split.test.len(),
        split.test.taxonomy().len()
    );

    // The edge's small model and the cloud's big model.
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);

    // Calibrate the three thresholds on the training set (paper Sec. V-D):
    // the confidence threshold by count-loss regression, the count and area
    // thresholds by accuracy grid search over labelled difficulty.
    let (cal, examples) = calibrate(&split.train, &small, &big);
    println!(
        "calibrated thresholds: conf {:.2}, count {}, area {:.2}",
        cal.thresholds.conf, cal.thresholds.count, cal.thresholds.area
    );
    println!(
        "training set: {:.1}% difficult cases, discriminator accuracy {:.1}%",
        smallbig::core::difficult_fraction(&examples) * 100.0,
        cal.train_stats.accuracy * 100.0
    );

    // Evaluate the full system against the two extremes.
    let disc = DifficultCaseDiscriminator::new(cal.thresholds);
    let cfg = EvalConfig::default();
    for policy in [
        Policy::EdgeOnly,
        Policy::DifficultCase(disc.clone()),
        Policy::CloudOnly,
    ] {
        let name = policy.name();
        let out = evaluate(&split.test, &small, &big, &policy, &cfg);
        println!(
            "{name:<45} mAP {:>5.2}%  detected {:>5}/{}  upload {:>5.1}%",
            out.e2e_map_pct,
            out.e2e_detected,
            out.total_gt,
            out.upload_ratio * 100.0
        );
    }

    // The same deployment as a stream: frames arrive one at a time at an
    // edge session; difficult cases travel to a shared cloud server as real
    // serialized wire frames under simulated link/device clocks.
    let big: Arc<dyn Detector + Send + Sync> = Arc::new(big);
    let mut cloud = CloudServer::spawn(CloudConfig::default(), big);
    let mut edge = cloud.connect(
        SessionConfig {
            frame_size: (128, 96),
            ..SessionConfig::new(20)
        },
        &small,
        Box::new(disc),
    );
    for scene in split.test.iter() {
        edge.submit(scene);
    }
    let report = edge.drain();
    drop(edge);
    let stats = cloud.shutdown();
    println!(
        "\nstreamed {} frames: mAP {:.2}%, upload {:.1}%, {:.1}s virtual time \
         ({} cloud batches)",
        report.frames,
        report.map_pct,
        report.upload_ratio * 100.0,
        report.total_time_s,
        stats.batches
    );
}
