//! The cloud scheduling control plane: pluggable batch schedulers,
//! admission control, and deterministic autoscaling.
//!
//! One cloud serves two edges: a deadline-less cloud-only camera that
//! floods the uplink in bursts, and a monitored session whose difficult
//! cases carry a deadline and a discriminator difficulty score. The
//! scheduler decides who waits: FIFO interleaves the monitored frames
//! behind the flood, while the deadline-aware and difficulty-priority
//! schedulers pull them forward. Admission control
//! (`CloudConfig::queue_limit`) sheds load before any uplink is spent, and
//! the autoscaler grows the wall-clock inference pool with the queue —
//! without moving a single virtual timestamp.
//!
//! Everything is deterministic: virtual clocks, seeded RNG streams, and
//! schedulers that never draw randomness.
//!
//! ```bash
//! cargo run --release --example cloud_scheduling
//! ```

use smallbig::core::{
    AutoscaleConfig, CloudConfig, CloudServer, CloudStats, Policy, SchedulerConfig, SessionConfig,
    SessionReport, Thresholds,
};
use smallbig::prelude::*;
use std::sync::Arc;

/// Drives the two-tenant burst workload against one cloud configuration
/// and returns the monitored session's report plus the cloud's stats.
///
/// `interleave` alternates the two tenants' submissions within a round
/// (so the monitored session probes the queue at varying depths — the
/// admission-control story); sequential rounds (flood first) maximise the
/// backlog the scheduler gets to reorder at each flush.
fn drive(data: &Dataset, interleave: bool, config: CloudConfig) -> (SessionReport, CloudStats) {
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big: Arc<dyn Detector + Send + Sync> =
        Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
    let disc = DifficultCaseDiscriminator::new(Thresholds {
        conf: 0.21,
        count: 4,
        area: 0.03,
    });

    let mut cloud = CloudServer::spawn(config, big);
    let mut flood = cloud.connect(
        SessionConfig {
            frame_size: (96, 96),
            seed: 0x7e57,
            ..SessionConfig::new(2)
        },
        &small,
        Box::new(Policy::CloudOnly),
    );
    let mut monitored = cloud.connect(
        SessionConfig {
            frame_size: (96, 96),
            deadline_s: Some(0.4),
            ..SessionConfig::new(2)
        },
        &small,
        Box::new(disc),
    );

    // Per round: six unpolled flood frames and four monitored frames go
    // up before the first poll. The poll flushes the whole backlog
    // through the batch pipeline, so whoever the scheduler serves last
    // pays the queueing delay.
    for round in data.scenes().chunks(10) {
        let (ours, burst) = round.split_at(round.len().min(4));
        let mut tickets = Vec::new();
        if interleave {
            // Alternate flood/monitored (flood first), then drain whichever
            // stream is longer — every scene submits even in a short final
            // round.
            let mut flood_scenes = burst.iter();
            let mut our_scenes = ours.iter();
            loop {
                match (flood_scenes.next(), our_scenes.next()) {
                    (None, None) => break,
                    (f, o) => {
                        if let Some(scene) = f {
                            flood.submit(scene);
                        }
                        if let Some(scene) = o {
                            tickets.push(monitored.submit(scene));
                        }
                    }
                }
            }
        } else {
            for scene in burst {
                flood.submit(scene);
            }
            tickets.extend(ours.iter().map(|s| monitored.submit(s)));
        }
        for t in tickets {
            let _ = monitored.poll(t);
        }
    }
    let report = monitored.drain();
    flood.drain();
    drop((monitored, flood));
    (report, cloud.shutdown())
}

fn main() {
    let data = Dataset::generate("scheduling", &DatasetProfile::helmet(), 300, 42);

    // ---- 1. Who waits? Scheduler comparison under the same burst load ----
    println!("schedulers under burst load (6 flood + 4 monitored frames per round, max_batch 4):");
    println!(
        "  {:<22} {:>7} {:>9} {:>7} {:>13} {:>17}",
        "scheduler", "mAP%", "upload%", "misses", "fallbacks", "mean latency(ms)"
    );
    let schedulers = [
        SchedulerConfig::Fifo,
        SchedulerConfig::DeadlineAware { lookahead: 2 },
        SchedulerConfig::DifficultyPriority { lookahead: 2 },
    ];
    for sched in schedulers {
        let (r, _) = drive(
            &data,
            false,
            CloudConfig {
                max_batch: 4,
                scheduler: sched,
                ..CloudConfig::default()
            },
        );
        println!(
            "  {:<22} {:>7.2} {:>8.1}% {:>7} {:>13} {:>17.1}",
            sched.name(),
            r.map_pct,
            r.upload_ratio * 100.0,
            r.deadline_misses,
            r.link_fallbacks + r.admission_fallbacks,
            r.latency.mean_s() * 1000.0,
        );
    }

    // ---- 2. Admission control: shed load before spending the uplink ----
    println!("\nadmission control (fifo; frames over the queue limit are served edge-only):");
    for queue_limit in [None, Some(4), Some(3), Some(2)] {
        let (r, stats) = drive(
            &data,
            true,
            CloudConfig {
                max_batch: 4,
                queue_limit,
                ..CloudConfig::default()
            },
        );
        println!(
            "  limit {:<7} upload {:>5.1}%  admission fallbacks {:>3}  uplink {:>7} B  \
             mean latency {:>6.1}ms  cloud served {:>3}",
            queue_limit
                .map(|n| n.to_string())
                .unwrap_or_else(|| "none".into()),
            r.upload_ratio * 100.0,
            r.admission_fallbacks,
            r.uplink_bytes,
            r.latency.mean_s() * 1000.0,
            stats.served,
        );
    }

    // ---- 3. Deterministic autoscaling under a cloud stall ----
    // The pool grows with the queue and parks during the stall window; the
    // report is bit-identical to the fixed pool because scaling is
    // wall-clock only.
    let stall = FaultPlan::new().with_stall(2.0, 3.0);
    let fixed = drive(
        &data,
        false,
        CloudConfig {
            max_batch: 4,
            workers: 4,
            faults: stall.clone(),
            ..CloudConfig::default()
        },
    );
    let scaled = drive(
        &data,
        false,
        CloudConfig {
            max_batch: 4,
            workers: 4,
            faults: stall,
            autoscale: Some(AutoscaleConfig {
                frames_per_worker: 2,
                min_workers: 1,
            }),
            ..CloudConfig::default()
        },
    );
    assert_eq!(
        fixed.0, scaled.0,
        "autoscaling must never move a virtual timestamp"
    );
    println!(
        "\nautoscaler (4-worker pool, cloud stall 2–5s): peak {} workers, {} resizes — \
         report bit-identical to the fixed pool (asserted)",
        scaled.1.peak_workers, scaled.1.scale_changes,
    );
}
