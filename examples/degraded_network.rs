//! Degraded networks: the same monitoring workload driven through a link
//! outage, bursty cellular loss and a diurnal capacity ramp — plus a custom
//! *link-aware* policy that reads the observed link state and simply stops
//! offloading when the network can no longer pay for it.
//!
//! Everything is deterministic: traces are piecewise schedules over virtual
//! time, retransmissions back off against per-session virtual clocks, and a
//! frame whose upload can't make it is served from the edge-only answer
//! (`link fallbacks` below).
//!
//! ```bash
//! cargo run --release --example degraded_network
//! ```

use smallbig::core::{
    run_system, Decision, OffloadPolicy, Policy, PolicyInput, RuntimeConfig, RuntimeMode,
    Thresholds,
};
use smallbig::prelude::*;
use smallbig::simnet::LinkTrace;

/// Upload difficult cases *only while the link can deliver them quickly*:
/// the discriminator proposes, the observed link state disposes. This is
/// the adaptive-policy extension point — `PolicyInput::link` carries the
/// effective bandwidth/RTT/loss under the session's trace at each frame.
struct LinkAwareDiscriminator {
    disc: DifficultCaseDiscriminator,
    /// Keep frames local when even a nominal upload would exceed this.
    transfer_budget_s: f64,
    /// Typical encoded-frame size used for the estimate.
    frame_bytes: usize,
}

impl OffloadPolicy for LinkAwareDiscriminator {
    fn decide(&mut self, input: &PolicyInput<'_>) -> Decision {
        if let Some(link) = input.link {
            if link.nominal_transfer_time(self.frame_bytes) > self.transfer_budget_s {
                return Decision::Local; // congested or dark: don't even try
            }
        }
        match self.disc.classify(input.small_dets) {
            k if k.is_difficult() => Decision::Upload,
            _ => Decision::Local,
        }
    }

    fn name(&self) -> String {
        format!(
            "link-aware discriminator (budget {:.1}s)",
            self.transfer_budget_s
        )
    }
}

fn main() {
    let data = Dataset::generate("degraded", &DatasetProfile::helmet(), 120, 42);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
    let disc = DifficultCaseDiscriminator::new(Thresholds {
        conf: 0.21,
        count: 4,
        area: 0.03,
    });

    let traces: [(&str, LinkTrace); 4] = [
        ("healthy (constant)", LinkTrace::constant()),
        ("outage 10–40s", LinkTrace::step_outage(10.0, 30.0)),
        ("bursty loss", LinkTrace::bursty(11, 300.0, 6.0, 3.0, 0.9)),
        ("diurnal ramp", LinkTrace::diurnal_ramp(60.0, 0.15, 12, 6)),
    ];

    println!(
        "{:<22} {:<18} {:>7} {:>8} {:>9} {:>10} {:>11}",
        "trace", "policy", "mAP%", "upload%", "time(s)", "fallbacks", "retrans(s)"
    );
    for (trace_name, trace) in &traces {
        for mode_name in ["discriminator", "cloud-only", "edge-only"] {
            let mode = match mode_name {
                "discriminator" => RuntimeMode::SmallBig,
                "cloud-only" => RuntimeMode::CloudOnly,
                _ => RuntimeMode::EdgeOnly,
            };
            let r = run_system(
                &data,
                &small,
                &big,
                &disc,
                mode,
                &RuntimeConfig {
                    frame_size: (96, 96),
                    link_trace: Some(trace.clone()),
                    ..Default::default()
                },
            );
            println!(
                "{trace_name:<22} {mode_name:<18} {:>6.2} {:>7.1}% {:>8.2}s {:>10} {:>10.2}s",
                r.map_pct,
                r.upload_ratio * 100.0,
                r.total_time_s,
                r.link_fallbacks,
                r.latency.total.retransmit_s,
            );
        }
    }

    // The adaptive policy in a streaming session: compare the plain
    // discriminator against the link-aware one on the outage trace. Each
    // policy gets its own cloud so the virtual clocks line up.
    use smallbig::core::{CloudServer, SessionConfig};
    use std::sync::Arc;
    let session_cfg = SessionConfig {
        frame_size: (96, 96),
        link_trace: Some(LinkTrace::step_outage(10.0, 30.0)),
        ..SessionConfig::new(2)
    };
    let policies: [(&str, Box<dyn OffloadPolicy>); 3] = [
        ("plain discriminator", Box::new(disc.clone())),
        (
            "link-aware",
            Box::new(LinkAwareDiscriminator {
                disc: disc.clone(),
                transfer_budget_s: 2.0,
                frame_bytes: 3_000,
            }),
        ),
        ("cloud-only", Box::new(Policy::CloudOnly)),
    ];
    println!("\nstreaming sessions on the outage trace (paced, one frame in flight):");
    for (name, policy) in policies {
        let big_arc: Arc<dyn Detector + Send + Sync> =
            Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
        let mut cloud = CloudServer::spawn(Default::default(), big_arc);
        let mut session = cloud.connect(session_cfg.clone(), &small, policy);
        for scene in data.iter() {
            let ticket = session.submit(scene);
            let _ = session.poll(ticket); // a live camera waits per frame
        }
        let r = session.drain();
        println!(
            "  {name:<22} upload {:>5.1}%  mAP {:>6.2}%  fallbacks {:>3}  retrans {:>6.2}s  time {:>7.2}s",
            r.upload_ratio * 100.0,
            r.map_pct,
            r.link_fallbacks,
            r.latency.total.retransmit_s,
            r.total_time_s,
        );
        drop(session);
        cloud.shutdown();
    }
}
