//! Degraded networks: the same monitoring workload driven through a link
//! outage, bursty cellular loss and a diurnal capacity ramp — plus a custom
//! *link-aware* policy that reads the observed link state and simply stops
//! offloading when the network can no longer pay for it.
//!
//! Everything is deterministic: traces are piecewise schedules over virtual
//! time, retransmissions back off against per-session virtual clocks, and a
//! frame whose upload can't make it is served from the edge-only answer
//! (`link fallbacks` below).
//!
//! ```bash
//! cargo run --release --example degraded_network
//! ```

use smallbig::core::{
    run_system, CloudConfig, CloudServer, Decision, OffloadPolicy, Policy, PolicyInput,
    RuntimeConfig, RuntimeMode, SessionConfig, Thresholds,
};
use smallbig::prelude::*;
use smallbig::simnet::LinkTrace;
use std::borrow::Cow;
use std::sync::Arc;

/// Upload difficult cases *only while the infrastructure can pay for
/// them*: the discriminator proposes, the observed state disposes. This is
/// the adaptive-policy extension point — `PolicyInput::link` carries the
/// effective bandwidth/RTT/loss under the session's trace at each frame,
/// and `PolicyInput::cloud_queue` the cloud queue depth the session last
/// observed (admission probes and answer headers both report it).
struct LinkAwareDiscriminator {
    disc: DifficultCaseDiscriminator,
    /// Keep frames local when even a nominal upload would exceed this.
    transfer_budget_s: f64,
    /// Typical encoded-frame size used for the estimate.
    frame_bytes: usize,
    /// Keep frames local while more than this many frames wait cloud-side
    /// (`None` ignores the queue signal).
    queue_budget: Option<usize>,
    /// Consecutive frames shed on the queue signal (the signal refreshes
    /// only when the session talks to the cloud, so a bounded shed streak
    /// keeps one stale deep-queue reading from locking us out forever).
    shed_streak: usize,
}

impl OffloadPolicy for LinkAwareDiscriminator {
    fn decide(&mut self, input: &PolicyInput<'_>) -> Decision {
        if let Some(link) = input.link {
            if link.nominal_transfer_time(self.frame_bytes) > self.transfer_budget_s {
                return Decision::Local; // congested or dark: don't even try
            }
        }
        if let (Some(budget), Some(depth)) = (self.queue_budget, input.cloud_queue) {
            if depth > budget && self.shed_streak < 8 {
                self.shed_streak += 1;
                return Decision::Local; // the cloud itself is the bottleneck
            }
            // Either the queue recovered or we shed long enough that the
            // reading is stale — let the discriminator route this frame
            // (an upload re-probes and refreshes the observation).
            self.shed_streak = 0;
        }
        match self.disc.classify(input.small_dets) {
            k if k.is_difficult() => Decision::Upload,
            _ => Decision::Local,
        }
    }

    fn name(&self) -> Cow<'static, str> {
        Cow::Owned(format!(
            "link-aware discriminator (budget {:.1}s{})",
            self.transfer_budget_s,
            match self.queue_budget {
                Some(q) => format!(", queue ≤ {q}"),
                None => String::new(),
            }
        ))
    }
}

fn main() {
    let data = Dataset::generate("degraded", &DatasetProfile::helmet(), 120, 42);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
    let disc = DifficultCaseDiscriminator::new(Thresholds {
        conf: 0.21,
        count: 4,
        area: 0.03,
    });

    let traces: [(&str, LinkTrace); 4] = [
        ("healthy (constant)", LinkTrace::constant()),
        ("outage 10–40s", LinkTrace::step_outage(10.0, 30.0)),
        ("bursty loss", LinkTrace::bursty(11, 300.0, 6.0, 3.0, 0.9)),
        ("diurnal ramp", LinkTrace::diurnal_ramp(60.0, 0.15, 12, 6)),
    ];

    println!(
        "{:<22} {:<18} {:>7} {:>8} {:>9} {:>10} {:>11}",
        "trace", "policy", "mAP%", "upload%", "time(s)", "fallbacks", "retrans(s)"
    );
    for (trace_name, trace) in &traces {
        for mode_name in ["discriminator", "cloud-only", "edge-only"] {
            let mode = match mode_name {
                "discriminator" => RuntimeMode::SmallBig,
                "cloud-only" => RuntimeMode::CloudOnly,
                _ => RuntimeMode::EdgeOnly,
            };
            let r = run_system(
                &data,
                &small,
                &big,
                &disc,
                mode,
                &RuntimeConfig {
                    frame_size: (96, 96),
                    link_trace: Some(trace.clone()),
                    ..Default::default()
                },
            );
            println!(
                "{trace_name:<22} {mode_name:<18} {:>6.2} {:>7.1}% {:>8.2}s {:>10} {:>10.2}s",
                r.map_pct,
                r.upload_ratio * 100.0,
                r.total_time_s,
                r.link_fallbacks,
                r.latency.total.retransmit_s,
            );
        }
    }

    // The adaptive policy in a streaming session: compare the plain
    // discriminator against the link-aware one on the outage trace. Each
    // policy gets its own cloud so the virtual clocks line up.
    let session_cfg = SessionConfig {
        frame_size: (96, 96),
        link_trace: Some(LinkTrace::step_outage(10.0, 30.0)),
        ..SessionConfig::new(2)
    };
    let policies: [(&str, Box<dyn OffloadPolicy>); 3] = [
        ("plain discriminator", Box::new(disc.clone())),
        (
            "link-aware",
            Box::new(LinkAwareDiscriminator {
                disc: disc.clone(),
                transfer_budget_s: 2.0,
                frame_bytes: 3_000,
                queue_budget: None,
                shed_streak: 0,
            }),
        ),
        ("cloud-only", Box::new(Policy::CloudOnly)),
    ];
    println!("\nstreaming sessions on the outage trace (paced, one frame in flight):");
    for (name, policy) in policies {
        let big_arc: Arc<dyn Detector + Send + Sync> =
            Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
        let mut cloud = CloudServer::spawn(Default::default(), big_arc);
        let mut session = cloud.connect(session_cfg.clone(), &small, policy);
        for scene in data.iter() {
            let ticket = session.submit(scene);
            let _ = session.poll(ticket); // a live camera waits per frame
        }
        let r = session.drain();
        println!(
            "  {name:<22} upload {:>5.1}%  mAP {:>6.2}%  fallbacks {:>3}  retrans {:>6.2}s  time {:>7.2}s",
            r.upload_ratio * 100.0,
            r.map_pct,
            r.link_fallbacks,
            r.latency.total.retransmit_s,
            r.total_time_s,
        );
        drop(session);
        cloud.shutdown();
    }

    // Sometimes the *cloud*, not the link, is the bottleneck. A background
    // edge floods the shared cloud in unpolled bursts; admission control
    // (`CloudConfig::queue_limit`) makes every upload probe the cloud
    // first, so our session continuously observes the queue depth — the
    // `PolicyInput::cloud_queue` signal — and the queue-aware variant
    // sheds offloads while the backlog is deep instead of queueing its
    // frames (and its latency) behind it.
    println!("\ncloud saturation (bursty background edge, admission probes on):");
    for (name, queue_budget) in [("plain discriminator", None), ("queue-aware", Some(3))] {
        let big_arc: Arc<dyn Detector + Send + Sync> =
            Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
        // The generous queue limit never refuses anyone here — it exists
        // so every upload probes the cloud and the session keeps observing
        // the (backlog-inclusive) queue depth. Shedding is the *policy's*
        // call, from that signal.
        let mut cloud = CloudServer::spawn(
            CloudConfig {
                max_batch: 24,
                queue_limit: Some(100_000),
                ..Default::default()
            },
            big_arc,
        );
        let mut background = cloud.connect(
            SessionConfig {
                frame_size: (96, 96),
                seed: 0x7e57,
                ..SessionConfig::new(2)
            },
            &small,
            Box::new(Policy::CloudOnly),
        );
        let mut session = cloud.connect(
            SessionConfig {
                frame_size: (96, 96),
                ..SessionConfig::new(2)
            },
            &small,
            Box::new(LinkAwareDiscriminator {
                disc: disc.clone(),
                transfer_budget_s: 2.0,
                frame_bytes: 3_000,
                queue_budget,
                shed_streak: 0,
            }),
        );
        // Four unpolled background frames pile up cloud-side per one of
        // ours; our poll flushes the whole backlog through the batch
        // pipeline, so uploaded frames wait behind it.
        for round in data.scenes().chunks(5) {
            let (scene, burst) = round.split_first().expect("chunks are non-empty");
            for bg_scene in burst {
                background.submit(bg_scene);
            }
            let ticket = session.submit(scene);
            let _ = session.poll(ticket);
        }
        let r = session.drain();
        println!(
            "  {name:<22} upload {:>5.1}%  mAP {:>6.2}%  mean latency {:>7.1}ms  last observed queue {:?}",
            r.upload_ratio * 100.0,
            r.map_pct,
            r.latency.mean_s() * 1000.0,
            session.observed_cloud_queue(),
        );
        background.drain();
        drop((session, background));
        cloud.shutdown();
    }
}
