//! Property-based tests for detcore invariants.

use detcore::{
    count_detected, match_greedy, nms, soft_nms, ApProtocol, BBox, ClassId, CountingConfig,
    Detection, GroundTruth, ImageDetections, MapEvaluator, NmsConfig,
};
use proptest::prelude::*;

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0)
        .prop_map(|(x0, y0, x1, y1)| BBox::from_corners(x0, y0, x1, y1))
}

fn arb_detection(max_class: u16) -> impl Strategy<Value = Detection> {
    (0..max_class, 0.0f64..=1.0, arb_bbox()).prop_map(|(c, s, b)| Detection::new(ClassId(c), s, b))
}

fn arb_gt(max_class: u16) -> impl Strategy<Value = GroundTruth> {
    (0..max_class, arb_bbox(), any::<bool>()).prop_map(|(c, b, d)| {
        if d {
            GroundTruth::new_difficult(ClassId(c), b)
        } else {
            GroundTruth::new(ClassId(c), b)
        }
    })
}

proptest! {
    #[test]
    fn iou_is_symmetric(a in arb_bbox(), b in arb_bbox()) {
        prop_assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-12);
    }

    #[test]
    fn iou_in_unit_interval(a in arb_bbox(), b in arb_bbox()) {
        let v = a.iou(&b);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn iou_self_is_one_unless_degenerate(a in arb_bbox()) {
        let v = a.iou(&a);
        if a.area() > 0.0 {
            prop_assert!((v - 1.0).abs() < 1e-12);
        } else {
            prop_assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn intersection_area_bounded(a in arb_bbox(), b in arb_bbox()) {
        let i = a.intersection_area(&b);
        prop_assert!(i >= 0.0);
        prop_assert!(i <= a.area() + 1e-12);
        prop_assert!(i <= b.area() + 1e-12);
    }

    #[test]
    fn union_hull_contains_inputs(a in arb_bbox(), b in arb_bbox()) {
        let u = a.union_hull(&b);
        prop_assert!(u.contains_box(&a));
        prop_assert!(u.contains_box(&b));
        prop_assert!(u.area() + 1e-12 >= a.area().max(b.area()));
    }

    #[test]
    fn clamp_unit_stays_in_unit(a in arb_bbox()) {
        let t = a.translated(0.7, -0.4).clamp_unit();
        prop_assert!(t.x_min() >= 0.0 && t.x_max() <= 1.0);
        prop_assert!(t.y_min() >= 0.0 && t.y_max() <= 1.0);
    }

    #[test]
    fn nms_output_subset_and_sorted(
        dets in prop::collection::vec(arb_detection(4), 0..40),
        iou in 0.1f64..0.9,
    ) {
        let input = ImageDetections::from_vec(dets);
        let cfg = NmsConfig::with_iou(iou);
        let out = nms(&input, &cfg);
        prop_assert!(out.len() <= input.len());
        // Every output detection was in the input.
        for d in out.iter() {
            prop_assert!(input.iter().any(|i| i == d));
        }
        // Sorted by descending score.
        let scores: Vec<f64> = out.iter().map(|d| d.score()).collect();
        prop_assert!(scores.windows(2).all(|w| w[0] >= w[1]));
        // No same-class pair overlaps more than the threshold.
        let v = out.as_slice();
        for i in 0..v.len() {
            for j in (i + 1)..v.len() {
                if v[i].class() == v[j].class() {
                    prop_assert!(v[i].bbox().iou(&v[j].bbox()) <= iou + 1e-12);
                }
            }
        }
    }

    #[test]
    fn nms_idempotent(
        dets in prop::collection::vec(arb_detection(3), 0..30),
        iou in 0.1f64..0.9,
    ) {
        let cfg = NmsConfig::with_iou(iou);
        let once = nms(&ImageDetections::from_vec(dets), &cfg);
        let twice = nms(&once, &cfg);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn soft_nms_never_raises_scores(
        dets in prop::collection::vec(arb_detection(3), 0..25),
        sigma in 0.05f64..1.0,
    ) {
        let input = ImageDetections::from_vec(dets);
        let out = soft_nms(&input, &NmsConfig::default(), sigma);
        prop_assert!(out.len() <= input.len());
        let max_in = input.iter().map(|d| d.score()).fold(0.0, f64::max);
        let max_out = out.iter().map(|d| d.score()).fold(0.0, f64::max);
        prop_assert!(max_out <= max_in + 1e-12);
    }

    #[test]
    fn matching_tp_count_bounded(
        dets in prop::collection::vec(arb_detection(1), 0..20),
        gts in prop::collection::vec(arb_gt(1), 0..10),
    ) {
        let m = match_greedy(&dets, &gts, 0.5);
        let tps = m.outcomes.iter().filter(|o| o.is_tp()).count();
        prop_assert!(tps <= m.num_gt);
        prop_assert!(tps <= dets.len());
        prop_assert_eq!(m.outcomes.len(), dets.len());
        prop_assert_eq!(tps + m.missed_gt.len(), m.num_gt);
    }

    #[test]
    fn map_in_unit_interval(
        dets in prop::collection::vec(arb_detection(3), 0..30),
        gts in prop::collection::vec(arb_gt(3), 1..15),
    ) {
        for protocol in [ApProtocol::Voc07ElevenPoint, ApProtocol::AllPoint] {
            let mut ev = MapEvaluator::new(3, protocol);
            ev.add_image(&ImageDetections::from_vec(dets.clone()), &gts);
            let r = ev.evaluate();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&r.map));
        }
    }

    #[test]
    fn eleven_point_never_exceeds_all_point_by_much(
        dets in prop::collection::vec(arb_detection(2), 0..30),
        gts in prop::collection::vec(arb_gt(2), 1..10),
    ) {
        // The two protocols agree within the 11-point discretisation error.
        let mut e11 = MapEvaluator::new(2, ApProtocol::Voc07ElevenPoint);
        let mut eall = MapEvaluator::new(2, ApProtocol::AllPoint);
        let d = ImageDetections::from_vec(dets);
        e11.add_image(&d, &gts);
        eall.add_image(&d, &gts);
        let a = e11.evaluate().map;
        let b = eall.evaluate().map;
        prop_assert!((a - b).abs() <= 0.15, "11pt={a} allpt={b}");
    }

    #[test]
    fn counting_bounds(
        dets in prop::collection::vec(arb_detection(2), 0..25),
        gts in prop::collection::vec(arb_gt(2), 0..12),
    ) {
        let c = count_detected(
            &ImageDetections::from_vec(dets.clone()),
            &gts,
            &CountingConfig::default(),
        );
        prop_assert!(c.detected <= c.num_gt);
        let above: usize = dets.iter().filter(|d| d.score() >= 0.5).count();
        prop_assert!(c.detected + c.false_positives <= above);
    }

    #[test]
    fn more_detections_never_reduce_detected_count(
        dets in prop::collection::vec(arb_detection(1), 0..15),
        extra in prop::collection::vec(arb_detection(1), 0..10),
        gts in prop::collection::vec(arb_gt(1), 0..8),
    ) {
        let cfg = CountingConfig::default();
        let base = count_detected(&ImageDetections::from_vec(dets.clone()), &gts, &cfg);
        let mut all = dets;
        all.extend(extra);
        let bigger = count_detected(&ImageDetections::from_vec(all), &gts, &cfg);
        prop_assert!(bigger.detected >= base.detected);
    }
}
