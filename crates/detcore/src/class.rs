//! Object-class identifiers and the class taxonomies used by the paper.
//!
//! The paper evaluates on three taxonomies: the 20 PASCAL VOC classes, an
//! 18-class subset of MS COCO ("the same 18 classes as in the VOC dataset"),
//! and the 2-class Sedna HELMET dataset (helmet / no-helmet person heads).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A compact class identifier: an index into a [`Taxonomy`].
///
/// `ClassId` is a deliberate newtype (not a bare `usize`) so that class
/// indices cannot be confused with image indices or object counts.
///
/// # Examples
///
/// ```
/// use detcore::{ClassId, Taxonomy};
///
/// let voc = Taxonomy::voc20();
/// let dog = voc.class_by_name("dog").unwrap();
/// assert_eq!(voc.name(dog), "dog");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClassId(pub u16);

impl ClassId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

impl From<u16> for ClassId {
    fn from(v: u16) -> Self {
        ClassId(v)
    }
}

/// A named set of object classes (VOC-20, COCO-18, HELMET…).
///
/// # Examples
///
/// ```
/// use detcore::Taxonomy;
///
/// assert_eq!(Taxonomy::voc20().len(), 20);
/// assert_eq!(Taxonomy::coco18().len(), 18);
/// assert_eq!(Taxonomy::helmet().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Taxonomy {
    name: String,
    classes: Vec<String>,
}

/// The 20 PASCAL VOC object classes in canonical order.
pub const VOC20_NAMES: [&str; 20] = [
    "aeroplane",
    "bicycle",
    "bird",
    "boat",
    "bottle",
    "bus",
    "car",
    "cat",
    "chair",
    "cow",
    "diningtable",
    "dog",
    "horse",
    "motorbike",
    "person",
    "pottedplant",
    "sheep",
    "sofa",
    "train",
    "tvmonitor",
];

/// The 18-class VOC-overlapping subset of COCO used by the paper.
///
/// The paper selects "a total of 98,267 images containing 18 classes of
/// objects, which are the same 18 classes as in the VOC dataset". COCO has no
/// `diningtable`/`pottedplant` under those exact names, which is the usual
/// reading of the 18-class overlap.
pub const COCO18_NAMES: [&str; 18] = [
    "aeroplane",
    "bicycle",
    "bird",
    "boat",
    "bottle",
    "bus",
    "car",
    "cat",
    "chair",
    "cow",
    "dog",
    "horse",
    "motorbike",
    "person",
    "sheep",
    "sofa",
    "train",
    "tvmonitor",
];

/// The Sedna HELMET dataset classes (construction-site safety monitoring).
pub const HELMET_NAMES: [&str; 2] = ["helmet", "head"];

impl Taxonomy {
    /// Creates a taxonomy from a name and class list.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or contains duplicates.
    pub fn new<S: Into<String>>(name: S, classes: Vec<String>) -> Self {
        assert!(!classes.is_empty(), "taxonomy must have at least one class");
        let mut seen = std::collections::HashSet::new();
        for c in &classes {
            assert!(seen.insert(c.clone()), "duplicate class name: {c}");
        }
        Taxonomy {
            name: name.into(),
            classes,
        }
    }

    /// The 20-class PASCAL VOC taxonomy.
    pub fn voc20() -> Self {
        Taxonomy::new("voc20", VOC20_NAMES.iter().map(|s| s.to_string()).collect())
    }

    /// The paper's 18-class COCO subset.
    pub fn coco18() -> Self {
        Taxonomy::new(
            "coco18",
            COCO18_NAMES.iter().map(|s| s.to_string()).collect(),
        )
    }

    /// The Sedna HELMET taxonomy.
    pub fn helmet() -> Self {
        Taxonomy::new(
            "helmet",
            HELMET_NAMES.iter().map(|s| s.to_string()).collect(),
        )
    }

    /// Taxonomy name (e.g. `"voc20"`).
    pub fn name_str(&self) -> &str {
        &self.name
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the taxonomy has zero classes (never true for valid values).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The display name of a class.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this taxonomy.
    pub fn name(&self, id: ClassId) -> &str {
        &self.classes[id.index()]
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c == name)
            .map(|i| ClassId(i as u16))
    }

    /// Iterates over all class ids in order.
    pub fn ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len()).map(|i| ClassId(i as u16))
    }

    /// Returns `true` if `id` indexes a valid class.
    pub fn contains(&self, id: ClassId) -> bool {
        id.index() < self.classes.len()
    }
}

impl fmt::Display for Taxonomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} classes)", self.name, self.classes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voc_has_20_classes() {
        let t = Taxonomy::voc20();
        assert_eq!(t.len(), 20);
        assert_eq!(t.name(ClassId(14)), "person");
        assert_eq!(t.class_by_name("dog"), Some(ClassId(11)));
        assert_eq!(t.class_by_name("zebra"), None);
    }

    #[test]
    fn coco18_is_voc_subset() {
        let voc = Taxonomy::voc20();
        let coco = Taxonomy::coco18();
        assert_eq!(coco.len(), 18);
        for id in coco.ids() {
            assert!(voc.class_by_name(coco.name(id)).is_some());
        }
    }

    #[test]
    fn helmet_classes() {
        let t = Taxonomy::helmet();
        assert_eq!(t.len(), 2);
        assert!(t.class_by_name("helmet").is_some());
    }

    #[test]
    fn ids_iterate_in_order() {
        let t = Taxonomy::helmet();
        let ids: Vec<_> = t.ids().collect();
        assert_eq!(ids, vec![ClassId(0), ClassId(1)]);
        assert!(t.contains(ClassId(1)));
        assert!(!t.contains(ClassId(2)));
    }

    #[test]
    #[should_panic(expected = "duplicate class name")]
    fn duplicate_names_panic() {
        let _ = Taxonomy::new("bad", vec!["a".into(), "a".into()]);
    }
}
