//! Detections, ground-truth objects, and per-image result containers.

use crate::{BBox, ClassId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single predicted bounding box with class and confidence score.
///
/// This mirrors the paper's Fig. 6 representation of one prediction row:
/// `[confidence, x_min, y_min, x_max, y_max]` attached to a class.
///
/// # Examples
///
/// ```
/// use detcore::{BBox, ClassId, Detection};
///
/// let d = Detection::new(ClassId(11), 0.2507, BBox::new(0.09, 0.42, 0.66, 0.92).unwrap());
/// assert!(d.score() < 0.5); // the paper's missed dog
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    class: ClassId,
    score: f64,
    bbox: BBox,
}

impl Detection {
    /// Creates a detection.
    ///
    /// # Panics
    ///
    /// Panics if `score` is not in `[0, 1]`.
    pub fn new(class: ClassId, score: f64, bbox: BBox) -> Self {
        assert!(
            (0.0..=1.0).contains(&score),
            "confidence score must be in [0, 1], got {score}"
        );
        Detection { class, score, bbox }
    }

    /// Predicted class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Confidence score in `[0, 1]`.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Predicted box.
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Returns a copy with the score replaced (used by Soft-NMS decay).
    ///
    /// # Panics
    ///
    /// Panics if `score` is not in `[0, 1]`.
    pub fn with_score(&self, score: f64) -> Self {
        Detection::new(self.class, score, self.bbox)
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {:.4} {}", self.class, self.score, self.bbox)
    }
}

/// A ground-truth object annotation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    class: ClassId,
    bbox: BBox,
    difficult: bool,
}

impl GroundTruth {
    /// Creates a normal (non-difficult) annotation.
    pub fn new(class: ClassId, bbox: BBox) -> Self {
        GroundTruth {
            class,
            bbox,
            difficult: false,
        }
    }

    /// Creates an annotation flagged as VOC-"difficult" (excluded from AP).
    pub fn new_difficult(class: ClassId, bbox: BBox) -> Self {
        GroundTruth {
            class,
            bbox,
            difficult: true,
        }
    }

    /// Annotated class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Annotated box.
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Whether the object carries the VOC `difficult` flag.
    ///
    /// Note: this is the *VOC annotation flag* (hard-to-annotate objects that
    /// the VOC protocol excludes from AP), unrelated to the paper's
    /// "difficult case" image label.
    pub fn is_difficult(&self) -> bool {
        self.difficult
    }
}

/// Sort key mapping a detection score to an integer whose ordering equals
/// the score's `partial_cmp` ordering.
///
/// Scores are guaranteed finite and in `[0, 1]` by [`Detection::new`]; for
/// non-negative finite floats `to_bits` is strictly monotone, except that
/// `-0.0` and `+0.0` compare equal but have different bit patterns — both
/// are therefore mapped to `0`. Sorting (stably) by this key yields exactly
/// the permutation of a stable `partial_cmp` sort, while comparing integers
/// instead of calling a float-comparator closure. Used by the hot NMS /
/// matching / mAP sorts; wrap in [`std::cmp::Reverse`] for descending
/// order.
#[inline]
pub(crate) fn score_sort_key(score: f64) -> u64 {
    if score == 0.0 {
        0
    } else {
        score.to_bits()
    }
}

/// All predictions a detector produced for one image.
///
/// # Examples
///
/// ```
/// use detcore::{BBox, ClassId, Detection, ImageDetections};
///
/// let mut dets = ImageDetections::new();
/// dets.push(Detection::new(ClassId(14), 0.98, BBox::new(0.0, 0.0, 1.0, 0.97).unwrap()));
/// dets.push(Detection::new(ClassId(11), 0.25, BBox::new(0.1, 0.4, 0.66, 0.92).unwrap()));
/// assert_eq!(dets.count_above(0.5), 1);
/// assert_eq!(dets.count_above(0.2), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImageDetections {
    dets: Vec<Detection>,
}

impl ImageDetections {
    /// Creates an empty result set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a result set from raw detections.
    pub fn from_vec(dets: Vec<Detection>) -> Self {
        ImageDetections { dets }
    }

    /// Creates an empty result set with room for `capacity` detections
    /// (detectors that know their rough output size avoid regrowth).
    pub fn with_capacity(capacity: usize) -> Self {
        ImageDetections {
            dets: Vec::with_capacity(capacity),
        }
    }

    /// Adds one detection.
    pub fn push(&mut self, det: Detection) {
        self.dets.push(det);
    }

    /// Reserves room for at least `additional` more detections (detectors
    /// that know their rough output size avoid regrowth mid-frame).
    pub fn reserve(&mut self, additional: usize) {
        self.dets.reserve(additional);
    }

    /// Removes every detection, keeping the allocated capacity.
    ///
    /// The `*_into` kernels ([`crate::nms_into`], [`crate::soft_nms_into`])
    /// refill a cleared container so per-frame output allocation is paid
    /// only once per reused buffer.
    pub fn clear(&mut self) {
        self.dets.clear();
    }

    /// All detections, unordered.
    pub fn as_slice(&self) -> &[Detection] {
        &self.dets
    }

    /// Mutable access to the detections (used by kernels that sort in place).
    pub fn as_mut_slice(&mut self) -> &mut [Detection] {
        &mut self.dets
    }

    /// Number of raw detections (no threshold applied).
    pub fn len(&self) -> usize {
        self.dets.len()
    }

    /// Whether there are no detections at all.
    pub fn is_empty(&self) -> bool {
        self.dets.is_empty()
    }

    /// Iterates over detections.
    pub fn iter(&self) -> std::slice::Iter<'_, Detection> {
        self.dets.iter()
    }

    /// Counts detections with `score >= threshold`.
    ///
    /// This is the quantity the paper's discriminator computes twice: once at
    /// the prediction threshold (0.5) and once at the calibrated noise-filter
    /// threshold (0.15–0.35).
    pub fn count_above(&self, threshold: f64) -> usize {
        self.dets.iter().filter(|d| d.score >= threshold).count()
    }

    /// Returns the detections with `score >= threshold`, ordered by
    /// descending score.
    pub fn filtered(&self, threshold: f64) -> Vec<Detection> {
        let mut v: Vec<Detection> = self
            .dets
            .iter()
            .copied()
            .filter(|d| d.score >= threshold)
            .collect();
        v.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
        v
    }

    /// The smallest box area among detections with `score >= threshold`,
    /// or `None` if none qualify.
    ///
    /// For normalised boxes this is the *estimated minimum object area
    /// ratio* used by the discriminator.
    pub fn min_area_above(&self, threshold: f64) -> Option<f64> {
        self.dets
            .iter()
            .filter(|d| d.score >= threshold)
            .map(|d| d.bbox.area())
            .min_by(|a, b| a.partial_cmp(b).expect("areas are finite"))
    }

    /// The maximum confidence score per class, for classes that appear.
    ///
    /// Used by the top-1-confidence upload baseline (Sec. VI-E-3): "take the
    /// top-1 of the recognition boxes of each type of object in a single
    /// image, then … take the average value".
    pub fn top1_per_class(&self) -> std::collections::BTreeMap<ClassId, f64> {
        let mut m = std::collections::BTreeMap::new();
        for d in &self.dets {
            let e = m.entry(d.class).or_insert(0.0f64);
            if d.score > *e {
                *e = d.score;
            }
        }
        m
    }

    /// Mean of the per-class top-1 scores over `num_classes` classes.
    ///
    /// Classes with no boxes contribute 0, matching the paper's "add a total
    /// of 20 confidence scores for 20 categories and then take the average".
    pub fn mean_top1_score(&self, num_classes: usize) -> f64 {
        assert!(num_classes > 0, "num_classes must be positive");
        let m = self.top1_per_class();
        m.values().sum::<f64>() / num_classes as f64
    }
}

impl FromIterator<Detection> for ImageDetections {
    fn from_iter<T: IntoIterator<Item = Detection>>(iter: T) -> Self {
        ImageDetections {
            dets: iter.into_iter().collect(),
        }
    }
}

impl Extend<Detection> for ImageDetections {
    fn extend<T: IntoIterator<Item = Detection>>(&mut self, iter: T) {
        self.dets.extend(iter);
    }
}

impl IntoIterator for ImageDetections {
    type Item = Detection;
    type IntoIter = std::vec::IntoIter<Detection>;
    fn into_iter(self) -> Self::IntoIter {
        self.dets.into_iter()
    }
}

impl<'a> IntoIterator for &'a ImageDetections {
    type Item = &'a Detection;
    type IntoIter = std::slice::Iter<'a, Detection>;
    fn into_iter(self) -> Self::IntoIter {
        self.dets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(class: u16, score: f64, x0: f64, y0: f64, x1: f64, y1: f64) -> Detection {
        Detection::new(ClassId(class), score, BBox::new(x0, y0, x1, y1).unwrap())
    }

    #[test]
    #[should_panic(expected = "confidence score")]
    fn rejects_out_of_range_score() {
        let _ = det(0, 1.5, 0.0, 0.0, 1.0, 1.0);
    }

    #[test]
    fn count_above_thresholds() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.9, 0.0, 0.0, 0.5, 0.5),
            det(1, 0.45, 0.5, 0.5, 1.0, 1.0),
            det(2, 0.10, 0.2, 0.2, 0.3, 0.3),
        ]);
        assert_eq!(dets.count_above(0.5), 1);
        assert_eq!(dets.count_above(0.4), 2);
        assert_eq!(dets.count_above(0.05), 3);
        assert_eq!(dets.count_above(0.95), 0);
    }

    #[test]
    fn filtered_sorted_desc() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.3, 0.0, 0.0, 0.5, 0.5),
            det(1, 0.8, 0.5, 0.5, 1.0, 1.0),
            det(2, 0.6, 0.2, 0.2, 0.3, 0.3),
        ]);
        let f = dets.filtered(0.4);
        assert_eq!(f.len(), 2);
        assert!(f[0].score() >= f[1].score());
    }

    #[test]
    fn min_area_above_picks_smallest() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.9, 0.0, 0.0, 0.5, 0.5),    // area 0.25
            det(1, 0.7, 0.0, 0.0, 0.1, 0.1),    // area 0.01
            det(2, 0.05, 0.0, 0.0, 0.01, 0.01), // filtered out
        ]);
        let a = dets.min_area_above(0.5).unwrap();
        assert!((a - 0.01).abs() < 1e-12);
        assert!(dets.min_area_above(0.95).is_none());
    }

    #[test]
    fn mean_top1_counts_absent_classes_as_zero() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.8, 0.0, 0.0, 0.5, 0.5),
            det(0, 0.6, 0.0, 0.0, 0.4, 0.4),
            det(1, 0.4, 0.5, 0.5, 1.0, 1.0),
        ]);
        // top1: class0=0.8, class1=0.4; mean over 4 classes = 1.2/4
        assert!((dets.mean_top1_score(4) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn collect_and_extend() {
        let mut dets: ImageDetections = vec![det(0, 0.5, 0.0, 0.0, 0.5, 0.5)].into_iter().collect();
        dets.extend(vec![det(1, 0.6, 0.0, 0.0, 0.2, 0.2)]);
        assert_eq!(dets.len(), 2);
        let back: Vec<Detection> = dets.clone().into_iter().collect();
        assert_eq!(back.len(), 2);
        assert_eq!((&dets).into_iter().count(), 2);
    }

    #[test]
    fn ground_truth_flags() {
        let g = GroundTruth::new_difficult(ClassId(3), BBox::unit());
        assert!(g.is_difficult());
        assert_eq!(g.class(), ClassId(3));
        let n = GroundTruth::new(ClassId(3), BBox::unit());
        assert!(!n.is_difficult());
    }
}
