//! Property tests proving the data-oriented kernels are result-identical to
//! the pre-refactor reference implementations (kept under `#[cfg(test)]` in
//! their home modules as oracles).
//!
//! Every comparison is exact (`assert_eq!`, and `to_bits` where a bare f64
//! is produced): the SoA rewrites are required to be *bit*-identical, not
//! merely close, because downstream reports are compared bit-for-bit in
//! `tests/api_equivalence.rs`.

use crate::{
    count_detected, count_detected_with, map, match_greedy, match_greedy_into, matching, nms,
    nms_into, soft_nms, soft_nms_into, ApProtocol, BBox, ClassId, CountScratch, CountingConfig,
    Detection, GroundTruth, ImageDetections, ImageMatch, MapEvaluator, MatchScratch, NmsConfig,
    NmsScratch,
};
use proptest::prelude::*;

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0)
        .prop_map(|(x0, y0, x1, y1)| BBox::from_corners(x0, y0, x1, y1))
}

/// Scores snapped to a coarse grid so ties (the stable-sort edge case) are
/// common instead of measure-zero.
fn arb_score() -> impl Strategy<Value = f64> {
    (0u32..=20).prop_map(|s| s as f64 / 20.0)
}

fn arb_detection(max_class: u16) -> impl Strategy<Value = Detection> {
    (0..max_class, arb_score(), arb_bbox()).prop_map(|(c, s, b)| Detection::new(ClassId(c), s, b))
}

fn arb_gt(max_class: u16) -> impl Strategy<Value = GroundTruth> {
    (0..max_class, arb_bbox(), any::<bool>()).prop_map(|(c, b, d)| {
        if d {
            GroundTruth::new_difficult(ClassId(c), b)
        } else {
            GroundTruth::new(ClassId(c), b)
        }
    })
}

fn arb_image(max_class: u16) -> impl Strategy<Value = ImageDetections> {
    prop::collection::vec(arb_detection(max_class), 0..40).prop_map(ImageDetections::from_vec)
}

fn arb_nms_config() -> impl Strategy<Value = NmsConfig> {
    (
        0.0f64..=1.0,
        0.0f64..0.5,
        prop::sample::select(vec![2usize, 5, 200]),
    )
        .prop_map(|(iou, floor, max_per_class)| NmsConfig {
            iou_threshold: iou,
            score_floor: floor,
            max_per_class,
        })
}

proptest! {
    #[test]
    fn nms_matches_reference(dets in arb_image(4), cfg in arb_nms_config()) {
        let expected = crate::nms::reference::nms(&dets, &cfg);
        prop_assert_eq!(nms(&dets, &cfg), expected.clone());
        let mut scratch = NmsScratch::new();
        let mut out = ImageDetections::new();
        // Twice through the same scratch: reuse must not change results.
        for _ in 0..2 {
            nms_into(&dets, &cfg, &mut scratch, &mut out);
            prop_assert_eq!(out.clone(), expected.clone());
        }
    }

    #[test]
    fn soft_nms_matches_reference(
        dets in arb_image(4),
        cfg in arb_nms_config(),
        sigma in 0.05f64..2.0,
    ) {
        let expected = crate::nms::reference::soft_nms(&dets, &cfg, sigma);
        prop_assert_eq!(soft_nms(&dets, &cfg, sigma), expected.clone());
        let mut scratch = NmsScratch::new();
        let mut out = ImageDetections::new();
        for _ in 0..2 {
            soft_nms_into(&dets, &cfg, sigma, &mut scratch, &mut out);
            prop_assert_eq!(out.clone(), expected.clone());
        }
    }

    #[test]
    fn match_greedy_matches_reference(
        dets in prop::collection::vec((arb_score(), arb_bbox()), 0..25),
        gts in prop::collection::vec((arb_bbox(), any::<bool>()), 0..12),
        iou in 0.0f64..=1.0,
    ) {
        // Single-class inputs, as the matching contract requires.
        let dets: Vec<Detection> = dets
            .into_iter()
            .map(|(s, b)| Detection::new(ClassId(0), s, b))
            .collect();
        let gts: Vec<GroundTruth> = gts
            .into_iter()
            .map(|(b, d)| {
                if d {
                    GroundTruth::new_difficult(ClassId(0), b)
                } else {
                    GroundTruth::new(ClassId(0), b)
                }
            })
            .collect();
        let expected = matching::reference::match_greedy(&dets, &gts, iou);
        prop_assert_eq!(match_greedy(&dets, &gts, iou), expected.clone());
        let mut scratch = MatchScratch::new();
        let mut out = ImageMatch::default();
        for _ in 0..2 {
            match_greedy_into(&dets, &gts, iou, &mut scratch, &mut out);
            prop_assert_eq!(out.clone(), expected.clone());
        }
    }

    #[test]
    fn map_evaluator_matches_reference(
        images in prop::collection::vec(
            (arb_image(3), prop::collection::vec(arb_gt(3), 0..8)),
            1..6,
        ),
        protocol in prop::sample::select(vec![ApProtocol::Voc07ElevenPoint, ApProtocol::AllPoint]),
    ) {
        let mut ours = MapEvaluator::new(3, protocol);
        let mut oracle = map::reference::MapEvaluator::with_iou(3, protocol, 0.5);
        for (dets, gts) in &images {
            ours.add_image(dets, gts);
            oracle.add_image(dets, gts);
        }
        for c in 0..3u16 {
            prop_assert_eq!(ours.pr_curve(ClassId(c)), oracle.pr_curve(ClassId(c)));
            prop_assert_eq!(
                ours.class_ap(ClassId(c)).to_bits(),
                oracle.class_ap(ClassId(c)).to_bits()
            );
        }
        prop_assert_eq!(ours.evaluate(), oracle.evaluate());
    }

    #[test]
    fn count_detected_matches_reference(
        dets in arb_image(4),
        gts in prop::collection::vec(arb_gt(4), 0..10),
    ) {
        let cfg = CountingConfig::default();
        let expected = reference_count_detected(&dets, &gts, &cfg);
        prop_assert_eq!(count_detected(&dets, &gts, &cfg), expected);
        let mut scratch = CountScratch::new();
        for _ in 0..2 {
            prop_assert_eq!(count_detected_with(&dets, &gts, &cfg, &mut scratch), expected);
        }
    }
}

/// The pre-refactor `count_detected` (BTreeSet + per-class Vec collects),
/// kept verbatim over the oracle matcher.
fn reference_count_detected(
    dets: &ImageDetections,
    gts: &[GroundTruth],
    config: &CountingConfig,
) -> crate::ImageCount {
    let num_gt = gts.iter().filter(|g| !g.is_difficult()).count();
    let mut classes: std::collections::BTreeSet<u16> = std::collections::BTreeSet::new();
    for d in dets.iter() {
        classes.insert(d.class().0);
    }
    for g in gts {
        classes.insert(g.class().0);
    }
    let mut detected = 0usize;
    let mut false_positives = 0usize;
    for c in classes {
        let class_dets: Vec<Detection> = dets
            .iter()
            .copied()
            .filter(|d| d.class().0 == c && d.score() >= config.score_threshold)
            .collect();
        let class_gts: Vec<GroundTruth> =
            gts.iter().copied().filter(|g| g.class().0 == c).collect();
        if class_dets.is_empty() {
            continue;
        }
        let m = matching::reference::match_greedy(&class_dets, &class_gts, config.iou_threshold);
        for o in &m.outcomes {
            if o.is_tp() {
                detected += 1;
            } else if o.is_fp() {
                false_positives += 1;
            }
        }
    }
    crate::ImageCount {
        num_gt,
        detected,
        false_positives,
    }
}
