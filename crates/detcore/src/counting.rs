//! Object-counting metrics ("the number of detected objects", paper Sec. VI).
//!
//! The paper's second metric counts, over a whole test set, how many
//! ground-truth objects the system correctly detected: a detection counts if
//! its score clears 0.5 and it matches an unclaimed ground truth of the same
//! class at IoU ≥ 0.5 (Tables IV, VI, VIII, X, XI, XIII, XV, XVII).

use crate::matching::{match_greedy_into, ImageMatch, MatchScratch};
use crate::{Detection, GroundTruth, ImageDetections};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Thresholds for object counting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountingConfig {
    /// Minimum detection score ("recognition boxes with a score value greater
    /// than 0.5 are considered as correctly identified objects").
    pub score_threshold: f64,
    /// Minimum IoU against a ground truth to count as detected.
    pub iou_threshold: f64,
}

impl Default for CountingConfig {
    fn default() -> Self {
        CountingConfig {
            score_threshold: 0.5,
            iou_threshold: 0.5,
        }
    }
}

/// Per-image counting outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageCount {
    /// Ground-truth objects in the image (non-difficult).
    pub num_gt: usize,
    /// Ground-truth objects correctly detected.
    pub detected: usize,
    /// Detections above threshold that matched nothing (false alarms).
    pub false_positives: usize,
}

impl ImageCount {
    /// Objects the detector failed to find.
    pub fn missed(&self) -> usize {
        self.num_gt - self.detected
    }

    /// `true` when every ground-truth object was detected — the paper's
    /// criterion for an image being an *easy case* for this detector.
    pub fn all_detected(&self) -> bool {
        self.detected == self.num_gt
    }
}

/// Counts correctly detected objects in one image.
///
/// Detections are filtered at `config.score_threshold`, grouped per class and
/// matched greedily at `config.iou_threshold`.
///
/// # Examples
///
/// ```
/// use detcore::{count_detected, BBox, ClassId, CountingConfig, Detection, GroundTruth,
///               ImageDetections};
///
/// let gts = vec![GroundTruth::new(ClassId(0), BBox::new(0.0, 0.0, 0.5, 0.5).unwrap())];
/// let dets = ImageDetections::from_vec(vec![
///     Detection::new(ClassId(0), 0.9, BBox::new(0.0, 0.0, 0.5, 0.5).unwrap()),
///     Detection::new(ClassId(0), 0.3, BBox::new(0.6, 0.6, 0.9, 0.9).unwrap()), // below 0.5
/// ]);
/// let c = count_detected(&dets, &gts, &CountingConfig::default());
/// assert_eq!(c.detected, 1);
/// assert_eq!(c.false_positives, 0);
/// assert!(c.all_detected());
/// ```
pub fn count_detected(
    dets: &ImageDetections,
    gts: &[GroundTruth],
    config: &CountingConfig,
) -> ImageCount {
    thread_local! {
        static WRAPPER_SCRATCH: RefCell<CountScratch> = RefCell::new(CountScratch::new());
    }
    WRAPPER_SCRATCH.with(|s| count_detected_with(dets, gts, config, &mut s.borrow_mut()))
}

/// Reusable working storage for [`count_detected_with`].
#[derive(Debug, Default, Clone)]
pub struct CountScratch {
    /// Above-threshold detection indices, stably sorted by class.
    det_idx: Vec<u32>,
    /// Above-threshold detections gathered contiguously by class.
    dets_buf: Vec<Detection>,
    /// Ground-truth indices, stably sorted by class.
    gt_idx: Vec<u32>,
    /// Ground truths gathered contiguously by class.
    gts_buf: Vec<GroundTruth>,
    match_scratch: MatchScratch,
    match_out: ImageMatch,
}

impl CountScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`count_detected`] over caller-provided scratch buffers.
///
/// With a warmed-up `scratch` the call allocates nothing. Produces exactly
/// the same result as [`count_detected`].
pub fn count_detected_with(
    dets: &ImageDetections,
    gts: &[GroundTruth],
    config: &CountingConfig,
    scratch: &mut CountScratch,
) -> ImageCount {
    let num_gt = gts.iter().filter(|g| !g.is_difficult()).count();
    let all = dets.as_slice();

    // One stable sort by class gathers the above-threshold detections into
    // class-contiguous runs (ascending class, like the old BTreeSet walk;
    // classes without a qualifying detection contribute nothing either way).
    scratch.det_idx.clear();
    scratch.det_idx.extend(
        all.iter()
            .enumerate()
            .filter(|(_, d)| d.score() >= config.score_threshold)
            .map(|(i, _)| i as u32),
    );
    scratch.det_idx.sort_by_key(|&i| all[i as usize].class());
    scratch.dets_buf.clear();
    scratch
        .dets_buf
        .extend(scratch.det_idx.iter().map(|&i| all[i as usize]));

    scratch.gt_idx.clear();
    scratch.gt_idx.extend(0..gts.len() as u32);
    scratch.gt_idx.sort_by_key(|&i| gts[i as usize].class());
    scratch.gts_buf.clear();
    scratch
        .gts_buf
        .extend(scratch.gt_idx.iter().map(|&i| gts[i as usize]));

    let mut detected = 0usize;
    let mut false_positives = 0usize;
    let (mut di, mut gi) = (0usize, 0usize);
    while di < scratch.dets_buf.len() {
        let class = scratch.dets_buf[di].class();
        let mut de = di + 1;
        while de < scratch.dets_buf.len() && scratch.dets_buf[de].class() == class {
            de += 1;
        }
        while gi < scratch.gts_buf.len() && scratch.gts_buf[gi].class() < class {
            gi += 1;
        }
        let gs = gi;
        while gi < scratch.gts_buf.len() && scratch.gts_buf[gi].class() == class {
            gi += 1;
        }
        match_greedy_into(
            &scratch.dets_buf[di..de],
            &scratch.gts_buf[gs..gi],
            config.iou_threshold,
            &mut scratch.match_scratch,
            &mut scratch.match_out,
        );
        for o in &scratch.match_out.outcomes {
            if o.is_tp() {
                detected += 1;
            } else if o.is_fp() {
                false_positives += 1;
            }
        }
        di = de;
    }
    ImageCount {
        num_gt,
        detected,
        false_positives,
    }
}

/// Accumulates [`ImageCount`]s over a dataset.
///
/// # Examples
///
/// ```
/// use detcore::DatasetCounter;
///
/// let mut counter = DatasetCounter::new();
/// // counter.add(count_detected(...)) per image …
/// assert_eq!(counter.total_detected(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetCounter {
    num_images: usize,
    total_gt: usize,
    total_detected: usize,
    total_false_positives: usize,
    fully_detected_images: usize,
}

impl DatasetCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one image's count.
    pub fn add(&mut self, count: ImageCount) {
        self.num_images += 1;
        self.total_gt += count.num_gt;
        self.total_detected += count.detected;
        self.total_false_positives += count.false_positives;
        if count.all_detected() {
            self.fully_detected_images += 1;
        }
    }

    /// Number of images accumulated.
    pub fn num_images(&self) -> usize {
        self.num_images
    }

    /// Total ground-truth objects.
    pub fn total_gt(&self) -> usize {
        self.total_gt
    }

    /// Total correctly detected objects (the paper's table entries).
    pub fn total_detected(&self) -> usize {
        self.total_detected
    }

    /// Total false alarms above the score threshold.
    pub fn total_false_positives(&self) -> usize {
        self.total_false_positives
    }

    /// Images where every object was found (easy cases for this detector).
    pub fn fully_detected_images(&self) -> usize {
        self.fully_detected_images
    }

    /// Detected / ground-truth ratio in `[0, 1]` (0 if no ground truths).
    pub fn detection_rate(&self) -> f64 {
        if self.total_gt == 0 {
            0.0
        } else {
            self.total_detected as f64 / self.total_gt as f64
        }
    }
}

impl Extend<ImageCount> for DatasetCounter {
    fn extend<T: IntoIterator<Item = ImageCount>>(&mut self, iter: T) {
        for c in iter {
            self.add(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BBox, ClassId};

    fn det(c: u16, score: f64, x0: f64, y0: f64, x1: f64, y1: f64) -> Detection {
        Detection::new(ClassId(c), score, BBox::new(x0, y0, x1, y1).unwrap())
    }

    fn gt(c: u16, x0: f64, y0: f64, x1: f64, y1: f64) -> GroundTruth {
        GroundTruth::new(ClassId(c), BBox::new(x0, y0, x1, y1).unwrap())
    }

    #[test]
    fn sub_threshold_detection_does_not_count() {
        let c = count_detected(
            &ImageDetections::from_vec(vec![det(0, 0.49, 0.0, 0.0, 0.5, 0.5)]),
            &[gt(0, 0.0, 0.0, 0.5, 0.5)],
            &CountingConfig::default(),
        );
        assert_eq!(c.detected, 0);
        assert_eq!(c.missed(), 1);
        assert!(!c.all_detected());
    }

    #[test]
    fn wrong_class_is_false_positive() {
        let c = count_detected(
            &ImageDetections::from_vec(vec![det(1, 0.9, 0.0, 0.0, 0.5, 0.5)]),
            &[gt(0, 0.0, 0.0, 0.5, 0.5)],
            &CountingConfig::default(),
        );
        assert_eq!(c.detected, 0);
        assert_eq!(c.false_positives, 1);
    }

    #[test]
    fn multi_class_counting() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.9, 0.0, 0.0, 0.4, 0.4),
            det(1, 0.8, 0.5, 0.5, 0.9, 0.9),
            det(1, 0.7, 0.5, 0.5, 0.9, 0.9), // duplicate -> FP
        ]);
        let gts = vec![gt(0, 0.0, 0.0, 0.4, 0.4), gt(1, 0.5, 0.5, 0.9, 0.9)];
        let c = count_detected(&dets, &gts, &CountingConfig::default());
        assert_eq!(c.detected, 2);
        assert_eq!(c.false_positives, 1);
        assert!(c.all_detected());
    }

    #[test]
    fn empty_image_all_detected_trivially() {
        let c = count_detected(&ImageDetections::new(), &[], &CountingConfig::default());
        assert!(c.all_detected());
        assert_eq!(c.num_gt, 0);
    }

    #[test]
    fn dataset_counter_accumulates() {
        let mut counter = DatasetCounter::new();
        counter.add(ImageCount {
            num_gt: 2,
            detected: 2,
            false_positives: 0,
        });
        counter.add(ImageCount {
            num_gt: 3,
            detected: 1,
            false_positives: 2,
        });
        assert_eq!(counter.num_images(), 2);
        assert_eq!(counter.total_gt(), 5);
        assert_eq!(counter.total_detected(), 3);
        assert_eq!(counter.total_false_positives(), 2);
        assert_eq!(counter.fully_detected_images(), 1);
        assert!((counter.detection_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn counter_extend() {
        let mut counter = DatasetCounter::new();
        counter.extend(vec![
            ImageCount {
                num_gt: 1,
                detected: 1,
                false_positives: 0,
            },
            ImageCount {
                num_gt: 1,
                detected: 0,
                false_positives: 0,
            },
        ]);
        assert_eq!(counter.total_detected(), 1);
    }
}
