//! # detcore — object-detection primitives
//!
//! Foundation crate of the `smallbig` workspace (a reproduction of
//! *Edge-Cloud Collaborated Object Detection via Difficult-Case
//! Discriminator*, ICDCS 2023). It provides the detection-domain vocabulary
//! every other crate builds on:
//!
//! * [`BBox`] — normalised axis-aligned boxes with IoU and friends,
//! * [`ClassId`] / [`Taxonomy`] — class identifiers for VOC-20, COCO-18 and
//!   the HELMET dataset,
//! * [`Detection`] / [`GroundTruth`] / [`ImageDetections`] — prediction and
//!   annotation containers,
//! * [`nms`] / [`soft_nms`] — non-maximum suppression (with
//!   [`nms_into`]/[`soft_nms_into`] scratch-buffer forms for per-frame use),
//! * [`match_greedy`] — VOC-protocol detection↔object matching
//!   ([`match_greedy_into`] for the allocation-free form),
//! * [`MapEvaluator`] — PASCAL-VOC mAP (11-point and all-point),
//! * [`count_detected`] / [`DatasetCounter`] — the paper's
//!   "number of detected objects" metric.
//!
//! # Example
//!
//! ```
//! use detcore::{ApProtocol, BBox, ClassId, Detection, GroundTruth, ImageDetections,
//!               MapEvaluator};
//!
//! let gts = vec![GroundTruth::new(ClassId(0), BBox::new(0.1, 0.1, 0.6, 0.6).unwrap())];
//! let dets = ImageDetections::from_vec(vec![Detection::new(
//!     ClassId(0),
//!     0.92,
//!     BBox::new(0.12, 0.1, 0.61, 0.6).unwrap(),
//! )]);
//!
//! let mut evaluator = MapEvaluator::new(20, ApProtocol::Voc07ElevenPoint);
//! evaluator.add_image(&dets, &gts);
//! assert!(evaluator.evaluate().map > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod counting;
mod det;
#[cfg(test)]
mod equivalence_tests;
mod geom;
mod map;
mod matching;
mod nms;

pub use class::{ClassId, Taxonomy, COCO18_NAMES, HELMET_NAMES, VOC20_NAMES};
pub use counting::{
    count_detected, count_detected_with, CountScratch, CountingConfig, DatasetCounter, ImageCount,
};
pub use det::{Detection, GroundTruth, ImageDetections};
pub use geom::{BBox, BBoxError};
pub use map::{ApProtocol, ClassAp, ImageContribution, MapEvaluator, MapReport, PrPoint};
pub use matching::{match_greedy, match_greedy_into, ImageMatch, MatchOutcome, MatchScratch};
pub use nms::{nms, nms_into, soft_nms, soft_nms_into, NmsConfig, NmsScratch};
