//! Non-maximum suppression over per-image detections.
//!
//! SSD-style heads emit thousands of overlapping candidate boxes; NMS keeps a
//! locally-best subset. Both classic ("hard") NMS and Gaussian Soft-NMS are
//! provided; both operate per class, as in the SSD/YOLO post-processing the
//! paper's models use.
//!
//! # Data-oriented kernels
//!
//! The edge pipeline runs NMS on every frame, so the kernels are written in
//! index-sorted form over reusable scratch buffers: one stable sort by
//! `(class, -score)` replaces the per-call `BTreeMap<ClassId, Vec<_>>`
//! grouping, box areas are computed once per candidate, and all working
//! storage lives in an [`NmsScratch`] that callers (or the thread-local used
//! by the [`nms`]/[`soft_nms`] wrappers) reuse across frames. After warmup a
//! [`nms_into`] call performs no allocation. Results are bit-identical to
//! the original grouped implementation, which the tests keep as an oracle.

use crate::det::score_sort_key;
use crate::ImageDetections;
use std::cell::RefCell;
use std::cmp::Reverse;

/// Parameters for [`nms`] and [`soft_nms`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NmsConfig {
    /// Boxes with IoU above this value against a kept box are suppressed
    /// (hard NMS) or decayed (soft NMS). Typical: `0.45` for SSD.
    pub iou_threshold: f64,
    /// Detections below this score are dropped before suppression.
    pub score_floor: f64,
    /// Keep at most this many detections per class (`usize::MAX` = no limit).
    pub max_per_class: usize,
}

impl Default for NmsConfig {
    fn default() -> Self {
        NmsConfig {
            iou_threshold: 0.45,
            score_floor: 0.01,
            max_per_class: 200,
        }
    }
}

impl NmsConfig {
    /// Creates a config with the given IoU threshold and defaults otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `iou_threshold` is not in `[0, 1]`.
    pub fn with_iou(iou_threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&iou_threshold),
            "iou threshold must be in [0, 1]"
        );
        NmsConfig {
            iou_threshold,
            ..Default::default()
        }
    }
}

/// Reusable working storage for [`nms_into`] and [`soft_nms_into`].
///
/// Holds the index-sort order, precomputed candidate box areas and the
/// per-class working set. Reusing one scratch across frames means the
/// kernels stop allocating once the buffers have grown to the workload's
/// high-water mark.
#[derive(Debug, Default, Clone)]
pub struct NmsScratch {
    /// Candidate detection indices, sorted by `(class asc, score desc)`.
    order: Vec<u32>,
    /// Precomputed `bbox().area()` per detection index.
    areas: Vec<f64>,
    /// Kept candidate indices for the class currently being processed.
    kept: Vec<u32>,
    /// Soft-NMS working pool: `(current score, detection index)`.
    pool: Vec<(f64, u32)>,
}

impl NmsScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static WRAPPER_SCRATCH: RefCell<NmsScratch> = RefCell::new(NmsScratch::new());
}

/// Fills `scratch.order` with candidate indices sorted by
/// `(class asc, score desc)` — stable, so ties keep input order — and
/// `scratch.areas` with each candidate's box area.
fn prepare_candidates(dets: &ImageDetections, floor: f64, scratch: &mut NmsScratch) {
    let all = dets.as_slice();
    scratch.order.clear();
    scratch.areas.clear();
    scratch.areas.resize(all.len(), 0.0);
    for (i, d) in all.iter().enumerate() {
        if d.score() >= floor {
            scratch.order.push(i as u32);
            scratch.areas[i] = d.bbox().area();
        }
    }
    // Stable integer-key sort: same permutation as comparing class
    // ascending then score descending with `partial_cmp`.
    scratch.order.sort_by_key(|&i| {
        let d = &all[i as usize];
        (d.class(), Reverse(score_sort_key(d.score())))
    });
}

/// Classic greedy per-class non-maximum suppression.
///
/// Within each class, detections are visited in descending score order; a
/// detection is kept unless it overlaps an already-kept detection of the same
/// class with IoU greater than `config.iou_threshold`.
///
/// The output is sorted by descending score across classes.
///
/// # Examples
///
/// ```
/// use detcore::{nms, BBox, ClassId, Detection, ImageDetections, NmsConfig};
///
/// let dets = ImageDetections::from_vec(vec![
///     Detection::new(ClassId(0), 0.9, BBox::new(0.0, 0.0, 0.5, 0.5).unwrap()),
///     Detection::new(ClassId(0), 0.8, BBox::new(0.01, 0.01, 0.5, 0.5).unwrap()),
/// ]);
/// let kept = nms(&dets, &NmsConfig::default());
/// assert_eq!(kept.len(), 1); // near-duplicate suppressed
/// ```
pub fn nms(dets: &ImageDetections, config: &NmsConfig) -> ImageDetections {
    let mut out = ImageDetections::new();
    WRAPPER_SCRATCH.with(|s| nms_into(dets, config, &mut s.borrow_mut(), &mut out));
    out
}

/// [`nms`] over caller-provided scratch and output buffers.
///
/// `out` is cleared and refilled; with a warmed-up `scratch` and `out` the
/// call allocates nothing. Produces exactly the same result as [`nms`].
///
/// # Examples
///
/// ```
/// use detcore::{nms, nms_into, BBox, ClassId, Detection, ImageDetections,
///               NmsConfig, NmsScratch};
///
/// let dets = ImageDetections::from_vec(vec![
///     Detection::new(ClassId(0), 0.9, BBox::new(0.0, 0.0, 0.5, 0.5).unwrap()),
///     Detection::new(ClassId(0), 0.8, BBox::new(0.01, 0.01, 0.5, 0.5).unwrap()),
/// ]);
/// let cfg = NmsConfig::default();
/// let mut scratch = NmsScratch::new();
/// let mut out = ImageDetections::new();
/// nms_into(&dets, &cfg, &mut scratch, &mut out);
/// assert_eq!(out, nms(&dets, &cfg));
/// ```
pub fn nms_into(
    dets: &ImageDetections,
    config: &NmsConfig,
    scratch: &mut NmsScratch,
    out: &mut ImageDetections,
) {
    prepare_candidates(dets, config.score_floor, scratch);
    let all = dets.as_slice();
    out.clear();

    let mut pos = 0usize;
    while pos < scratch.order.len() {
        let class = all[scratch.order[pos] as usize].class();
        let mut run_end = pos + 1;
        while run_end < scratch.order.len() && all[scratch.order[run_end] as usize].class() == class
        {
            run_end += 1;
        }

        scratch.kept.clear();
        for &ci in &scratch.order[pos..run_end] {
            if scratch.kept.len() >= config.max_per_class {
                break;
            }
            let d = &all[ci as usize];
            let d_area = scratch.areas[ci as usize];
            let suppressed = scratch.kept.iter().any(|&ki| {
                let k = &all[ki as usize];
                k.bbox()
                    .iou_with_areas(scratch.areas[ki as usize], &d.bbox(), d_area)
                    > config.iou_threshold
            });
            if !suppressed {
                scratch.kept.push(ci);
            }
        }
        for &ki in &scratch.kept {
            out.push(all[ki as usize]);
        }
        pos = run_end;
    }

    out.as_mut_slice()
        .sort_by_key(|d| Reverse(score_sort_key(d.score())));
}

/// Gaussian Soft-NMS (Bodla et al.): instead of removing overlapping boxes,
/// decays their scores by `exp(-iou² / sigma)` and re-sorts.
///
/// Boxes whose decayed score drops below `config.score_floor` are discarded.
///
/// # Panics
///
/// Panics if `sigma <= 0`.
pub fn soft_nms(dets: &ImageDetections, config: &NmsConfig, sigma: f64) -> ImageDetections {
    let mut out = ImageDetections::new();
    WRAPPER_SCRATCH.with(|s| soft_nms_into(dets, config, sigma, &mut s.borrow_mut(), &mut out));
    out
}

/// [`soft_nms`] over caller-provided scratch and output buffers.
///
/// `out` is cleared and refilled; with a warmed-up `scratch` and `out` the
/// call allocates nothing. Produces exactly the same result as [`soft_nms`].
///
/// # Panics
///
/// Panics if `sigma <= 0`.
pub fn soft_nms_into(
    dets: &ImageDetections,
    config: &NmsConfig,
    sigma: f64,
    scratch: &mut NmsScratch,
    out: &mut ImageDetections,
) {
    assert!(sigma > 0.0, "soft-nms sigma must be positive");
    prepare_candidates(dets, config.score_floor, scratch);
    let all = dets.as_slice();
    out.clear();

    let mut pos = 0usize;
    while pos < scratch.order.len() {
        let class = all[scratch.order[pos] as usize].class();
        let mut run_end = pos + 1;
        while run_end < scratch.order.len() && all[scratch.order[run_end] as usize].class() == class
        {
            run_end += 1;
        }

        scratch.pool.clear();
        scratch.pool.extend(
            scratch.order[pos..run_end]
                .iter()
                .map(|&i| (all[i as usize].score(), i)),
        );

        let mut class_kept = 0usize;
        while !scratch.pool.is_empty() && class_kept < config.max_per_class {
            // Select the current max-score entry. `Iterator::max_by` returns
            // the *last* maximal element, so `>=` keeps that tie-break.
            let mut best_i = 0usize;
            for j in 1..scratch.pool.len() {
                if scratch.pool[j].0 >= scratch.pool[best_i].0 {
                    best_i = j;
                }
            }
            let (best_score, best_idx) = scratch.pool.swap_remove(best_i);
            let best_bbox = all[best_idx as usize].bbox();
            let best_area = scratch.areas[best_idx as usize];
            // Decay remaining scores in place, dropping sub-floor entries
            // while preserving pool order.
            let areas = &scratch.areas;
            scratch.pool.retain_mut(|(score, i)| {
                let iou = best_bbox.iou_with_areas(
                    best_area,
                    &all[*i as usize].bbox(),
                    areas[*i as usize],
                );
                let decayed = *score * (-iou * iou / sigma).exp();
                if decayed >= config.score_floor {
                    *score = decayed;
                    true
                } else {
                    false
                }
            });
            out.push(all[best_idx as usize].with_score(best_score));
            class_kept += 1;
        }
        pos = run_end;
    }

    out.as_mut_slice()
        .sort_by_key(|d| Reverse(score_sort_key(d.score())));
}

#[cfg(test)]
pub(crate) mod reference {
    //! The pre-refactor grouped implementation, kept verbatim as the oracle
    //! the SoA kernels are checked against (see also `tests/equivalence.rs`).

    use crate::{ClassId, Detection, ImageDetections};
    use std::collections::BTreeMap;

    use super::NmsConfig;

    fn group_by_class(dets: &ImageDetections, floor: f64) -> BTreeMap<ClassId, Vec<Detection>> {
        let mut groups: BTreeMap<ClassId, Vec<Detection>> = BTreeMap::new();
        for d in dets.iter().filter(|d| d.score() >= floor) {
            groups.entry(d.class()).or_default().push(*d);
        }
        for group in groups.values_mut() {
            group.sort_by(|a, b| b.score().partial_cmp(&a.score()).expect("finite scores"));
        }
        groups
    }

    pub fn nms(dets: &ImageDetections, config: &NmsConfig) -> ImageDetections {
        let groups = group_by_class(dets, config.score_floor);
        let mut kept: Vec<Detection> = Vec::new();
        for (_, group) in groups {
            let mut class_kept: Vec<Detection> = Vec::new();
            for d in group {
                if class_kept.len() >= config.max_per_class {
                    break;
                }
                let suppressed = class_kept
                    .iter()
                    .any(|k| k.bbox().iou(&d.bbox()) > config.iou_threshold);
                if !suppressed {
                    class_kept.push(d);
                }
            }
            kept.extend(class_kept);
        }
        kept.sort_by(|a, b| b.score().partial_cmp(&a.score()).expect("finite scores"));
        ImageDetections::from_vec(kept)
    }

    pub fn soft_nms(dets: &ImageDetections, config: &NmsConfig, sigma: f64) -> ImageDetections {
        assert!(sigma > 0.0, "soft-nms sigma must be positive");
        let groups = group_by_class(dets, config.score_floor);
        let mut kept: Vec<Detection> = Vec::new();
        for (_, group) in groups {
            let mut pool = group;
            let mut class_kept: Vec<Detection> = Vec::new();
            while !pool.is_empty() && class_kept.len() < config.max_per_class {
                let (best_idx, _) = pool
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        a.score().partial_cmp(&b.score()).expect("finite scores")
                    })
                    .expect("pool is non-empty");
                let best = pool.swap_remove(best_idx);
                pool = pool
                    .into_iter()
                    .filter_map(|d| {
                        let iou = best.bbox().iou(&d.bbox());
                        let decayed = d.score() * (-iou * iou / sigma).exp();
                        if decayed >= config.score_floor {
                            Some(d.with_score(decayed))
                        } else {
                            None
                        }
                    })
                    .collect();
                class_kept.push(best);
            }
            kept.extend(class_kept);
        }
        kept.sort_by(|a, b| b.score().partial_cmp(&a.score()).expect("finite scores"));
        ImageDetections::from_vec(kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BBox, ClassId, Detection};

    fn det(class: u16, score: f64, x0: f64, y0: f64, x1: f64, y1: f64) -> Detection {
        Detection::new(ClassId(class), score, BBox::new(x0, y0, x1, y1).unwrap())
    }

    #[test]
    fn suppresses_duplicates_keeps_highest() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.7, 0.0, 0.0, 0.5, 0.5),
            det(0, 0.9, 0.005, 0.0, 0.5, 0.5),
            det(0, 0.6, 0.01, 0.01, 0.51, 0.52),
        ]);
        let kept = nms(&dets, &NmsConfig::default());
        assert_eq!(kept.len(), 1);
        assert!((kept.as_slice()[0].score() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn different_classes_not_suppressed() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.9, 0.0, 0.0, 0.5, 0.5),
            det(1, 0.8, 0.0, 0.0, 0.5, 0.5),
        ]);
        let kept = nms(&dets, &NmsConfig::default());
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn disjoint_boxes_all_kept() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.9, 0.0, 0.0, 0.2, 0.2),
            det(0, 0.8, 0.4, 0.4, 0.6, 0.6),
            det(0, 0.7, 0.8, 0.8, 1.0, 1.0),
        ]);
        let kept = nms(&dets, &NmsConfig::default());
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn score_floor_drops_noise() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.9, 0.0, 0.0, 0.2, 0.2),
            det(0, 0.005, 0.4, 0.4, 0.6, 0.6),
        ]);
        let kept = nms(&dets, &NmsConfig::default());
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn max_per_class_respected() {
        let mut v = Vec::new();
        for i in 0..10 {
            let x = i as f64 * 0.1;
            v.push(det(0, 0.9 - i as f64 * 0.01, x, 0.0, x + 0.05, 0.05));
        }
        let cfg = NmsConfig {
            max_per_class: 3,
            ..Default::default()
        };
        let kept = nms(&ImageDetections::from_vec(v), &cfg);
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn output_sorted_desc() {
        let dets = ImageDetections::from_vec(vec![
            det(1, 0.5, 0.0, 0.0, 0.2, 0.2),
            det(0, 0.9, 0.4, 0.4, 0.6, 0.6),
            det(2, 0.7, 0.8, 0.8, 1.0, 1.0),
        ]);
        let kept = nms(&dets, &NmsConfig::default());
        let scores: Vec<f64> = kept.iter().map(|d| d.score()).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn nms_idempotent() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.9, 0.0, 0.0, 0.5, 0.5),
            det(0, 0.8, 0.02, 0.0, 0.5, 0.5),
            det(1, 0.7, 0.6, 0.6, 0.9, 0.9),
        ]);
        let cfg = NmsConfig::default();
        let once = nms(&dets, &cfg);
        let twice = nms(&once, &cfg);
        assert_eq!(once, twice);
    }

    #[test]
    fn soft_nms_decays_but_may_keep() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.9, 0.0, 0.0, 0.5, 0.5),
            det(0, 0.8, 0.1, 0.1, 0.6, 0.6), // overlapping but distinct
        ]);
        let cfg = NmsConfig {
            score_floor: 0.01,
            ..Default::default()
        };
        let kept = soft_nms(&dets, &cfg, 0.5);
        assert_eq!(kept.len(), 2);
        // the second box's score must have decayed
        let min_score = kept.iter().map(|d| d.score()).fold(f64::MAX, f64::min);
        assert!(min_score < 0.8);
    }

    #[test]
    fn soft_nms_drops_below_floor() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.9, 0.0, 0.0, 0.5, 0.5),
            det(0, 0.02, 0.0, 0.0, 0.5, 0.5), // heavy overlap, low score
        ]);
        let cfg = NmsConfig {
            score_floor: 0.019,
            ..Default::default()
        };
        let kept = soft_nms(&dets, &cfg, 0.1);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn soft_nms_rejects_bad_sigma() {
        let dets = ImageDetections::new();
        let _ = soft_nms(&dets, &NmsConfig::default(), 0.0);
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let dets = ImageDetections::from_vec(vec![
            det(0, 0.9, 0.0, 0.0, 0.5, 0.5),
            det(0, 0.8, 0.02, 0.0, 0.5, 0.5),
            det(1, 0.7, 0.6, 0.6, 0.9, 0.9),
        ]);
        let cfg = NmsConfig::default();
        let mut scratch = NmsScratch::new();
        let mut out = ImageDetections::new();
        for _ in 0..3 {
            nms_into(&dets, &cfg, &mut scratch, &mut out);
            assert_eq!(out, nms(&dets, &cfg));
            soft_nms_into(&dets, &cfg, 0.5, &mut scratch, &mut out);
            assert_eq!(out, soft_nms(&dets, &cfg, 0.5));
        }
    }

    #[test]
    fn matches_reference_on_adversarial_ties() {
        // Equal scores within and across classes exercise every stable-sort
        // tie-break the reference implementation relies on.
        let dets = ImageDetections::from_vec(vec![
            det(1, 0.5, 0.0, 0.0, 0.2, 0.2),
            det(0, 0.5, 0.0, 0.0, 0.2, 0.2),
            det(1, 0.5, 0.5, 0.5, 0.7, 0.7),
            det(0, 0.5, 0.01, 0.0, 0.2, 0.2),
            det(0, 0.7, 0.4, 0.4, 0.6, 0.6),
            det(1, 0.5, 0.51, 0.5, 0.7, 0.7),
        ]);
        for cfg in [
            NmsConfig::default(),
            NmsConfig {
                max_per_class: 1,
                ..Default::default()
            },
            NmsConfig::with_iou(0.0),
        ] {
            assert_eq!(nms(&dets, &cfg), reference::nms(&dets, &cfg));
            for sigma in [0.1, 0.5, 2.0] {
                assert_eq!(
                    soft_nms(&dets, &cfg, sigma),
                    reference::soft_nms(&dets, &cfg, sigma)
                );
            }
        }
    }
}
