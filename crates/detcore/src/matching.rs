//! Greedy detection-to-ground-truth matching (VOC evaluation protocol).
//!
//! Detections of a class are visited in descending score order; each claims
//! the unclaimed ground-truth box of the same class with the highest IoU, if
//! that IoU clears the threshold (0.5 in the VOC protocol). A second
//! detection on an already-claimed object is a false positive ("duplicate
//! detection").

use crate::{Detection, GroundTruth};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Outcome of matching one detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MatchOutcome {
    /// True positive: claimed ground-truth object at `gt_index` with `iou`.
    TruePositive {
        /// Index into the ground-truth slice that was claimed.
        gt_index: usize,
        /// IoU between the detection and the claimed object.
        iou: f64,
    },
    /// The best overlap was with a VOC-`difficult` object; the detection is
    /// ignored (neither TP nor FP) under the VOC protocol.
    IgnoredDifficult,
    /// False positive: no unclaimed same-class object overlapped enough.
    FalsePositive,
}

impl MatchOutcome {
    /// Whether this outcome is a true positive.
    pub fn is_tp(&self) -> bool {
        matches!(self, MatchOutcome::TruePositive { .. })
    }

    /// Whether this outcome is a false positive.
    pub fn is_fp(&self) -> bool {
        matches!(self, MatchOutcome::FalsePositive)
    }
}

/// Result of matching all detections of one image for one class.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImageMatch {
    /// One outcome per detection, in the same (descending-score) order as the
    /// input detections.
    pub outcomes: Vec<MatchOutcome>,
    /// Number of non-difficult ground-truth objects (the AP denominator
    /// contribution of this image/class).
    pub num_gt: usize,
    /// Indices of ground-truth objects that were never claimed (missed).
    pub missed_gt: Vec<usize>,
}

/// Reusable working storage for [`match_greedy_into`].
///
/// Holds the score-sorted visit order, the per-ground-truth claim flags and
/// precomputed box areas, so repeated matching (the mAP and counting hot
/// loops run it once per class per image) performs no allocation after
/// warmup.
#[derive(Debug, Default, Clone)]
pub struct MatchScratch {
    /// Detection indices in descending-score visit order.
    order: Vec<u32>,
    /// Per-ground-truth "already claimed" flags.
    claimed: Vec<bool>,
    /// Precomputed ground-truth box areas.
    gt_areas: Vec<f64>,
}

impl MatchScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static WRAPPER_SCRATCH: RefCell<MatchScratch> = RefCell::new(MatchScratch::new());
}

/// Matches same-class detections against ground truths greedily by score.
///
/// `dets` **must** all share one class and so must `gts`; callers group by
/// class first (see [`crate::map::MapEvaluator`]). Detections are sorted
/// internally by descending score.
///
/// # Examples
///
/// ```
/// use detcore::{match_greedy, BBox, ClassId, Detection, GroundTruth};
///
/// let gts = vec![GroundTruth::new(ClassId(0), BBox::new(0.0, 0.0, 0.5, 0.5).unwrap())];
/// let dets = vec![Detection::new(ClassId(0), 0.9, BBox::new(0.01, 0.0, 0.5, 0.5).unwrap())];
/// let m = match_greedy(&dets, &gts, 0.5);
/// assert!(m.outcomes[0].is_tp());
/// assert!(m.missed_gt.is_empty());
/// ```
pub fn match_greedy(dets: &[Detection], gts: &[GroundTruth], iou_threshold: f64) -> ImageMatch {
    let mut out = ImageMatch::default();
    WRAPPER_SCRATCH
        .with(|s| match_greedy_into(dets, gts, iou_threshold, &mut s.borrow_mut(), &mut out));
    out
}

/// [`match_greedy`] over caller-provided scratch and output buffers.
///
/// `out` is cleared and refilled; with a warmed-up `scratch` and `out` the
/// call allocates nothing. Produces exactly the same result as
/// [`match_greedy`].
pub fn match_greedy_into(
    dets: &[Detection],
    gts: &[GroundTruth],
    iou_threshold: f64,
    scratch: &mut MatchScratch,
    out: &mut ImageMatch,
) {
    assert!(
        (0.0..=1.0).contains(&iou_threshold),
        "iou threshold must be in [0, 1]"
    );

    // Fast path: no ground truths — every detection is a plain false
    // positive regardless of score order.
    if gts.is_empty() {
        out.outcomes.clear();
        out.outcomes.resize(dets.len(), MatchOutcome::FalsePositive);
        out.num_gt = 0;
        out.missed_gt.clear();
        return;
    }

    // Fast path: a single detection needs no ordering or claim flags; the
    // best-overlap scan below is the general path's verbatim inner loop.
    if dets.len() == 1 {
        let det = &dets[0];
        let det_area = det.bbox().area();
        let mut best: Option<(usize, f64)> = None;
        for (gi, gt) in gts.iter().enumerate() {
            debug_assert_eq!(gt.class(), det.class(), "matching requires one class");
            let iou = det
                .bbox()
                .iou_with_areas(det_area, &gt.bbox(), gt.bbox().area());
            if iou >= iou_threshold {
                match best {
                    Some((_, biou)) if biou >= iou => {}
                    _ => best = Some((gi, iou)),
                }
            }
        }
        let mut claimed_gi = None;
        out.outcomes.clear();
        out.outcomes.push(match best {
            Some((gi, iou)) => {
                if gts[gi].is_difficult() {
                    MatchOutcome::IgnoredDifficult
                } else {
                    claimed_gi = Some(gi);
                    MatchOutcome::TruePositive { gt_index: gi, iou }
                }
            }
            None => MatchOutcome::FalsePositive,
        });
        out.num_gt = gts.iter().filter(|g| !g.is_difficult()).count();
        out.missed_gt.clear();
        out.missed_gt.extend(
            gts.iter()
                .enumerate()
                .filter(|(gi, gt)| !gt.is_difficult() && claimed_gi != Some(*gi))
                .map(|(gi, _)| gi),
        );
        return;
    }

    scratch.order.clear();
    scratch.order.extend(0..dets.len() as u32);
    // Stable integer-key sort: same permutation as a descending
    // `partial_cmp` sort on the scores.
    scratch
        .order
        .sort_by_key(|&i| std::cmp::Reverse(crate::det::score_sort_key(dets[i as usize].score())));

    scratch.claimed.clear();
    scratch.claimed.resize(gts.len(), false);
    scratch.gt_areas.clear();
    scratch.gt_areas.extend(gts.iter().map(|g| g.bbox().area()));

    out.outcomes.clear();
    out.outcomes.resize(dets.len(), MatchOutcome::FalsePositive);

    for &di in &scratch.order {
        let det = &dets[di as usize];
        let det_area = det.bbox().area();
        // Find best-IoU ground truth (claimed or not, difficult or not).
        let mut best: Option<(usize, f64)> = None;
        for (gi, gt) in gts.iter().enumerate() {
            debug_assert_eq!(gt.class(), det.class(), "matching requires one class");
            let iou = det
                .bbox()
                .iou_with_areas(det_area, &gt.bbox(), scratch.gt_areas[gi]);
            if iou >= iou_threshold {
                match best {
                    Some((_, biou)) if biou >= iou => {}
                    _ => best = Some((gi, iou)),
                }
            }
        }
        out.outcomes[di as usize] = match best {
            Some((gi, iou)) => {
                if gts[gi].is_difficult() {
                    MatchOutcome::IgnoredDifficult
                } else if !scratch.claimed[gi] {
                    scratch.claimed[gi] = true;
                    MatchOutcome::TruePositive { gt_index: gi, iou }
                } else {
                    MatchOutcome::FalsePositive
                }
            }
            None => MatchOutcome::FalsePositive,
        };
    }

    out.num_gt = gts.iter().filter(|g| !g.is_difficult()).count();
    out.missed_gt.clear();
    out.missed_gt.extend(
        gts.iter()
            .enumerate()
            .filter(|(gi, gt)| !gt.is_difficult() && !scratch.claimed[*gi])
            .map(|(gi, _)| gi),
    );
}

#[cfg(test)]
pub(crate) mod reference {
    //! The pre-refactor allocating implementation, kept verbatim as the
    //! oracle the scratch kernel is checked against.

    use super::{ImageMatch, MatchOutcome};
    use crate::{Detection, GroundTruth};

    pub fn match_greedy(dets: &[Detection], gts: &[GroundTruth], iou_threshold: f64) -> ImageMatch {
        assert!(
            (0.0..=1.0).contains(&iou_threshold),
            "iou threshold must be in [0, 1]"
        );
        let mut order: Vec<usize> = (0..dets.len()).collect();
        order.sort_by(|&a, &b| {
            dets[b]
                .score()
                .partial_cmp(&dets[a].score())
                .expect("finite scores")
        });

        let mut claimed = vec![false; gts.len()];
        let mut outcomes = vec![MatchOutcome::FalsePositive; dets.len()];

        for &di in &order {
            let det = &dets[di];
            let mut best: Option<(usize, f64)> = None;
            for (gi, gt) in gts.iter().enumerate() {
                let iou = det.bbox().iou(&gt.bbox());
                if iou >= iou_threshold {
                    match best {
                        Some((_, biou)) if biou >= iou => {}
                        _ => best = Some((gi, iou)),
                    }
                }
            }
            outcomes[di] = match best {
                Some((gi, iou)) => {
                    if gts[gi].is_difficult() {
                        MatchOutcome::IgnoredDifficult
                    } else if !claimed[gi] {
                        claimed[gi] = true;
                        MatchOutcome::TruePositive { gt_index: gi, iou }
                    } else {
                        MatchOutcome::FalsePositive
                    }
                }
                None => MatchOutcome::FalsePositive,
            };
        }

        let num_gt = gts.iter().filter(|g| !g.is_difficult()).count();
        let missed_gt = gts
            .iter()
            .enumerate()
            .filter(|(gi, gt)| !gt.is_difficult() && !claimed[*gi])
            .map(|(gi, _)| gi)
            .collect();

        ImageMatch {
            outcomes,
            num_gt,
            missed_gt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BBox, ClassId};

    fn det(score: f64, x0: f64, y0: f64, x1: f64, y1: f64) -> Detection {
        Detection::new(ClassId(0), score, BBox::new(x0, y0, x1, y1).unwrap())
    }

    fn gt(x0: f64, y0: f64, x1: f64, y1: f64) -> GroundTruth {
        GroundTruth::new(ClassId(0), BBox::new(x0, y0, x1, y1).unwrap())
    }

    #[test]
    fn perfect_match() {
        let m = match_greedy(
            &[det(0.9, 0.0, 0.0, 0.5, 0.5)],
            &[gt(0.0, 0.0, 0.5, 0.5)],
            0.5,
        );
        assert!(m.outcomes[0].is_tp());
        assert_eq!(m.num_gt, 1);
        assert!(m.missed_gt.is_empty());
    }

    #[test]
    fn duplicate_detection_is_fp() {
        let dets = vec![det(0.9, 0.0, 0.0, 0.5, 0.5), det(0.8, 0.01, 0.0, 0.5, 0.5)];
        let m = match_greedy(&dets, &[gt(0.0, 0.0, 0.5, 0.5)], 0.5);
        assert!(m.outcomes[0].is_tp());
        assert!(m.outcomes[1].is_fp());
    }

    #[test]
    fn higher_score_claims_first_even_if_listed_later() {
        let dets = vec![det(0.5, 0.0, 0.0, 0.5, 0.5), det(0.95, 0.0, 0.0, 0.5, 0.5)];
        let m = match_greedy(&dets, &[gt(0.0, 0.0, 0.5, 0.5)], 0.5);
        assert!(
            m.outcomes[1].is_tp(),
            "the 0.95 detection claims the object"
        );
        assert!(m.outcomes[0].is_fp());
    }

    #[test]
    fn low_iou_is_fp_and_object_missed() {
        let m = match_greedy(
            &[det(0.9, 0.6, 0.6, 1.0, 1.0)],
            &[gt(0.0, 0.0, 0.3, 0.3)],
            0.5,
        );
        assert!(m.outcomes[0].is_fp());
        assert_eq!(m.missed_gt, vec![0]);
    }

    #[test]
    fn difficult_gt_ignored_not_counted() {
        let gts = vec![GroundTruth::new_difficult(
            ClassId(0),
            BBox::new(0.0, 0.0, 0.5, 0.5).unwrap(),
        )];
        let m = match_greedy(&[det(0.9, 0.0, 0.0, 0.5, 0.5)], &gts, 0.5);
        assert_eq!(m.outcomes[0], MatchOutcome::IgnoredDifficult);
        assert_eq!(m.num_gt, 0);
        assert!(m.missed_gt.is_empty());
    }

    #[test]
    fn picks_best_iou_among_candidates() {
        let gts = vec![gt(0.0, 0.0, 0.5, 0.5), gt(0.05, 0.05, 0.55, 0.55)];
        let d = det(0.9, 0.05, 0.05, 0.55, 0.55);
        let m = match_greedy(&[d], &gts, 0.5);
        match m.outcomes[0] {
            MatchOutcome::TruePositive { gt_index, iou } => {
                assert_eq!(gt_index, 1);
                assert!((iou - 1.0).abs() < 1e-12);
            }
            _ => panic!("expected TP"),
        }
        assert_eq!(m.missed_gt, vec![0]);
    }

    #[test]
    fn no_detections_all_missed() {
        let gts = vec![gt(0.0, 0.0, 0.5, 0.5), gt(0.6, 0.6, 0.9, 0.9)];
        let m = match_greedy(&[], &gts, 0.5);
        assert!(m.outcomes.is_empty());
        assert_eq!(m.num_gt, 2);
        assert_eq!(m.missed_gt.len(), 2);
    }

    #[test]
    fn scratch_reuse_matches_reference() {
        let dets = vec![
            det(0.9, 0.0, 0.0, 0.5, 0.5),
            det(0.9, 0.01, 0.0, 0.5, 0.5), // tied score exercises stable sort
            det(0.3, 0.6, 0.6, 0.9, 0.9),
        ];
        let gts = vec![
            gt(0.0, 0.0, 0.5, 0.5),
            GroundTruth::new_difficult(ClassId(0), BBox::new(0.6, 0.6, 0.9, 0.9).unwrap()),
        ];
        let mut scratch = MatchScratch::new();
        let mut out = ImageMatch::default();
        for _ in 0..3 {
            match_greedy_into(&dets, &gts, 0.5, &mut scratch, &mut out);
            assert_eq!(out, reference::match_greedy(&dets, &gts, 0.5));
            // Different shapes between calls must not leak stale state.
            match_greedy_into(&dets[..1], &gts[..1], 0.5, &mut scratch, &mut out);
            assert_eq!(out, reference::match_greedy(&dets[..1], &gts[..1], 0.5));
        }
    }
}
