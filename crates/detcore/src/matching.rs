//! Greedy detection-to-ground-truth matching (VOC evaluation protocol).
//!
//! Detections of a class are visited in descending score order; each claims
//! the unclaimed ground-truth box of the same class with the highest IoU, if
//! that IoU clears the threshold (0.5 in the VOC protocol). A second
//! detection on an already-claimed object is a false positive ("duplicate
//! detection").

use crate::{Detection, GroundTruth};
use serde::{Deserialize, Serialize};

/// Outcome of matching one detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MatchOutcome {
    /// True positive: claimed ground-truth object at `gt_index` with `iou`.
    TruePositive {
        /// Index into the ground-truth slice that was claimed.
        gt_index: usize,
        /// IoU between the detection and the claimed object.
        iou: f64,
    },
    /// The best overlap was with a VOC-`difficult` object; the detection is
    /// ignored (neither TP nor FP) under the VOC protocol.
    IgnoredDifficult,
    /// False positive: no unclaimed same-class object overlapped enough.
    FalsePositive,
}

impl MatchOutcome {
    /// Whether this outcome is a true positive.
    pub fn is_tp(&self) -> bool {
        matches!(self, MatchOutcome::TruePositive { .. })
    }

    /// Whether this outcome is a false positive.
    pub fn is_fp(&self) -> bool {
        matches!(self, MatchOutcome::FalsePositive)
    }
}

/// Result of matching all detections of one image for one class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageMatch {
    /// One outcome per detection, in the same (descending-score) order as the
    /// input detections.
    pub outcomes: Vec<MatchOutcome>,
    /// Number of non-difficult ground-truth objects (the AP denominator
    /// contribution of this image/class).
    pub num_gt: usize,
    /// Indices of ground-truth objects that were never claimed (missed).
    pub missed_gt: Vec<usize>,
}

/// Matches same-class detections against ground truths greedily by score.
///
/// `dets` **must** all share one class and so must `gts`; callers group by
/// class first (see [`crate::map::MapEvaluator`]). Detections are sorted
/// internally by descending score.
///
/// # Examples
///
/// ```
/// use detcore::{match_greedy, BBox, ClassId, Detection, GroundTruth};
///
/// let gts = vec![GroundTruth::new(ClassId(0), BBox::new(0.0, 0.0, 0.5, 0.5).unwrap())];
/// let dets = vec![Detection::new(ClassId(0), 0.9, BBox::new(0.01, 0.0, 0.5, 0.5).unwrap())];
/// let m = match_greedy(&dets, &gts, 0.5);
/// assert!(m.outcomes[0].is_tp());
/// assert!(m.missed_gt.is_empty());
/// ```
pub fn match_greedy(dets: &[Detection], gts: &[GroundTruth], iou_threshold: f64) -> ImageMatch {
    assert!(
        (0.0..=1.0).contains(&iou_threshold),
        "iou threshold must be in [0, 1]"
    );
    let mut order: Vec<usize> = (0..dets.len()).collect();
    order.sort_by(|&a, &b| {
        dets[b]
            .score()
            .partial_cmp(&dets[a].score())
            .expect("finite scores")
    });

    let mut claimed = vec![false; gts.len()];
    let mut outcomes = vec![MatchOutcome::FalsePositive; dets.len()];

    for &di in &order {
        let det = &dets[di];
        // Find best-IoU ground truth (claimed or not, difficult or not).
        let mut best: Option<(usize, f64)> = None;
        for (gi, gt) in gts.iter().enumerate() {
            debug_assert_eq!(gt.class(), det.class(), "matching requires one class");
            let iou = det.bbox().iou(&gt.bbox());
            if iou >= iou_threshold {
                match best {
                    Some((_, biou)) if biou >= iou => {}
                    _ => best = Some((gi, iou)),
                }
            }
        }
        outcomes[di] = match best {
            Some((gi, iou)) => {
                if gts[gi].is_difficult() {
                    MatchOutcome::IgnoredDifficult
                } else if !claimed[gi] {
                    claimed[gi] = true;
                    MatchOutcome::TruePositive { gt_index: gi, iou }
                } else {
                    MatchOutcome::FalsePositive
                }
            }
            None => MatchOutcome::FalsePositive,
        };
    }

    let num_gt = gts.iter().filter(|g| !g.is_difficult()).count();
    let missed_gt = gts
        .iter()
        .enumerate()
        .filter(|(gi, gt)| !gt.is_difficult() && !claimed[*gi])
        .map(|(gi, _)| gi)
        .collect();

    ImageMatch {
        outcomes,
        num_gt,
        missed_gt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BBox, ClassId};

    fn det(score: f64, x0: f64, y0: f64, x1: f64, y1: f64) -> Detection {
        Detection::new(ClassId(0), score, BBox::new(x0, y0, x1, y1).unwrap())
    }

    fn gt(x0: f64, y0: f64, x1: f64, y1: f64) -> GroundTruth {
        GroundTruth::new(ClassId(0), BBox::new(x0, y0, x1, y1).unwrap())
    }

    #[test]
    fn perfect_match() {
        let m = match_greedy(
            &[det(0.9, 0.0, 0.0, 0.5, 0.5)],
            &[gt(0.0, 0.0, 0.5, 0.5)],
            0.5,
        );
        assert!(m.outcomes[0].is_tp());
        assert_eq!(m.num_gt, 1);
        assert!(m.missed_gt.is_empty());
    }

    #[test]
    fn duplicate_detection_is_fp() {
        let dets = vec![det(0.9, 0.0, 0.0, 0.5, 0.5), det(0.8, 0.01, 0.0, 0.5, 0.5)];
        let m = match_greedy(&dets, &[gt(0.0, 0.0, 0.5, 0.5)], 0.5);
        assert!(m.outcomes[0].is_tp());
        assert!(m.outcomes[1].is_fp());
    }

    #[test]
    fn higher_score_claims_first_even_if_listed_later() {
        let dets = vec![det(0.5, 0.0, 0.0, 0.5, 0.5), det(0.95, 0.0, 0.0, 0.5, 0.5)];
        let m = match_greedy(&dets, &[gt(0.0, 0.0, 0.5, 0.5)], 0.5);
        assert!(
            m.outcomes[1].is_tp(),
            "the 0.95 detection claims the object"
        );
        assert!(m.outcomes[0].is_fp());
    }

    #[test]
    fn low_iou_is_fp_and_object_missed() {
        let m = match_greedy(
            &[det(0.9, 0.6, 0.6, 1.0, 1.0)],
            &[gt(0.0, 0.0, 0.3, 0.3)],
            0.5,
        );
        assert!(m.outcomes[0].is_fp());
        assert_eq!(m.missed_gt, vec![0]);
    }

    #[test]
    fn difficult_gt_ignored_not_counted() {
        let gts = vec![GroundTruth::new_difficult(
            ClassId(0),
            BBox::new(0.0, 0.0, 0.5, 0.5).unwrap(),
        )];
        let m = match_greedy(&[det(0.9, 0.0, 0.0, 0.5, 0.5)], &gts, 0.5);
        assert_eq!(m.outcomes[0], MatchOutcome::IgnoredDifficult);
        assert_eq!(m.num_gt, 0);
        assert!(m.missed_gt.is_empty());
    }

    #[test]
    fn picks_best_iou_among_candidates() {
        let gts = vec![gt(0.0, 0.0, 0.5, 0.5), gt(0.05, 0.05, 0.55, 0.55)];
        let d = det(0.9, 0.05, 0.05, 0.55, 0.55);
        let m = match_greedy(&[d], &gts, 0.5);
        match m.outcomes[0] {
            MatchOutcome::TruePositive { gt_index, iou } => {
                assert_eq!(gt_index, 1);
                assert!((iou - 1.0).abs() < 1e-12);
            }
            _ => panic!("expected TP"),
        }
        assert_eq!(m.missed_gt, vec![0]);
    }

    #[test]
    fn no_detections_all_missed() {
        let gts = vec![gt(0.0, 0.0, 0.5, 0.5), gt(0.6, 0.6, 0.9, 0.9)];
        let m = match_greedy(&[], &gts, 0.5);
        assert!(m.outcomes.is_empty());
        assert_eq!(m.num_gt, 2);
        assert_eq!(m.missed_gt.len(), 2);
    }
}
