//! Mean average precision (mAP) evaluation over a dataset of images.
//!
//! Implements the PASCAL VOC protocol: per-class greedy matching at IoU ≥ 0.5,
//! precision/recall curve construction over descending score, and AP either by
//! the VOC2007 11-point interpolation or by the continuous (all-point)
//! interpolation. The paper reports VOC-style mAP percentages.

use crate::{match_greedy, ClassId, Detection, GroundTruth, ImageDetections};
use serde::{Deserialize, Serialize};

/// AP interpolation protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ApProtocol {
    /// VOC2007 11-point interpolation (recall ∈ {0, 0.1, …, 1.0}).
    #[default]
    Voc07ElevenPoint,
    /// Continuous interpolation (area under the monotonised PR curve).
    AllPoint,
}

/// One precision/recall point at a score cut-off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Precision at this cut-off.
    pub precision: f64,
    /// Recall at this cut-off.
    pub recall: f64,
    /// The detection score at which this point was produced.
    pub score: f64,
}

/// Per-class AP result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassAp {
    /// The class this entry describes.
    pub class: ClassId,
    /// Average precision in `[0, 1]`.
    pub ap: f64,
    /// Number of (non-difficult) ground-truth objects of this class.
    pub num_gt: usize,
    /// Number of detections of this class that were evaluated.
    pub num_dets: usize,
}

/// Full mAP report for a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapReport {
    /// Per-class APs, indexed by class order.
    pub per_class: Vec<ClassAp>,
    /// Mean AP over classes that have at least one ground-truth object.
    pub map: f64,
}

impl MapReport {
    /// mAP as a percentage (the paper reports e.g. `70.76`).
    pub fn map_percent(&self) -> f64 {
        self.map * 100.0
    }
}

/// Streaming mAP evaluator: feed image results one at a time, then evaluate.
///
/// # Examples
///
/// ```
/// use detcore::{ApProtocol, BBox, ClassId, Detection, GroundTruth, ImageDetections,
///               MapEvaluator};
///
/// let mut ev = MapEvaluator::new(2, ApProtocol::Voc07ElevenPoint);
/// let gts = vec![GroundTruth::new(ClassId(0), BBox::new(0.0, 0.0, 0.5, 0.5).unwrap())];
/// let dets = ImageDetections::from_vec(vec![Detection::new(
///     ClassId(0), 0.9, BBox::new(0.0, 0.0, 0.5, 0.5).unwrap(),
/// )]);
/// ev.add_image(&dets, &gts);
/// let report = ev.evaluate();
/// assert!((report.map - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct MapEvaluator {
    iou_threshold: f64,
    protocol: ApProtocol,
    /// Per class: (score, is_tp) for every counted detection.
    records: Vec<Vec<(f64, bool)>>,
    /// Per class: number of non-difficult ground truths.
    gt_counts: Vec<usize>,
    images_seen: usize,
}

impl MapEvaluator {
    /// Creates an evaluator for `num_classes` classes at IoU threshold 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn new(num_classes: usize, protocol: ApProtocol) -> Self {
        Self::with_iou(num_classes, protocol, 0.5)
    }

    /// Creates an evaluator with a custom IoU threshold.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or the threshold is outside `[0, 1]`.
    pub fn with_iou(num_classes: usize, protocol: ApProtocol, iou_threshold: f64) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(
            (0.0..=1.0).contains(&iou_threshold),
            "iou threshold must be in [0, 1]"
        );
        MapEvaluator {
            iou_threshold,
            protocol,
            records: vec![Vec::new(); num_classes],
            gt_counts: vec![0; num_classes],
            images_seen: 0,
        }
    }

    /// Number of classes being evaluated.
    pub fn num_classes(&self) -> usize {
        self.records.len()
    }

    /// Number of images accumulated so far.
    pub fn images_seen(&self) -> usize {
        self.images_seen
    }

    /// Accumulates one image's detections against its ground truths.
    ///
    /// Detections or ground truths whose class index is out of range are
    /// ignored (they belong to a different taxonomy).
    pub fn add_image(&mut self, dets: &ImageDetections, gts: &[GroundTruth]) {
        self.images_seen += 1;
        let n = self.records.len();
        // Group per class.
        let mut dets_by_class: Vec<Vec<Detection>> = vec![Vec::new(); n];
        for d in dets.iter() {
            if d.class().index() < n {
                dets_by_class[d.class().index()].push(*d);
            }
        }
        let mut gts_by_class: Vec<Vec<GroundTruth>> = vec![Vec::new(); n];
        for g in gts {
            if g.class().index() < n {
                gts_by_class[g.class().index()].push(*g);
            }
        }
        for c in 0..n {
            let class_dets = &dets_by_class[c];
            let class_gts = &gts_by_class[c];
            self.gt_counts[c] += class_gts.iter().filter(|g| !g.is_difficult()).count();
            if class_dets.is_empty() {
                continue;
            }
            let m = match_greedy(class_dets, class_gts, self.iou_threshold);
            for (d, outcome) in class_dets.iter().zip(&m.outcomes) {
                match outcome {
                    crate::MatchOutcome::TruePositive { .. } => {
                        self.records[c].push((d.score(), true));
                    }
                    crate::MatchOutcome::FalsePositive => {
                        self.records[c].push((d.score(), false));
                    }
                    crate::MatchOutcome::IgnoredDifficult => {}
                }
            }
        }
    }

    /// Computes the PR curve for one class (descending score order).
    pub fn pr_curve(&self, class: ClassId) -> Vec<PrPoint> {
        let c = class.index();
        assert!(c < self.records.len(), "class out of range");
        let num_gt = self.gt_counts[c];
        let mut recs = self.records[c].clone();
        recs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut points = Vec::with_capacity(recs.len());
        for (score, is_tp) in recs {
            if is_tp {
                tp += 1;
            } else {
                fp += 1;
            }
            let precision = tp as f64 / (tp + fp) as f64;
            let recall = if num_gt == 0 {
                0.0
            } else {
                tp as f64 / num_gt as f64
            };
            points.push(PrPoint {
                precision,
                recall,
                score,
            });
        }
        points
    }

    /// AP for one class under the configured protocol.
    pub fn class_ap(&self, class: ClassId) -> f64 {
        let points = self.pr_curve(class);
        match self.protocol {
            ApProtocol::Voc07ElevenPoint => eleven_point_ap(&points),
            ApProtocol::AllPoint => all_point_ap(&points),
        }
    }

    /// Evaluates mAP over all classes with at least one ground truth.
    ///
    /// Classes with zero ground truths are skipped (they would be undefined);
    /// if *all* classes are empty the mAP is 0.
    pub fn evaluate(&self) -> MapReport {
        let mut per_class = Vec::with_capacity(self.records.len());
        let mut sum = 0.0;
        let mut counted = 0usize;
        for c in 0..self.records.len() {
            let id = ClassId(c as u16);
            let ap = if self.gt_counts[c] > 0 {
                self.class_ap(id)
            } else {
                0.0
            };
            if self.gt_counts[c] > 0 {
                sum += ap;
                counted += 1;
            }
            per_class.push(ClassAp {
                class: id,
                ap,
                num_gt: self.gt_counts[c],
                num_dets: self.records[c].len(),
            });
        }
        let map = if counted == 0 {
            0.0
        } else {
            sum / counted as f64
        };
        MapReport { per_class, map }
    }
}

/// VOC2007 11-point interpolated AP.
fn eleven_point_ap(points: &[PrPoint]) -> f64 {
    let mut ap = 0.0;
    for i in 0..=10 {
        let r = i as f64 / 10.0;
        let p_max = points
            .iter()
            .filter(|p| p.recall >= r - 1e-12)
            .map(|p| p.precision)
            .fold(0.0, f64::max);
        ap += p_max;
    }
    ap / 11.0
}

/// Continuous (all-point) interpolated AP: area under the monotonised curve.
fn all_point_ap(points: &[PrPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    // Build (recall, precision) with precision monotonised from the right.
    let mut rp: Vec<(f64, f64)> = points.iter().map(|p| (p.recall, p.precision)).collect();
    for i in (0..rp.len().saturating_sub(1)).rev() {
        rp[i].1 = rp[i].1.max(rp[i + 1].1);
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for (r, p) in rp {
        if r > prev_recall {
            ap += (r - prev_recall) * p;
            prev_recall = r;
        }
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BBox;

    fn det(c: u16, score: f64, x0: f64, y0: f64, x1: f64, y1: f64) -> Detection {
        Detection::new(ClassId(c), score, BBox::new(x0, y0, x1, y1).unwrap())
    }

    fn gt(c: u16, x0: f64, y0: f64, x1: f64, y1: f64) -> GroundTruth {
        GroundTruth::new(ClassId(c), BBox::new(x0, y0, x1, y1).unwrap())
    }

    #[test]
    fn perfect_detection_gives_map_one() {
        for protocol in [ApProtocol::Voc07ElevenPoint, ApProtocol::AllPoint] {
            let mut ev = MapEvaluator::new(1, protocol);
            ev.add_image(
                &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.5, 0.5)]),
                &[gt(0, 0.0, 0.0, 0.5, 0.5)],
            );
            let r = ev.evaluate();
            assert!((r.map - 1.0).abs() < 1e-9, "protocol {protocol:?}");
        }
    }

    #[test]
    fn no_detections_gives_zero() {
        let mut ev = MapEvaluator::new(1, ApProtocol::Voc07ElevenPoint);
        ev.add_image(&ImageDetections::new(), &[gt(0, 0.0, 0.0, 0.5, 0.5)]);
        assert_eq!(ev.evaluate().map, 0.0);
    }

    #[test]
    fn all_fp_gives_zero() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.6, 0.6, 0.9, 0.9)]),
            &[gt(0, 0.0, 0.0, 0.3, 0.3)],
        );
        assert_eq!(ev.evaluate().map, 0.0);
    }

    #[test]
    fn half_detected_eleven_point() {
        // Two objects, one detected perfectly: recall tops out at 0.5 with
        // precision 1 => 11-pt AP = 6/11 (recall points 0.0..0.5).
        let mut ev = MapEvaluator::new(1, ApProtocol::Voc07ElevenPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4), gt(0, 0.6, 0.6, 0.9, 0.9)],
        );
        let r = ev.evaluate();
        assert!((r.map - 6.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn half_detected_all_point() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4), gt(0, 0.6, 0.6, 0.9, 0.9)],
        );
        let r = ev.evaluate();
        assert!((r.map - 0.5).abs() < 1e-9);
    }

    #[test]
    fn map_averages_over_classes_with_gt_only() {
        let mut ev = MapEvaluator::new(3, ApProtocol::AllPoint);
        // class 0 perfect, class 1 missed, class 2 has no gt at all
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4), gt(1, 0.6, 0.6, 0.9, 0.9)],
        );
        let r = ev.evaluate();
        assert!((r.map - 0.5).abs() < 1e-9, "mean of AP(1.0) and AP(0.0)");
        assert_eq!(r.per_class.len(), 3);
        assert_eq!(r.per_class[2].num_gt, 0);
    }

    #[test]
    fn fp_before_tp_lowers_ap() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![
                det(0, 0.95, 0.6, 0.6, 0.9, 0.9), // FP at higher score
                det(0, 0.80, 0.0, 0.0, 0.4, 0.4), // TP
            ]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4)],
        );
        let r = ev.evaluate();
        assert!((r.map - 0.5).abs() < 1e-9, "precision at recall 1 is 1/2");
    }

    #[test]
    fn difficult_gt_not_in_denominator() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        let gts = vec![
            GroundTruth::new(ClassId(0), BBox::new(0.0, 0.0, 0.4, 0.4).unwrap()),
            GroundTruth::new_difficult(ClassId(0), BBox::new(0.6, 0.6, 0.9, 0.9).unwrap()),
        ];
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            &gts,
        );
        let r = ev.evaluate();
        assert!((r.map - 1.0).abs() < 1e-9);
        assert_eq!(r.per_class[0].num_gt, 1);
    }

    #[test]
    fn pr_curve_monotone_recall() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![
                det(0, 0.9, 0.0, 0.0, 0.4, 0.4),
                det(0, 0.8, 0.6, 0.6, 0.9, 0.9),
                det(0, 0.7, 0.1, 0.5, 0.3, 0.9),
            ]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4), gt(0, 0.6, 0.6, 0.9, 0.9)],
        );
        let pr = ev.pr_curve(ClassId(0));
        assert_eq!(pr.len(), 3);
        assert!(pr.windows(2).all(|w| w[0].recall <= w[1].recall));
    }

    #[test]
    fn streaming_matches_batch() {
        // Adding images one by one equals adding them in another order.
        let img1 = (
            ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            vec![gt(0, 0.0, 0.0, 0.4, 0.4)],
        );
        let img2 = (
            ImageDetections::from_vec(vec![det(0, 0.3, 0.5, 0.5, 0.9, 0.9)]),
            vec![gt(0, 0.5, 0.5, 0.9, 0.9), gt(0, 0.0, 0.5, 0.2, 0.9)],
        );
        let mut a = MapEvaluator::new(1, ApProtocol::AllPoint);
        a.add_image(&img1.0, &img1.1);
        a.add_image(&img2.0, &img2.1);
        let mut b = MapEvaluator::new(1, ApProtocol::AllPoint);
        b.add_image(&img2.0, &img2.1);
        b.add_image(&img1.0, &img1.1);
        assert!((a.evaluate().map - b.evaluate().map).abs() < 1e-12);
        assert_eq!(a.images_seen(), 2);
    }

    #[test]
    fn map_percent_scales() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4)],
        );
        assert!((ev.evaluate().map_percent() - 100.0).abs() < 1e-9);
    }
}
