//! Mean average precision (mAP) evaluation over a dataset of images.
//!
//! Implements the PASCAL VOC protocol: per-class greedy matching at IoU ≥ 0.5,
//! precision/recall curve construction over descending score, and AP either by
//! the VOC2007 11-point interpolation or by the continuous (all-point)
//! interpolation. The paper reports VOC-style mAP percentages.

use crate::matching::{match_greedy_into, ImageMatch, MatchScratch};
use crate::{ClassId, Detection, GroundTruth, ImageDetections};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, Ref, RefCell};

/// AP interpolation protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ApProtocol {
    /// VOC2007 11-point interpolation (recall ∈ {0, 0.1, …, 1.0}).
    #[default]
    Voc07ElevenPoint,
    /// Continuous interpolation (area under the monotonised PR curve).
    AllPoint,
}

/// One precision/recall point at a score cut-off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Precision at this cut-off.
    pub precision: f64,
    /// Recall at this cut-off.
    pub recall: f64,
    /// The detection score at which this point was produced.
    pub score: f64,
}

/// Per-class AP result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassAp {
    /// The class this entry describes.
    pub class: ClassId,
    /// Average precision in `[0, 1]`.
    pub ap: f64,
    /// Number of (non-difficult) ground-truth objects of this class.
    pub num_gt: usize,
    /// Number of detections of this class that were evaluated.
    pub num_dets: usize,
}

/// Full mAP report for a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapReport {
    /// Per-class APs, indexed by class order.
    pub per_class: Vec<ClassAp>,
    /// Mean AP over classes that have at least one ground-truth object.
    pub map: f64,
}

impl MapReport {
    /// mAP as a percentage (the paper reports e.g. `70.76`).
    pub fn map_percent(&self) -> f64 {
        self.map * 100.0
    }
}

/// Streaming mAP evaluator: feed image results one at a time, then evaluate.
///
/// # Examples
///
/// ```
/// use detcore::{ApProtocol, BBox, ClassId, Detection, GroundTruth, ImageDetections,
///               MapEvaluator};
///
/// let mut ev = MapEvaluator::new(2, ApProtocol::Voc07ElevenPoint);
/// let gts = vec![GroundTruth::new(ClassId(0), BBox::new(0.0, 0.0, 0.5, 0.5).unwrap())];
/// let dets = ImageDetections::from_vec(vec![Detection::new(
///     ClassId(0), 0.9, BBox::new(0.0, 0.0, 0.5, 0.5).unwrap(),
/// )]);
/// ev.add_image(&dets, &gts);
/// let report = ev.evaluate();
/// assert!((report.map - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct MapEvaluator {
    iou_threshold: f64,
    protocol: ApProtocol,
    /// Per class: (score, is_tp) for every counted detection, in
    /// accumulation order.
    records: Vec<Vec<(f64, bool)>>,
    /// Per class: number of non-difficult ground truths.
    gt_counts: Vec<usize>,
    images_seen: usize,
    /// Per class, `records[c]` sorted by descending score — built lazily on
    /// the first [`MapEvaluator::pr_curve`] after accumulation and reused
    /// until the next [`MapEvaluator::add_image`] invalidates it, so a full
    /// [`MapEvaluator::evaluate`] sorts each class once instead of cloning
    /// and re-sorting per call.
    sorted: RefCell<Vec<Vec<(f64, bool)>>>,
    sorted_valid: Cell<bool>,
    /// Reusable per-image grouping buffers (no allocation after warmup).
    scratch: AddImageScratch,
}

/// Working storage for [`MapEvaluator::add_image`]: one stable index sort
/// by class gathers detections and ground truths into class-contiguous
/// buffers, which the matcher then consumes run by run.
#[derive(Debug, Default, Clone)]
struct AddImageScratch {
    /// In-range detection indices, stably sorted by class.
    det_idx: Vec<u32>,
    /// Detections gathered contiguously by class, input order preserved.
    dets_buf: Vec<Detection>,
    /// In-range ground-truth indices, stably sorted by class.
    gt_idx: Vec<u32>,
    /// Ground truths gathered contiguously by class, input order preserved.
    gts_buf: Vec<GroundTruth>,
    match_scratch: MatchScratch,
    match_out: ImageMatch,
}

/// What one image contributed to a [`MapEvaluator`]: per-class spans of the
/// appended `(score, is_tp)` records plus per-class ground-truth counts.
///
/// Produced by [`MapEvaluator::add_image_recording`] and replayed into
/// another evaluator with [`MapEvaluator::replay_contribution`]. The
/// end-to-end harness uses this to build the routed ("final") evaluator
/// from the per-model evaluators' already-matched records instead of
/// matching every routed image a second time.
#[derive(Debug, Default, Clone)]
pub struct ImageContribution {
    /// `(class index, record start, record end)` in the source evaluator.
    spans: Vec<(u32, u32, u32)>,
    /// `(class index, non-difficult ground truths added)`.
    gt_added: Vec<(u32, u32)>,
}

impl ImageContribution {
    /// Creates an empty contribution (reusable across
    /// [`MapEvaluator::add_image_recording`] calls).
    pub fn new() -> Self {
        Self::default()
    }

    fn clear(&mut self) {
        self.spans.clear();
        self.gt_added.clear();
    }
}

impl MapEvaluator {
    /// Creates an evaluator for `num_classes` classes at IoU threshold 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn new(num_classes: usize, protocol: ApProtocol) -> Self {
        Self::with_iou(num_classes, protocol, 0.5)
    }

    /// Creates an evaluator with a custom IoU threshold.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or the threshold is outside `[0, 1]`.
    pub fn with_iou(num_classes: usize, protocol: ApProtocol, iou_threshold: f64) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(
            (0.0..=1.0).contains(&iou_threshold),
            "iou threshold must be in [0, 1]"
        );
        MapEvaluator {
            iou_threshold,
            protocol,
            records: vec![Vec::new(); num_classes],
            gt_counts: vec![0; num_classes],
            images_seen: 0,
            sorted: RefCell::new(Vec::new()),
            sorted_valid: Cell::new(false),
            scratch: AddImageScratch::default(),
        }
    }

    /// Number of classes being evaluated.
    pub fn num_classes(&self) -> usize {
        self.records.len()
    }

    /// Number of images accumulated so far.
    pub fn images_seen(&self) -> usize {
        self.images_seen
    }

    /// Accumulates one image's detections against its ground truths.
    ///
    /// Detections or ground truths whose class index is out of range are
    /// ignored (they belong to a different taxonomy).
    ///
    /// Internally this is one stable index sort by class into reusable
    /// class-contiguous buffers followed by a scratch-backed matching pass
    /// per occupied class — after warmup it allocates only when a class's
    /// record vector grows.
    pub fn add_image(&mut self, dets: &ImageDetections, gts: &[GroundTruth]) {
        self.add_image_impl(dets, gts, None);
    }

    /// [`add_image`](Self::add_image) that also records *what* was appended
    /// into `contrib` (cleared first), for later
    /// [`replay_contribution`](Self::replay_contribution) into another
    /// evaluator. Accumulation is identical to `add_image`.
    pub fn add_image_recording(
        &mut self,
        dets: &ImageDetections,
        gts: &[GroundTruth],
        contrib: &mut ImageContribution,
    ) {
        self.add_image_impl(dets, gts, Some(contrib));
    }

    /// Replays one image's contribution measured on `src` into `self`,
    /// copying the already-matched records instead of re-running matching.
    ///
    /// Equivalent to the `add_image(dets, gts)` call that produced `contrib`
    /// on `src` — matching is deterministic, so the copied records are
    /// exactly what re-matching would append.
    ///
    /// # Panics
    ///
    /// Panics if the evaluators' class counts or IoU thresholds differ (the
    /// contribution would not describe the same matching).
    pub fn replay_contribution(&mut self, src: &MapEvaluator, contrib: &ImageContribution) {
        assert_eq!(
            self.records.len(),
            src.records.len(),
            "replay requires identical class counts"
        );
        assert_eq!(
            self.iou_threshold.to_bits(),
            src.iou_threshold.to_bits(),
            "replay requires identical IoU thresholds"
        );
        self.images_seen += 1;
        self.sorted_valid.set(false);
        for &(c, start, end) in &contrib.spans {
            self.records[c as usize]
                .extend_from_slice(&src.records[c as usize][start as usize..end as usize]);
        }
        for &(c, added) in &contrib.gt_added {
            self.gt_counts[c as usize] += added as usize;
        }
    }

    fn add_image_impl(
        &mut self,
        dets: &ImageDetections,
        gts: &[GroundTruth],
        mut contrib: Option<&mut ImageContribution>,
    ) {
        self.images_seen += 1;
        self.sorted_valid.set(false);
        if let Some(c) = contrib.as_deref_mut() {
            c.clear();
        }
        let n = self.records.len();
        let s = &mut self.scratch;
        let all_dets = dets.as_slice();

        // Stable sort by class preserves input order within each class,
        // matching the old grouped layout.
        s.det_idx.clear();
        s.det_idx.extend(
            all_dets
                .iter()
                .enumerate()
                .filter(|(_, d)| d.class().index() < n)
                .map(|(i, _)| i as u32),
        );
        s.det_idx.sort_by_key(|&i| all_dets[i as usize].class());
        s.dets_buf.clear();
        s.dets_buf
            .extend(s.det_idx.iter().map(|&i| all_dets[i as usize]));

        s.gt_idx.clear();
        s.gt_idx.extend(
            gts.iter()
                .enumerate()
                .filter(|(_, g)| g.class().index() < n)
                .map(|(i, _)| i as u32),
        );
        s.gt_idx.sort_by_key(|&i| gts[i as usize].class());
        s.gts_buf.clear();
        s.gts_buf.extend(s.gt_idx.iter().map(|&i| gts[i as usize]));

        // Walk the merged class runs in ascending class order (classes
        // absent from the image contribute nothing, exactly as before).
        let (mut di, mut gi) = (0usize, 0usize);
        while di < s.dets_buf.len() || gi < s.gts_buf.len() {
            let next_det_class = s.dets_buf.get(di).map(|d| d.class());
            let next_gt_class = s.gts_buf.get(gi).map(|g| g.class());
            let class = match (next_det_class, next_gt_class) {
                (Some(d), Some(g)) => d.min(g),
                (Some(d), None) => d,
                (None, Some(g)) => g,
                (None, None) => unreachable!("loop condition"),
            };
            let mut de = di;
            while de < s.dets_buf.len() && s.dets_buf[de].class() == class {
                de += 1;
            }
            let mut ge = gi;
            while ge < s.gts_buf.len() && s.gts_buf[ge].class() == class {
                ge += 1;
            }
            let class_dets = &s.dets_buf[di..de];
            let class_gts = &s.gts_buf[gi..ge];
            let c = class.index();

            let gt_add = class_gts.iter().filter(|g| !g.is_difficult()).count();
            self.gt_counts[c] += gt_add;
            if gt_add > 0 {
                if let Some(contrib) = contrib.as_deref_mut() {
                    contrib.gt_added.push((c as u32, gt_add as u32));
                }
            }

            if !class_dets.is_empty() {
                match_greedy_into(
                    class_dets,
                    class_gts,
                    self.iou_threshold,
                    &mut s.match_scratch,
                    &mut s.match_out,
                );
                let start = self.records[c].len();
                for (d, outcome) in class_dets.iter().zip(&s.match_out.outcomes) {
                    match outcome {
                        crate::MatchOutcome::TruePositive { .. } => {
                            self.records[c].push((d.score(), true));
                        }
                        crate::MatchOutcome::FalsePositive => {
                            self.records[c].push((d.score(), false));
                        }
                        crate::MatchOutcome::IgnoredDifficult => {}
                    }
                }
                let end = self.records[c].len();
                if end > start {
                    if let Some(contrib) = contrib.as_deref_mut() {
                        contrib.spans.push((c as u32, start as u32, end as u32));
                    }
                }
            }
            di = de;
            gi = ge;
        }
    }

    /// Returns the per-class records sorted by descending score, rebuilding
    /// the cache if accumulation happened since the last call.
    fn sorted_records(&self) -> Ref<'_, Vec<Vec<(f64, bool)>>> {
        if !self.sorted_valid.get() {
            let mut sorted = self.sorted.borrow_mut();
            sorted.resize_with(self.records.len(), Vec::new);
            for (dst, src) in sorted.iter_mut().zip(&self.records) {
                dst.clear();
                dst.extend_from_slice(src);
                // Stable integer-key sort: same permutation as a descending
                // `partial_cmp` sort on the (non-negative) scores.
                dst.sort_by_key(|r| std::cmp::Reverse(crate::det::score_sort_key(r.0)));
            }
            self.sorted_valid.set(true);
        }
        self.sorted.borrow()
    }

    /// Computes the PR curve for one class (descending score order).
    pub fn pr_curve(&self, class: ClassId) -> Vec<PrPoint> {
        let c = class.index();
        assert!(c < self.records.len(), "class out of range");
        let sorted = self.sorted_records();
        let mut points = Vec::with_capacity(sorted[c].len());
        pr_points_into(self.gt_counts[c], &sorted[c], &mut points);
        points
    }

    /// AP for one class under the configured protocol.
    pub fn class_ap(&self, class: ClassId) -> f64 {
        let points = self.pr_curve(class);
        let mut aux = Vec::new();
        ap_from_points(self.protocol, &points, &mut aux)
    }

    /// Evaluates mAP over all classes with at least one ground truth.
    ///
    /// Classes with zero ground truths are skipped (they would be undefined);
    /// if *all* classes are empty the mAP is 0.
    ///
    /// One sorted-record pass plus two reused buffers serve every class;
    /// per-class output is identical to calling [`class_ap`](Self::class_ap).
    pub fn evaluate(&self) -> MapReport {
        let sorted = self.sorted_records();
        let mut points_buf: Vec<PrPoint> = Vec::new();
        let mut aux: Vec<f64> = Vec::new();
        let mut per_class = Vec::with_capacity(self.records.len());
        let mut sum = 0.0;
        let mut counted = 0usize;
        for c in 0..self.records.len() {
            let id = ClassId(c as u16);
            let ap = if self.gt_counts[c] > 0 {
                pr_points_into(self.gt_counts[c], &sorted[c], &mut points_buf);
                ap_from_points(self.protocol, &points_buf, &mut aux)
            } else {
                0.0
            };
            if self.gt_counts[c] > 0 {
                sum += ap;
                counted += 1;
            }
            per_class.push(ClassAp {
                class: id,
                ap,
                num_gt: self.gt_counts[c],
                num_dets: self.records[c].len(),
            });
        }
        let map = if counted == 0 {
            0.0
        } else {
            sum / counted as f64
        };
        MapReport { per_class, map }
    }
}

/// Builds the PR points for one class from its score-sorted records.
fn pr_points_into(num_gt: usize, recs: &[(f64, bool)], out: &mut Vec<PrPoint>) {
    out.clear();
    out.reserve(recs.len());
    let mut tp = 0usize;
    let mut fp = 0usize;
    for &(score, is_tp) in recs {
        if is_tp {
            tp += 1;
        } else {
            fp += 1;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = if num_gt == 0 {
            0.0
        } else {
            tp as f64 / num_gt as f64
        };
        out.push(PrPoint {
            precision,
            recall,
            score,
        });
    }
}

/// AP under `protocol`, reusing `aux` as working storage.
fn ap_from_points(protocol: ApProtocol, points: &[PrPoint], aux: &mut Vec<f64>) -> f64 {
    match protocol {
        ApProtocol::Voc07ElevenPoint => eleven_point_ap(points, aux),
        ApProtocol::AllPoint => all_point_ap(points, aux),
    }
}

/// VOC2007 11-point interpolated AP.
///
/// Recall is non-decreasing along `points`, so "max precision among points
/// with recall ≥ r" is a suffix maximum: one right-to-left pass fills
/// `suffix_max` and each grid point is a binary search plus a lookup.
/// `f64::max` over a set of finite, non-negative values is
/// order-independent, so this equals the original filter-and-fold scan
/// bit for bit (proven against the oracle in the equivalence tests).
fn eleven_point_ap(points: &[PrPoint], suffix_max: &mut Vec<f64>) -> f64 {
    suffix_max.clear();
    suffix_max.resize(points.len() + 1, 0.0);
    for i in (0..points.len()).rev() {
        suffix_max[i] = points[i].precision.max(suffix_max[i + 1]);
    }
    let mut ap = 0.0;
    for i in 0..=10 {
        let r = i as f64 / 10.0;
        let idx = points.partition_point(|p| p.recall < r - 1e-12);
        ap += suffix_max[idx];
    }
    ap / 11.0
}

/// Continuous (all-point) interpolated AP: area under the monotonised
/// curve. `mono` is reused storage for the monotonised precisions.
fn all_point_ap(points: &[PrPoint], mono: &mut Vec<f64>) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    // Precision monotonised from the right.
    mono.clear();
    mono.extend(points.iter().map(|p| p.precision));
    for i in (0..mono.len().saturating_sub(1)).rev() {
        mono[i] = mono[i].max(mono[i + 1]);
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for (point, &p) in points.iter().zip(mono.iter()) {
        let r = point.recall;
        if r > prev_recall {
            ap += (r - prev_recall) * p;
            prev_recall = r;
        }
    }
    ap
}

#[cfg(test)]
pub(crate) mod reference {
    //! The pre-refactor `MapEvaluator` accumulation/PR-curve logic, kept
    //! verbatim (over the oracle matcher) for equivalence testing.

    use super::{ApProtocol, ClassAp, MapReport, PrPoint};
    use crate::matching::reference::match_greedy;
    use crate::{ClassId, Detection, GroundTruth, ImageDetections};

    fn eleven_point_ap(points: &[PrPoint]) -> f64 {
        let mut ap = 0.0;
        for i in 0..=10 {
            let r = i as f64 / 10.0;
            let p_max = points
                .iter()
                .filter(|p| p.recall >= r - 1e-12)
                .map(|p| p.precision)
                .fold(0.0, f64::max);
            ap += p_max;
        }
        ap / 11.0
    }

    fn all_point_ap(points: &[PrPoint]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        let mut rp: Vec<(f64, f64)> = points.iter().map(|p| (p.recall, p.precision)).collect();
        for i in (0..rp.len().saturating_sub(1)).rev() {
            rp[i].1 = rp[i].1.max(rp[i + 1].1);
        }
        let mut ap = 0.0;
        let mut prev_recall = 0.0;
        for (r, p) in rp {
            if r > prev_recall {
                ap += (r - prev_recall) * p;
                prev_recall = r;
            }
        }
        ap
    }

    #[derive(Debug, Clone)]
    pub struct MapEvaluator {
        iou_threshold: f64,
        protocol: ApProtocol,
        records: Vec<Vec<(f64, bool)>>,
        gt_counts: Vec<usize>,
    }

    impl MapEvaluator {
        pub fn with_iou(num_classes: usize, protocol: ApProtocol, iou_threshold: f64) -> Self {
            MapEvaluator {
                iou_threshold,
                protocol,
                records: vec![Vec::new(); num_classes],
                gt_counts: vec![0; num_classes],
            }
        }

        pub fn add_image(&mut self, dets: &ImageDetections, gts: &[GroundTruth]) {
            let n = self.records.len();
            let mut dets_by_class: Vec<Vec<Detection>> = vec![Vec::new(); n];
            for d in dets.iter() {
                if d.class().index() < n {
                    dets_by_class[d.class().index()].push(*d);
                }
            }
            let mut gts_by_class: Vec<Vec<GroundTruth>> = vec![Vec::new(); n];
            for g in gts {
                if g.class().index() < n {
                    gts_by_class[g.class().index()].push(*g);
                }
            }
            for c in 0..n {
                let class_dets = &dets_by_class[c];
                let class_gts = &gts_by_class[c];
                self.gt_counts[c] += class_gts.iter().filter(|g| !g.is_difficult()).count();
                if class_dets.is_empty() {
                    continue;
                }
                let m = match_greedy(class_dets, class_gts, self.iou_threshold);
                for (d, outcome) in class_dets.iter().zip(&m.outcomes) {
                    match outcome {
                        crate::MatchOutcome::TruePositive { .. } => {
                            self.records[c].push((d.score(), true));
                        }
                        crate::MatchOutcome::FalsePositive => {
                            self.records[c].push((d.score(), false));
                        }
                        crate::MatchOutcome::IgnoredDifficult => {}
                    }
                }
            }
        }

        pub fn pr_curve(&self, class: ClassId) -> Vec<PrPoint> {
            let c = class.index();
            let num_gt = self.gt_counts[c];
            let mut recs = self.records[c].clone();
            recs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
            let mut tp = 0usize;
            let mut fp = 0usize;
            let mut points = Vec::with_capacity(recs.len());
            for (score, is_tp) in recs {
                if is_tp {
                    tp += 1;
                } else {
                    fp += 1;
                }
                let precision = tp as f64 / (tp + fp) as f64;
                let recall = if num_gt == 0 {
                    0.0
                } else {
                    tp as f64 / num_gt as f64
                };
                points.push(PrPoint {
                    precision,
                    recall,
                    score,
                });
            }
            points
        }

        pub fn class_ap(&self, class: ClassId) -> f64 {
            let points = self.pr_curve(class);
            match self.protocol {
                ApProtocol::Voc07ElevenPoint => eleven_point_ap(&points),
                ApProtocol::AllPoint => all_point_ap(&points),
            }
        }

        pub fn evaluate(&self) -> MapReport {
            let mut per_class = Vec::with_capacity(self.records.len());
            let mut sum = 0.0;
            let mut counted = 0usize;
            for c in 0..self.records.len() {
                let id = ClassId(c as u16);
                let ap = if self.gt_counts[c] > 0 {
                    self.class_ap(id)
                } else {
                    0.0
                };
                if self.gt_counts[c] > 0 {
                    sum += ap;
                    counted += 1;
                }
                per_class.push(ClassAp {
                    class: id,
                    ap,
                    num_gt: self.gt_counts[c],
                    num_dets: self.records[c].len(),
                });
            }
            let map = if counted == 0 {
                0.0
            } else {
                sum / counted as f64
            };
            MapReport { per_class, map }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BBox;

    fn det(c: u16, score: f64, x0: f64, y0: f64, x1: f64, y1: f64) -> Detection {
        Detection::new(ClassId(c), score, BBox::new(x0, y0, x1, y1).unwrap())
    }

    fn gt(c: u16, x0: f64, y0: f64, x1: f64, y1: f64) -> GroundTruth {
        GroundTruth::new(ClassId(c), BBox::new(x0, y0, x1, y1).unwrap())
    }

    #[test]
    fn perfect_detection_gives_map_one() {
        for protocol in [ApProtocol::Voc07ElevenPoint, ApProtocol::AllPoint] {
            let mut ev = MapEvaluator::new(1, protocol);
            ev.add_image(
                &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.5, 0.5)]),
                &[gt(0, 0.0, 0.0, 0.5, 0.5)],
            );
            let r = ev.evaluate();
            assert!((r.map - 1.0).abs() < 1e-9, "protocol {protocol:?}");
        }
    }

    #[test]
    fn no_detections_gives_zero() {
        let mut ev = MapEvaluator::new(1, ApProtocol::Voc07ElevenPoint);
        ev.add_image(&ImageDetections::new(), &[gt(0, 0.0, 0.0, 0.5, 0.5)]);
        assert_eq!(ev.evaluate().map, 0.0);
    }

    #[test]
    fn all_fp_gives_zero() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.6, 0.6, 0.9, 0.9)]),
            &[gt(0, 0.0, 0.0, 0.3, 0.3)],
        );
        assert_eq!(ev.evaluate().map, 0.0);
    }

    #[test]
    fn half_detected_eleven_point() {
        // Two objects, one detected perfectly: recall tops out at 0.5 with
        // precision 1 => 11-pt AP = 6/11 (recall points 0.0..0.5).
        let mut ev = MapEvaluator::new(1, ApProtocol::Voc07ElevenPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4), gt(0, 0.6, 0.6, 0.9, 0.9)],
        );
        let r = ev.evaluate();
        assert!((r.map - 6.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn half_detected_all_point() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4), gt(0, 0.6, 0.6, 0.9, 0.9)],
        );
        let r = ev.evaluate();
        assert!((r.map - 0.5).abs() < 1e-9);
    }

    #[test]
    fn map_averages_over_classes_with_gt_only() {
        let mut ev = MapEvaluator::new(3, ApProtocol::AllPoint);
        // class 0 perfect, class 1 missed, class 2 has no gt at all
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4), gt(1, 0.6, 0.6, 0.9, 0.9)],
        );
        let r = ev.evaluate();
        assert!((r.map - 0.5).abs() < 1e-9, "mean of AP(1.0) and AP(0.0)");
        assert_eq!(r.per_class.len(), 3);
        assert_eq!(r.per_class[2].num_gt, 0);
    }

    #[test]
    fn fp_before_tp_lowers_ap() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![
                det(0, 0.95, 0.6, 0.6, 0.9, 0.9), // FP at higher score
                det(0, 0.80, 0.0, 0.0, 0.4, 0.4), // TP
            ]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4)],
        );
        let r = ev.evaluate();
        assert!((r.map - 0.5).abs() < 1e-9, "precision at recall 1 is 1/2");
    }

    #[test]
    fn difficult_gt_not_in_denominator() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        let gts = vec![
            GroundTruth::new(ClassId(0), BBox::new(0.0, 0.0, 0.4, 0.4).unwrap()),
            GroundTruth::new_difficult(ClassId(0), BBox::new(0.6, 0.6, 0.9, 0.9).unwrap()),
        ];
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            &gts,
        );
        let r = ev.evaluate();
        assert!((r.map - 1.0).abs() < 1e-9);
        assert_eq!(r.per_class[0].num_gt, 1);
    }

    #[test]
    fn pr_curve_monotone_recall() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![
                det(0, 0.9, 0.0, 0.0, 0.4, 0.4),
                det(0, 0.8, 0.6, 0.6, 0.9, 0.9),
                det(0, 0.7, 0.1, 0.5, 0.3, 0.9),
            ]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4), gt(0, 0.6, 0.6, 0.9, 0.9)],
        );
        let pr = ev.pr_curve(ClassId(0));
        assert_eq!(pr.len(), 3);
        assert!(pr.windows(2).all(|w| w[0].recall <= w[1].recall));
    }

    #[test]
    fn streaming_matches_batch() {
        // Adding images one by one equals adding them in another order.
        let img1 = (
            ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            vec![gt(0, 0.0, 0.0, 0.4, 0.4)],
        );
        let img2 = (
            ImageDetections::from_vec(vec![det(0, 0.3, 0.5, 0.5, 0.9, 0.9)]),
            vec![gt(0, 0.5, 0.5, 0.9, 0.9), gt(0, 0.0, 0.5, 0.2, 0.9)],
        );
        let mut a = MapEvaluator::new(1, ApProtocol::AllPoint);
        a.add_image(&img1.0, &img1.1);
        a.add_image(&img2.0, &img2.1);
        let mut b = MapEvaluator::new(1, ApProtocol::AllPoint);
        b.add_image(&img2.0, &img2.1);
        b.add_image(&img1.0, &img1.1);
        assert!((a.evaluate().map - b.evaluate().map).abs() < 1e-12);
        assert_eq!(a.images_seen(), 2);
    }

    #[test]
    fn interleaved_queries_match_reference() {
        // pr_curve/evaluate between add_image calls must see exactly what a
        // fresh (reference) evaluator would, despite the sorted-record cache.
        let images = [
            (
                ImageDetections::from_vec(vec![
                    det(0, 0.9, 0.0, 0.0, 0.4, 0.4),
                    det(0, 0.9, 0.41, 0.0, 0.8, 0.4), // tied score
                    det(1, 0.3, 0.5, 0.5, 0.9, 0.9),
                ]),
                vec![gt(0, 0.0, 0.0, 0.4, 0.4), gt(1, 0.5, 0.5, 0.9, 0.9)],
            ),
            (
                ImageDetections::from_vec(vec![det(1, 0.3, 0.1, 0.5, 0.3, 0.9)]),
                vec![gt(1, 0.1, 0.5, 0.3, 0.9), gt(0, 0.6, 0.1, 0.9, 0.4)],
            ),
        ];
        for protocol in [ApProtocol::Voc07ElevenPoint, ApProtocol::AllPoint] {
            let mut ours = MapEvaluator::new(2, protocol);
            let mut oracle = reference::MapEvaluator::with_iou(2, protocol, 0.5);
            for (dets, gts) in &images {
                ours.add_image(dets, gts);
                oracle.add_image(dets, gts);
                for c in 0..2 {
                    assert_eq!(ours.pr_curve(ClassId(c)), oracle.pr_curve(ClassId(c)));
                    assert_eq!(
                        ours.class_ap(ClassId(c)).to_bits(),
                        oracle.class_ap(ClassId(c)).to_bits()
                    );
                }
                assert_eq!(ours.evaluate(), oracle.evaluate());
            }
        }
    }

    #[test]
    fn clone_preserves_state() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4)],
        );
        let snapshot = ev.clone();
        assert_eq!(snapshot.evaluate(), ev.evaluate());
        // The clone keeps accumulating independently.
        ev.add_image(&ImageDetections::new(), &[gt(0, 0.5, 0.5, 0.9, 0.9)]);
        assert!(ev.evaluate().map < snapshot.evaluate().map);
    }

    #[test]
    fn map_percent_scales() {
        let mut ev = MapEvaluator::new(1, ApProtocol::AllPoint);
        ev.add_image(
            &ImageDetections::from_vec(vec![det(0, 0.9, 0.0, 0.0, 0.4, 0.4)]),
            &[gt(0, 0.0, 0.0, 0.4, 0.4)],
        );
        assert!((ev.evaluate().map_percent() - 100.0).abs() < 1e-9);
    }
}
