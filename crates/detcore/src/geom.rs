//! Axis-aligned bounding-box geometry in normalised image coordinates.
//!
//! All boxes live in `[0, 1] × [0, 1]` with the origin at the top-left corner,
//! matching the convention used by SSD-style detectors (and by the paper's
//! Fig. 6, where each box is `[score, x_min, y_min, x_max, y_max]`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned bounding box in normalised `[0, 1]` image coordinates.
///
/// Invariant: `x_min <= x_max` and `y_min <= y_max`; all coordinates are
/// finite. Construct via [`BBox::new`] (validating) or [`BBox::from_corners`]
/// (normalising, swaps corners if needed).
///
/// # Examples
///
/// ```
/// use detcore::BBox;
///
/// let a = BBox::new(0.0, 0.0, 0.5, 0.5).unwrap();
/// let b = BBox::new(0.25, 0.25, 0.75, 0.75).unwrap();
/// assert!((a.iou(&b) - 1.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    x_min: f64,
    y_min: f64,
    x_max: f64,
    y_max: f64,
}

/// Error returned when constructing an invalid [`BBox`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BBoxError {
    /// A coordinate was NaN or infinite.
    NonFinite,
    /// `x_min > x_max` or `y_min > y_max`.
    Inverted,
}

impl fmt::Display for BBoxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BBoxError::NonFinite => write!(f, "bounding box coordinate was not finite"),
            BBoxError::Inverted => write!(f, "bounding box min corner exceeds max corner"),
        }
    }
}

impl std::error::Error for BBoxError {}

impl BBox {
    /// Creates a box from `(x_min, y_min, x_max, y_max)`.
    ///
    /// # Errors
    ///
    /// Returns [`BBoxError::NonFinite`] if any coordinate is NaN/infinite and
    /// [`BBoxError::Inverted`] if a min coordinate exceeds its max.
    pub fn new(x_min: f64, y_min: f64, x_max: f64, y_max: f64) -> Result<Self, BBoxError> {
        if !(x_min.is_finite() && y_min.is_finite() && x_max.is_finite() && y_max.is_finite()) {
            return Err(BBoxError::NonFinite);
        }
        if x_min > x_max || y_min > y_max {
            return Err(BBoxError::Inverted);
        }
        Ok(BBox {
            x_min,
            y_min,
            x_max,
            y_max,
        })
    }

    /// Creates a box from two arbitrary corners, swapping them as needed.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is not finite.
    pub fn from_corners(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(
            x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite(),
            "bbox corners must be finite"
        );
        BBox {
            x_min: x0.min(x1),
            y_min: y0.min(y1),
            x_max: x0.max(x1),
            y_max: y0.max(y1),
        }
    }

    /// Creates a box from a centre point and full width/height.
    ///
    /// # Panics
    ///
    /// Panics if `w < 0` or `h < 0` or any input is not finite.
    pub fn from_center(cx: f64, cy: f64, w: f64, h: f64) -> Self {
        assert!(w >= 0.0 && h >= 0.0, "width/height must be non-negative");
        Self::from_corners(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0)
    }

    /// The unit box covering the whole image.
    pub const fn unit() -> Self {
        BBox {
            x_min: 0.0,
            y_min: 0.0,
            x_max: 1.0,
            y_max: 1.0,
        }
    }

    /// Left edge.
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// Top edge.
    pub fn y_min(&self) -> f64 {
        self.y_min
    }

    /// Right edge.
    pub fn x_max(&self) -> f64 {
        self.x_max
    }

    /// Bottom edge.
    pub fn y_max(&self) -> f64 {
        self.y_max
    }

    /// Box width (`>= 0`).
    pub fn width(&self) -> f64 {
        self.x_max - self.x_min
    }

    /// Box height (`>= 0`).
    pub fn height(&self) -> f64 {
        self.y_max - self.y_min
    }

    /// Centre point `(cx, cy)`.
    pub fn center(&self) -> (f64, f64) {
        (
            (self.x_min + self.x_max) / 2.0,
            (self.y_min + self.y_max) / 2.0,
        )
    }

    /// Area of the box. For normalised boxes this equals the *area ratio* of
    /// the box with respect to the whole image — the quantity the paper's
    /// discriminator thresholds (`t_area = 0.31`).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Returns `true` if the box has zero width or height.
    pub fn is_empty(&self) -> bool {
        self.width() == 0.0 || self.height() == 0.0
    }

    /// Intersection box, if the boxes overlap (possibly degenerately).
    pub fn intersection(&self, other: &BBox) -> Option<BBox> {
        let x_min = self.x_min.max(other.x_min);
        let y_min = self.y_min.max(other.y_min);
        let x_max = self.x_max.min(other.x_max);
        let y_max = self.y_max.min(other.y_max);
        if x_min <= x_max && y_min <= y_max {
            Some(BBox {
                x_min,
                y_min,
                x_max,
                y_max,
            })
        } else {
            None
        }
    }

    /// Area of the intersection with `other` (zero when disjoint).
    pub fn intersection_area(&self, other: &BBox) -> f64 {
        let w = (self.x_max.min(other.x_max) - self.x_min.max(other.x_min)).max(0.0);
        let h = (self.y_max.min(other.y_max) - self.y_min.max(other.y_min)).max(0.0);
        w * h
    }

    /// Intersection-over-union with `other`, in `[0, 1]`.
    ///
    /// Defined as `0` when both boxes are degenerate (union area zero).
    pub fn iou(&self, other: &BBox) -> f64 {
        self.iou_with_areas(self.area(), other, other.area())
    }

    /// [`BBox::iou`] with both box areas supplied by the caller.
    ///
    /// The hot detection kernels ([`crate::nms`], [`crate::match_greedy`],
    /// [`crate::MapEvaluator`]) compare each box against many others; they
    /// precompute areas once per box and pass them here instead of
    /// recomputing `width * height` per pair. Bit-identical to [`BBox::iou`]
    /// when `self_area`/`other_area` equal the boxes' [`BBox::area`].
    #[inline]
    pub fn iou_with_areas(&self, self_area: f64, other: &BBox, other_area: f64) -> f64 {
        let inter = self.intersection_area(other);
        let union = self_area + other_area - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// The smallest box containing both `self` and `other`.
    pub fn union_hull(&self, other: &BBox) -> BBox {
        BBox {
            x_min: self.x_min.min(other.x_min),
            y_min: self.y_min.min(other.y_min),
            x_max: self.x_max.max(other.x_max),
            y_max: self.y_max.max(other.y_max),
        }
    }

    /// Clamps the box to the unit square `[0, 1] × [0, 1]`.
    pub fn clamp_unit(&self) -> BBox {
        BBox {
            x_min: self.x_min.clamp(0.0, 1.0),
            y_min: self.y_min.clamp(0.0, 1.0),
            x_max: self.x_max.clamp(0.0, 1.0),
            y_max: self.y_max.clamp(0.0, 1.0),
        }
    }

    /// Translates the box by `(dx, dy)` without clamping.
    ///
    /// # Panics
    ///
    /// Panics if `dx` or `dy` is not finite.
    pub fn translated(&self, dx: f64, dy: f64) -> BBox {
        assert!(dx.is_finite() && dy.is_finite());
        BBox {
            x_min: self.x_min + dx,
            y_min: self.y_min + dy,
            x_max: self.x_max + dx,
            y_max: self.y_max + dy,
        }
    }

    /// Scales width and height about the centre by `(sx, sy)`.
    ///
    /// # Panics
    ///
    /// Panics if `sx < 0` or `sy < 0`.
    pub fn scaled(&self, sx: f64, sy: f64) -> BBox {
        assert!(sx >= 0.0 && sy >= 0.0, "scale factors must be non-negative");
        let (cx, cy) = self.center();
        BBox::from_center(cx, cy, self.width() * sx, self.height() * sy)
    }

    /// Returns `true` if `(x, y)` lies inside (or on the border of) the box.
    pub fn contains_point(&self, x: f64, y: f64) -> bool {
        x >= self.x_min && x <= self.x_max && y >= self.y_min && y <= self.y_max
    }

    /// Returns `true` if `other` lies entirely inside `self`.
    pub fn contains_box(&self, other: &BBox) -> bool {
        other.x_min >= self.x_min
            && other.y_min >= self.y_min
            && other.x_max <= self.x_max
            && other.y_max <= self.y_max
    }

    /// Converts to pixel coordinates `(x0, y0, x1, y1)` for an image of the
    /// given dimensions, clamped to the image bounds.
    pub fn to_pixels(&self, width: usize, height: usize) -> (usize, usize, usize, usize) {
        let clamped = self.clamp_unit();
        let w = width as f64;
        let h = height as f64;
        let x0 = (clamped.x_min * w).floor() as usize;
        let y0 = (clamped.y_min * h).floor() as usize;
        let x1 = ((clamped.x_max * w).ceil() as usize).min(width);
        let y1 = ((clamped.y_max * h).ceil() as usize).min(height);
        (x0, y0, x1, y1)
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.4}, {:.4}, {:.4}, {:.4}]",
            self.x_min, self.y_min, self.x_max, self.y_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_inverted() {
        assert_eq!(BBox::new(0.5, 0.0, 0.4, 1.0), Err(BBoxError::Inverted));
        assert_eq!(BBox::new(0.0, 0.5, 1.0, 0.4), Err(BBoxError::Inverted));
    }

    #[test]
    fn new_rejects_non_finite() {
        assert_eq!(
            BBox::new(f64::NAN, 0.0, 1.0, 1.0),
            Err(BBoxError::NonFinite)
        );
        assert_eq!(
            BBox::new(0.0, 0.0, f64::INFINITY, 1.0),
            Err(BBoxError::NonFinite)
        );
    }

    #[test]
    fn from_corners_swaps() {
        let b = BBox::from_corners(0.8, 0.9, 0.1, 0.2);
        assert_eq!(b.x_min(), 0.1);
        assert_eq!(b.y_min(), 0.2);
        assert_eq!(b.x_max(), 0.8);
        assert_eq!(b.y_max(), 0.9);
    }

    #[test]
    fn area_and_center() {
        let b = BBox::new(0.2, 0.2, 0.6, 0.8).unwrap();
        assert!((b.area() - 0.24).abs() < 1e-12);
        let (cx, cy) = b.center();
        assert!((cx - 0.4).abs() < 1e-12);
        assert!((cy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn iou_identical_is_one() {
        let b = BBox::new(0.1, 0.1, 0.6, 0.6).unwrap();
        assert!((b.iou(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_with_areas_is_bit_identical() {
        let boxes = [
            BBox::new(0.0, 0.0, 0.5, 0.5).unwrap(),
            BBox::new(0.25, 0.25, 0.75, 0.75).unwrap(),
            BBox::new(0.3, 0.3, 0.3, 0.3).unwrap(), // degenerate
            BBox::new(0.9, 0.9, 1.0, 1.0).unwrap(), // disjoint from first
        ];
        for a in &boxes {
            for b in &boxes {
                let reference = a.iou(b);
                let fast = a.iou_with_areas(a.area(), b, b.area());
                assert_eq!(reference.to_bits(), fast.to_bits());
            }
        }
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = BBox::new(0.0, 0.0, 0.2, 0.2).unwrap();
        let b = BBox::new(0.5, 0.5, 0.9, 0.9).unwrap();
        assert_eq!(a.iou(&b), 0.0);
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn iou_touching_edges_is_zero() {
        let a = BBox::new(0.0, 0.0, 0.5, 0.5).unwrap();
        let b = BBox::new(0.5, 0.0, 1.0, 0.5).unwrap();
        assert_eq!(a.iou(&b), 0.0);
        // Degenerate shared edge still yields an (empty) intersection box.
        assert!(a.intersection(&b).is_some());
        assert!(a.intersection(&b).unwrap().is_empty());
    }

    #[test]
    fn iou_known_value() {
        // quarter overlap: inter = 0.25*0.25 isn't the case here; compute:
        let a = BBox::new(0.0, 0.0, 0.5, 0.5).unwrap();
        let b = BBox::new(0.25, 0.25, 0.75, 0.75).unwrap();
        // inter = 0.25^2 = 0.0625; union = 0.25 + 0.25 - 0.0625 = 0.4375
        assert!((a.iou(&b) - 0.0625 / 0.4375).abs() < 1e-12);
    }

    #[test]
    fn degenerate_boxes_iou_zero() {
        let p = BBox::new(0.3, 0.3, 0.3, 0.3).unwrap();
        assert_eq!(p.iou(&p), 0.0);
        assert!(p.is_empty());
    }

    #[test]
    fn union_hull_contains_both() {
        let a = BBox::new(0.0, 0.0, 0.2, 0.2).unwrap();
        let b = BBox::new(0.5, 0.6, 0.9, 0.9).unwrap();
        let u = a.union_hull(&b);
        assert!(u.contains_box(&a));
        assert!(u.contains_box(&b));
    }

    #[test]
    fn clamp_unit_clamps() {
        let b = BBox::from_corners(-0.5, -0.5, 1.5, 0.5).clamp_unit();
        assert_eq!(b.x_min(), 0.0);
        assert_eq!(b.y_min(), 0.0);
        assert_eq!(b.x_max(), 1.0);
        assert_eq!(b.y_max(), 0.5);
    }

    #[test]
    fn to_pixels_round_trip_bounds() {
        let b = BBox::new(0.1, 0.2, 0.9, 0.8).unwrap();
        let (x0, y0, x1, y1) = b.to_pixels(300, 300);
        assert_eq!((x0, y0), (30, 60));
        assert_eq!((x1, y1), (270, 240));
    }

    #[test]
    fn scaled_preserves_center() {
        let b = BBox::new(0.2, 0.2, 0.6, 0.6).unwrap();
        let s = b.scaled(0.5, 2.0);
        let (cx, cy) = b.center();
        let (sx, sy) = s.center();
        assert!((cx - sx).abs() < 1e-12);
        assert!((cy - sy).abs() < 1e-12);
        assert!((s.width() - b.width() * 0.5).abs() < 1e-12);
        assert!((s.height() - b.height() * 2.0).abs() < 1e-12);
    }

    #[test]
    fn contains_point_edges() {
        let b = BBox::new(0.25, 0.25, 0.75, 0.75).unwrap();
        assert!(b.contains_point(0.25, 0.25));
        assert!(b.contains_point(0.75, 0.75));
        assert!(!b.contains_point(0.24, 0.5));
    }
}
