//! Property-based tests for architecture analysis and detector behaviour.

use datagen::{DatasetProfile, Scene, SplitId};
use modelzoo::{
    mobilenet_v1_ssd, Capability, Detector, Layer, ModelKind, Network, PartitionAnalysis,
    SimDetector, TensorShape,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_flops_scale_with_channels(
        c_in in 1usize..64,
        c_out in 1usize..64,
        size in 8usize..64,
        k in prop::sample::select(vec![1usize, 3, 5]),
    ) {
        let input = TensorShape::new(c_in, size, size);
        let conv = Layer::Conv2d { out_channels: c_out, kernel: k, stride: 1 };
        let doubled = Layer::Conv2d { out_channels: c_out * 2, kernel: k, stride: 1 };
        prop_assert_eq!(doubled.flops(input), 2 * conv.flops(input));
        // params scale similarly up to the bias term
        let p1 = conv.params(input) - c_out as u64;
        let p2 = doubled.params(input) - 2 * c_out as u64;
        prop_assert_eq!(p2, 2 * p1);
    }

    #[test]
    fn width_multiplier_is_monotone(a in 0.2f64..1.4, bump in 0.05f64..0.3) {
        let narrow = mobilenet_v1_ssd(20, a);
        let wide = mobilenet_v1_ssd(20, (a + bump).min(1.5));
        prop_assert!(wide.total_params() >= narrow.total_params());
        prop_assert!(wide.total_flops() >= narrow.total_flops());
    }

    #[test]
    fn p_detect_monotone_in_every_factor(
        area in 1e-4f64..0.9,
        n in 1usize..30,
        d in 0.0f64..1.0,
        blur in 0.0f64..4.0,
    ) {
        for kind in ModelKind::ALL {
            let c = Capability::base(kind);
            let p = c.p_detect(area, n, d, blur);
            prop_assert!((0.0..=1.0).contains(&p));
            // monotone: bigger area helps, more clutter/difficulty/blur hurts
            prop_assert!(c.p_detect((area * 1.5).min(0.95), n, d, blur) >= p - 1e-12);
            prop_assert!(c.p_detect(area, n + 3, d, blur) <= p + 1e-12);
            prop_assert!(c.p_detect(area, n, (d + 0.1).min(1.0), blur) <= p + 1e-12);
            prop_assert!(c.p_detect(area, n, d, blur + 1.0) <= p + 1e-12);
        }
    }

    #[test]
    fn detector_output_is_well_formed(seed in any::<u64>(), id in 0u64..500) {
        let scene = Scene::sample(&DatasetProfile::voc(), seed, id);
        let det = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
        let out = det.detect(&scene);
        for d in out.iter() {
            prop_assert!(d.score() > 0.0 && d.score() < 1.0);
            prop_assert!(d.bbox().x_min() >= 0.0 && d.bbox().x_max() <= 1.0);
            prop_assert!(d.bbox().area() > 0.0);
            prop_assert!(d.class().index() < 20);
        }
        // bounded output: objects + sub-boxes + fps + noise are all capped
        prop_assert!(out.len() <= scene.num_objects() + 16);
    }

    #[test]
    fn partition_analysis_covers_all_trunk_layers(classes in 2usize..40) {
        let net = modelzoo::ssd300_vgg16(classes);
        let analysis = PartitionAnalysis::of(&net);
        prop_assert_eq!(analysis.splits.len(), net.trunk_layers().len());
        let last = analysis.splits.last().unwrap();
        // at the last split everything except heads has run on the device
        let trunk_total: u64 = net.trunk_layers().iter().map(|l| l.flops).sum();
        prop_assert_eq!(last.device_flops, trunk_total);
    }
}

#[test]
fn network_display_reports_every_layer() {
    let mut net = Network::new("t", TensorShape::new(3, 16, 16));
    net.push(
        "a",
        Layer::Conv2d {
            out_channels: 4,
            kernel: 3,
            stride: 1,
        },
    );
    net.push(
        "b",
        Layer::MaxPool {
            kernel: 2,
            stride: 2,
        },
    );
    let s = net.to_string();
    assert!(s.contains("a") && s.contains("b") && s.contains("total:"));
}
