fn main() {
    let big = modelzoo::ssd300_vgg16(20);
    println!(
        "SSD300:   {:>7.2} MB  {:>6.2} GFLOPs",
        big.size_mb(),
        big.gflops()
    );
    for (name, net) in [
        ("VGG-Lite", modelzoo::vgg_lite_ssd(20)),
        ("MNv1-SSD", modelzoo::mobilenet_v1_ssd_paper(20)),
        ("MNv2-SSD", modelzoo::mobilenet_v2_ssd_paper(20)),
    ] {
        println!(
            "{name}: {:>7.2} MB  {:>6.2} GFLOPs  pruned {:>5.2}%",
            net.size_mb(),
            net.gflops(),
            net.pruned_percent_vs(&big)
        );
    }
}
