//! Behavioural capability profiles for the simulated detectors.
//!
//! A [`Capability`] encodes *how a trained detector behaves* on scene
//! semantics: how detection probability falls with object area (small models
//! lose the 38×38 map and go blind to small objects), with scene clutter
//! (66 % fewer default boxes ⇒ multi-object misses), and with intrinsic
//! object difficulty. These are exactly the effects the paper's Fig. 4
//! attributes to the real models; the constants below are calibrated so the
//! published mAP/detected-object bands emerge from the synthetic datasets.

use datagen::SplitId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The model architectures evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Big model: SSD300 with VGG16 (Tables III–VIII).
    SsdVgg16,
    /// Small model 1: VGG-Lite + Conv6&7 (Sec. IV-B, Fig. 3).
    VggLiteSsd,
    /// Small model 2: MobileNetV1 base network.
    MobileNetV1Ssd,
    /// Small model 3: MobileNetV2 base network.
    MobileNetV2Ssd,
    /// Big model for Sec. VI-C: YOLOv4.
    YoloV4,
    /// Small model for Sec. VI-C: MobileNetV1 + reduced YOLO.
    YoloMobileNetV1,
}

impl ModelKind {
    /// All model kinds.
    pub const ALL: [ModelKind; 6] = [
        ModelKind::SsdVgg16,
        ModelKind::VggLiteSsd,
        ModelKind::MobileNetV1Ssd,
        ModelKind::MobileNetV2Ssd,
        ModelKind::YoloV4,
        ModelKind::YoloMobileNetV1,
    ];

    /// Human-readable name.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::SsdVgg16 => "SSD (VGG16)",
            ModelKind::VggLiteSsd => "small model 1 (VGG-Lite)",
            ModelKind::MobileNetV1Ssd => "small model 2 (MobileNetV1)",
            ModelKind::MobileNetV2Ssd => "small model 3 (MobileNetV2)",
            ModelKind::YoloV4 => "YOLOv4",
            ModelKind::YoloMobileNetV1 => "small YOLO (MobileNetV1)",
        }
    }

    /// Whether this is a cloud-side big model.
    pub fn is_big(&self) -> bool {
        matches!(self, ModelKind::SsdVgg16 | ModelKind::YoloV4)
    }

    /// A stable per-model seed component for deterministic simulation.
    pub fn seed_tag(&self) -> u64 {
        match self {
            ModelKind::SsdVgg16 => 0x55d0_0b16,
            ModelKind::VggLiteSsd => 0x116e_0001,
            ModelKind::MobileNetV1Ssd => 0x0b11_e001,
            ModelKind::MobileNetV2Ssd => 0x0b11_e002,
            ModelKind::YoloV4 => 0x1010_0004,
            ModelKind::YoloMobileNetV1 => 0x1010_0001,
        }
    }

    /// The static network description (for FLOPs / size / partition work).
    pub fn network(&self, num_classes: usize) -> crate::Network {
        match self {
            ModelKind::SsdVgg16 => crate::ssd300_vgg16(num_classes),
            ModelKind::VggLiteSsd => crate::vgg_lite_ssd(num_classes),
            ModelKind::MobileNetV1Ssd => crate::mobilenet_v1_ssd_paper(num_classes),
            ModelKind::MobileNetV2Ssd => crate::mobilenet_v2_ssd_paper(num_classes),
            ModelKind::YoloV4 => crate::yolov4(num_classes),
            ModelKind::YoloMobileNetV1 => crate::yolo_mobilenet_small(num_classes),
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Behavioural parameters of one trained detector on one data distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Capability {
    /// Peak detection probability for large, clear, isolated objects.
    pub quality: f64,
    /// Area ratio at which detection probability halves (small models have a
    /// much larger floor — no 38×38 feature map).
    pub area_floor: f64,
    /// Log-area sigmoid slope (smaller = sharper cut-off).
    pub area_slope: f64,
    /// Clutter decay rate: detection probability shrinks by
    /// `exp(-λ · max(0, N - clutter_onset))` in an `N`-object image.
    pub clutter_lambda: f64,
    /// Object count at which clutter starts to hurt.
    pub clutter_onset: usize,
    /// Sensitivity to intrinsic object difficulty (κ).
    pub difficulty_sens: f64,
    /// Additional miss probability per unit of camera blur sigma.
    pub blur_sens: f64,
    /// Localisation jitter as a fraction of box size.
    pub loc_jitter: f64,
    /// Score concentration: higher ⇒ confident (near-1) scores for hits.
    pub score_conc: f64,
    /// Probability that a *marginal* missed object still yields a
    /// sub-threshold box (the paper's dog at 0.2507).
    pub sub_box_prob: f64,
    /// Mean number of spurious noise boxes per image.
    pub noise_rate: f64,
    /// Probability that a detected object is assigned the wrong class.
    pub misclass_prob: f64,
    /// Mean number of *confident* false positives per image (duplicate or
    /// badly-localised boxes scoring above 0.5) — the error mode that caps
    /// real detectors' precision and hence mAP.
    pub fp_rate: f64,
}

impl Capability {
    /// Detection probability for one object.
    ///
    /// `area` is the object's area ratio, `n_objects` the scene object count,
    /// `difficulty` the intrinsic difficulty, `blur` the camera blur sigma.
    pub fn p_detect(&self, area: f64, n_objects: usize, difficulty: f64, blur: f64) -> f64 {
        assert!(area > 0.0, "area ratio must be positive");
        let area_term = sigmoid((area.ln() - self.area_floor.ln()) / self.area_slope);
        let excess = n_objects.saturating_sub(self.clutter_onset) as f64;
        let clutter_term = (-self.clutter_lambda * excess).exp();
        let difficulty_term = (1.0 - self.difficulty_sens * difficulty).max(0.0);
        let blur_term = (1.0 - self.blur_sens * blur).max(0.0);
        (self.quality * area_term * clutter_term * difficulty_term * blur_term).clamp(0.0, 1.0)
    }

    /// [`p_detect`](Self::p_detect) with its loop invariants precomputed.
    ///
    /// `area_floor_ln` must equal `self.area_floor.ln()` (constant per
    /// capability) and `clutter_term` must equal
    /// `(-clutter_lambda * max(0, n_objects - clutter_onset)).exp()`
    /// (constant per scene). The detector's sampler cache hoists both out of
    /// its per-object loop; every arithmetic step and its order match
    /// `p_detect`, so for matching invariants the result is bit-identical —
    /// `p_detect_cached_matches_p_detect` pins this.
    #[inline]
    pub fn p_detect_cached(
        &self,
        area: f64,
        area_floor_ln: f64,
        clutter_term: f64,
        difficulty: f64,
        blur: f64,
    ) -> f64 {
        assert!(area > 0.0, "area ratio must be positive");
        let area_term = sigmoid((area.ln() - area_floor_ln) / self.area_slope);
        let difficulty_term = (1.0 - self.difficulty_sens * difficulty).max(0.0);
        let blur_term = (1.0 - self.blur_sens * blur).max(0.0);
        (self.quality * area_term * clutter_term * difficulty_term * blur_term).clamp(0.0, 1.0)
    }

    /// The per-scene clutter survival factor `p_detect` applies to every
    /// object of an `n_objects`-object image.
    #[inline]
    pub fn clutter_term(&self, n_objects: usize) -> f64 {
        let excess = n_objects.saturating_sub(self.clutter_onset) as f64;
        (-self.clutter_lambda * excess).exp()
    }

    /// The calibrated capability of `kind` when trained/evaluated on `split`.
    ///
    /// Bigger training sets (07+12) raise quality; COCO's distribution is
    /// intrinsically harder; the YOLOv4 pair is stronger across the board
    /// (Sec. VI-C: "because of the improved performance of YOLOv4, the number
    /// of difficult cases is fewer").
    pub fn profile(kind: ModelKind, split: SplitId) -> Capability {
        let base = Capability::base(kind);
        let (q_mul, a0_mul, fp_mul) = match split {
            SplitId::Voc07 => (1.00, 1.00, 1.15),
            SplitId::Voc0712 => (1.09, 0.88, 0.85),
            SplitId::Voc0712pp => (0.92, 1.00, 1.35),
            SplitId::Coco18 => (0.62, 0.10, 3.00),
            SplitId::Helmet => (1.14, 0.22, 0.12),
        };
        Capability {
            quality: (base.quality * q_mul).min(0.995),
            area_floor: base.area_floor * a0_mul,
            fp_rate: base.fp_rate * fp_mul,
            ..base
        }
    }

    /// The architecture-intrinsic base capability.
    pub fn base(kind: ModelKind) -> Capability {
        match kind {
            ModelKind::SsdVgg16 => Capability {
                quality: 0.87,
                area_floor: 0.0045,
                area_slope: 0.78,
                clutter_lambda: 0.015,
                clutter_onset: 8,
                difficulty_sens: 0.38,
                blur_sens: 0.045,
                loc_jitter: 0.040,
                score_conc: 6.0,
                sub_box_prob: 0.55,
                noise_rate: 0.35,
                misclass_prob: 0.03,
                fp_rate: 0.80,
            },
            ModelKind::VggLiteSsd => Capability {
                quality: 0.875,
                area_floor: 0.155,
                area_slope: 0.40,
                clutter_lambda: 0.10,
                clutter_onset: 2,
                difficulty_sens: 0.35,
                blur_sens: 0.060,
                loc_jitter: 0.070,
                score_conc: 3.5,
                sub_box_prob: 0.85,
                noise_rate: 0.80,
                misclass_prob: 0.045,
                fp_rate: 0.95,
            },
            ModelKind::MobileNetV1Ssd => Capability {
                quality: 0.90,
                area_floor: 0.13,
                area_slope: 0.42,
                clutter_lambda: 0.085,
                clutter_onset: 2,
                difficulty_sens: 0.33,
                blur_sens: 0.055,
                loc_jitter: 0.062,
                score_conc: 3.8,
                sub_box_prob: 0.85,
                noise_rate: 0.70,
                misclass_prob: 0.040,
                fp_rate: 0.80,
            },
            ModelKind::MobileNetV2Ssd => Capability {
                quality: 0.88,
                area_floor: 0.145,
                area_slope: 0.41,
                clutter_lambda: 0.095,
                clutter_onset: 2,
                difficulty_sens: 0.34,
                blur_sens: 0.058,
                loc_jitter: 0.068,
                score_conc: 3.6,
                sub_box_prob: 0.85,
                noise_rate: 0.75,
                misclass_prob: 0.043,
                fp_rate: 0.90,
            },
            ModelKind::YoloV4 => Capability {
                quality: 0.965,
                area_floor: 0.0028,
                area_slope: 0.72,
                clutter_lambda: 0.006,
                clutter_onset: 10,
                difficulty_sens: 0.26,
                blur_sens: 0.035,
                loc_jitter: 0.032,
                score_conc: 7.5,
                sub_box_prob: 0.50,
                noise_rate: 0.25,
                misclass_prob: 0.012,
                fp_rate: 0.35,
            },
            ModelKind::YoloMobileNetV1 => Capability {
                quality: 0.935,
                area_floor: 0.035,
                area_slope: 0.50,
                clutter_lambda: 0.030,
                clutter_onset: 4,
                difficulty_sens: 0.38,
                blur_sens: 0.055,
                loc_jitter: 0.045,
                score_conc: 5.0,
                sub_box_prob: 0.75,
                noise_rate: 0.35,
                misclass_prob: 0.022,
                fp_rate: 0.38,
            },
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_detect_monotone_in_area() {
        let c = Capability::base(ModelKind::VggLiteSsd);
        let mut prev = 0.0;
        for area in [0.001, 0.01, 0.05, 0.2, 0.6] {
            let p = c.p_detect(area, 1, 0.0, 0.0);
            assert!(p >= prev, "p_detect must grow with area");
            prev = p;
        }
    }

    #[test]
    fn p_detect_decreases_with_clutter_difficulty_blur() {
        let c = Capability::base(ModelKind::VggLiteSsd);
        let base = c.p_detect(0.2, 1, 0.0, 0.0);
        assert!(c.p_detect(0.2, 12, 0.0, 0.0) < base);
        assert!(c.p_detect(0.2, 1, 0.8, 0.0) < base);
        assert!(c.p_detect(0.2, 1, 0.0, 3.0) < base);
    }

    #[test]
    fn big_model_sees_smaller_objects() {
        let big = Capability::base(ModelKind::SsdVgg16);
        let small = Capability::base(ModelKind::VggLiteSsd);
        let tiny = 0.008;
        assert!(big.p_detect(tiny, 1, 0.1, 0.0) > small.p_detect(tiny, 1, 0.1, 0.0) + 0.3);
    }

    #[test]
    fn big_model_tolerates_clutter() {
        let big = Capability::base(ModelKind::SsdVgg16);
        let small = Capability::base(ModelKind::VggLiteSsd);
        let ratio_big = big.p_detect(0.1, 15, 0.1, 0.0) / big.p_detect(0.1, 1, 0.1, 0.0);
        let ratio_small = small.p_detect(0.1, 15, 0.1, 0.0) / small.p_detect(0.1, 1, 0.1, 0.0);
        assert!(ratio_big > ratio_small + 0.2);
    }

    #[test]
    fn training_set_size_improves_quality() {
        let q07 = Capability::profile(ModelKind::SsdVgg16, SplitId::Voc07).quality;
        let q0712 = Capability::profile(ModelKind::SsdVgg16, SplitId::Voc0712).quality;
        assert!(q0712 > q07);
    }

    #[test]
    fn yolo_pair_stronger_than_ssd_pair() {
        let yolo_small = Capability::base(ModelKind::YoloMobileNetV1);
        let ssd_small = Capability::base(ModelKind::VggLiteSsd);
        assert!(yolo_small.area_floor < ssd_small.area_floor);
        assert!(yolo_small.quality > ssd_small.quality);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        for kind in ModelKind::ALL {
            let c = Capability::base(kind);
            for area in [1e-4, 0.01, 0.5, 0.93] {
                for n in [1usize, 5, 40] {
                    for d in [0.0, 0.5, 1.0] {
                        for blur in [0.0, 2.0, 6.0] {
                            let p = c.p_detect(area, n, d, blur);
                            assert!((0.0..=1.0).contains(&p));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn p_detect_cached_matches_p_detect() {
        for kind in ModelKind::ALL {
            for split in [
                SplitId::Voc07,
                SplitId::Voc0712,
                SplitId::Voc0712pp,
                SplitId::Coco18,
                SplitId::Helmet,
            ] {
                let c = Capability::profile(kind, split);
                let floor_ln = c.area_floor.ln();
                for area in [1e-4, 0.008, 0.2, 0.93] {
                    for n in [1usize, 3, 12, 40] {
                        let clutter = c.clutter_term(n);
                        for d in [0.0, 0.3, 1.0] {
                            for blur in [0.0, 1.5, 4.0] {
                                assert_eq!(
                                    c.p_detect(area, n, d, blur).to_bits(),
                                    c.p_detect_cached(area, floor_ln, clutter, d, blur)
                                        .to_bits(),
                                    "{kind:?}/{split:?} area={area} n={n} d={d} blur={blur}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn seed_tags_distinct() {
        let tags: std::collections::HashSet<u64> =
            ModelKind::ALL.iter().map(|m| m.seed_tag()).collect();
        assert_eq!(tags.len(), ModelKind::ALL.len());
    }
}
