//! # modelzoo — detector architectures and behavioural simulation
//!
//! Two complementary views of the paper's models:
//!
//! 1. **Static analysis** — [`Network`] descriptions of SSD300-VGG16, the
//!    VGG-Lite small model, the MobileNetV1/V2 small models and YOLOv4, with
//!    exact layer-by-layer shape, parameter, FLOP and activation-size
//!    accounting (reproduces Table II and the Neurosurgeon-style partition
//!    motivation via [`PartitionAnalysis`]).
//! 2. **Behavioural simulation** — [`SimDetector`] produces post-NMS
//!    detections whose statistics are governed by a calibrated
//!    [`Capability`]: small models miss small objects (no 38×38 map) and
//!    multi-object scenes (66 % fewer default boxes), exactly the structure
//!    the paper's Fig. 4 documents.
//!
//! # Example
//!
//! ```
//! use datagen::{DatasetProfile, Scene, SplitId};
//! use modelzoo::{Detector, ModelKind, SimDetector};
//!
//! let scene = Scene::sample(&DatasetProfile::voc(), 7, 0);
//! let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
//! let detections = small.detect(&scene);
//! println!("{} raw boxes", detections.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anchors;
mod capability;
mod compress;
mod detector;
mod layer;
mod mobilenet;
mod network;
mod partition;
mod ssd;
mod tensor;
mod yolo;

pub use anchors::{
    default_boxes, num_default_boxes, small_model_feature_maps, ssd300_feature_maps, FeatureMapSpec,
};
pub use capability::{Capability, ModelKind};
pub use compress::{compress_to_budget, CompressBase, Compressed, EdgeBudget};
pub use detector::{Detector, SimDetector};
pub use layer::Layer;
pub use mobilenet::{
    mobilenet_v1_ssd, mobilenet_v1_ssd_paper, mobilenet_v2_ssd, mobilenet_v2_ssd_paper,
};
pub use network::{LayerInfo, Network};
pub use partition::{PartitionAnalysis, SplitPoint};
pub use ssd::{ssd300_vgg16, vgg_lite_ssd};
pub use tensor::TensorShape;
pub use yolo::{yolo_mobilenet_small, yolov4};
