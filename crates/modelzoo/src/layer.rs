//! The layer vocabulary used to describe detector architectures.
//!
//! Each layer knows how to infer its output shape and count its parameters
//! and floating-point operations (FLOPs, counting one multiply-accumulate as
//! **two** operations, the convention the paper's Table II uses — SSD300 on
//! VGG16 comes out at ~61 GFLOPs).

use crate::TensorShape;
use serde::{Deserialize, Serialize};

/// One network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layer {
    /// Standard 2-D convolution with square kernel and `same`-style padding.
    Conv2d {
        /// Output channel count.
        out_channels: usize,
        /// Square kernel side.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Depthwise convolution (one filter per input channel).
    DepthwiseConv {
        /// Square kernel side.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Pointwise (1×1) convolution.
    PointwiseConv {
        /// Output channel count.
        out_channels: usize,
    },
    /// 2-D convolution with *valid* padding and stride 1 (SSD's conv10/11
    /// blocks use this to step 5×5 → 3×3 → 1×1).
    Conv2dValid {
        /// Output channel count.
        out_channels: usize,
        /// Square kernel side.
        kernel: usize,
    },
    /// Max pooling with square window; `ceil`-mode spatial reduction.
    MaxPool {
        /// Window side and stride (SSD uses kernel == stride except pool5).
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling to `C × 1 × 1`.
    GlobalAvgPool,
    /// Fully connected layer.
    Dense {
        /// Output features.
        out_features: usize,
    },
}

impl Layer {
    /// Output shape for the given input.
    pub fn output_shape(&self, input: TensorShape) -> TensorShape {
        match *self {
            Layer::Conv2d {
                out_channels,
                stride,
                ..
            } => TensorShape::new(
                out_channels,
                div_ceil(input.h, stride),
                div_ceil(input.w, stride),
            ),
            Layer::DepthwiseConv { stride, .. } => TensorShape::new(
                input.c,
                div_ceil(input.h, stride),
                div_ceil(input.w, stride),
            ),
            Layer::PointwiseConv { out_channels } => {
                TensorShape::new(out_channels, input.h, input.w)
            }
            Layer::Conv2dValid {
                out_channels,
                kernel,
            } => {
                assert!(
                    input.h >= kernel && input.w >= kernel,
                    "valid conv kernel exceeds input"
                );
                TensorShape::new(out_channels, input.h - kernel + 1, input.w - kernel + 1)
            }
            Layer::MaxPool { stride, .. } => TensorShape::new(
                input.c,
                div_ceil(input.h, stride),
                div_ceil(input.w, stride),
            ),
            Layer::GlobalAvgPool => TensorShape::new(input.c, 1, 1),
            Layer::Dense { out_features } => TensorShape::new(out_features, 1, 1),
        }
    }

    /// Learnable parameter count (weights + biases).
    pub fn params(&self, input: TensorShape) -> u64 {
        match *self {
            Layer::Conv2d {
                out_channels,
                kernel,
                ..
            } => (kernel * kernel * input.c * out_channels + out_channels) as u64,
            Layer::DepthwiseConv { kernel, .. } => (kernel * kernel * input.c + input.c) as u64,
            Layer::PointwiseConv { out_channels } => (input.c * out_channels + out_channels) as u64,
            Layer::Conv2dValid {
                out_channels,
                kernel,
            } => (kernel * kernel * input.c * out_channels + out_channels) as u64,
            Layer::MaxPool { .. } | Layer::GlobalAvgPool => 0,
            Layer::Dense { out_features } => {
                (input.elements() as usize * out_features + out_features) as u64
            }
        }
    }

    /// FLOPs for one forward pass (2 × multiply-accumulates).
    pub fn flops(&self, input: TensorShape) -> u64 {
        let out = self.output_shape(input);
        match *self {
            Layer::Conv2d {
                out_channels,
                kernel,
                ..
            } => {
                2 * (kernel * kernel * input.c) as u64
                    * out_channels as u64
                    * (out.h * out.w) as u64
            }
            Layer::DepthwiseConv { kernel, .. } => {
                2 * (kernel * kernel) as u64 * input.c as u64 * (out.h * out.w) as u64
            }
            Layer::PointwiseConv { out_channels } => {
                2 * input.c as u64 * out_channels as u64 * (out.h * out.w) as u64
            }
            Layer::Conv2dValid {
                out_channels,
                kernel,
            } => {
                2 * (kernel * kernel * input.c) as u64
                    * out_channels as u64
                    * (out.h * out.w) as u64
            }
            Layer::MaxPool { kernel, .. } => (kernel * kernel) as u64 * out.elements(),
            Layer::GlobalAvgPool => input.elements(),
            Layer::Dense { out_features } => 2 * input.elements() * out_features as u64,
        }
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_and_flops() {
        let input = TensorShape::new(3, 300, 300);
        let conv = Layer::Conv2d {
            out_channels: 64,
            kernel: 3,
            stride: 1,
        };
        let out = conv.output_shape(input);
        assert_eq!(out, TensorShape::new(64, 300, 300));
        assert_eq!(conv.params(input), (9 * 3 * 64 + 64) as u64);
        assert_eq!(conv.flops(input), 2 * 9 * 3 * 64 * 300 * 300);
    }

    #[test]
    fn strided_conv_halves_spatial() {
        let input = TensorShape::new(64, 150, 150);
        let conv = Layer::Conv2d {
            out_channels: 128,
            kernel: 3,
            stride: 2,
        };
        assert_eq!(conv.output_shape(input), TensorShape::new(128, 75, 75));
    }

    #[test]
    fn ceil_mode_pooling() {
        // SSD's conv4_3 -> pool4: 75 -> 38 with ceil mode
        let input = TensorShape::new(512, 75, 75);
        let pool = Layer::MaxPool {
            kernel: 2,
            stride: 2,
        };
        assert_eq!(pool.output_shape(input), TensorShape::new(512, 38, 38));
        assert_eq!(pool.params(input), 0);
    }

    #[test]
    fn depthwise_separable_cheaper_than_full() {
        let input = TensorShape::new(128, 38, 38);
        let full = Layer::Conv2d {
            out_channels: 128,
            kernel: 3,
            stride: 1,
        };
        let dw = Layer::DepthwiseConv {
            kernel: 3,
            stride: 1,
        };
        let pw = Layer::PointwiseConv { out_channels: 128 };
        let dw_out = dw.output_shape(input);
        let separable = dw.flops(input) + pw.flops(dw_out);
        assert!(separable < full.flops(input) / 5);
    }

    #[test]
    fn valid_conv_shrinks_spatial() {
        // SSD conv10_2: 5x5 -> 3x3, conv11_2: 3x3 -> 1x1
        let c = Layer::Conv2dValid {
            out_channels: 256,
            kernel: 3,
        };
        let five = TensorShape::new(128, 5, 5);
        assert_eq!(c.output_shape(five), TensorShape::new(256, 3, 3));
        let three = TensorShape::new(128, 3, 3);
        assert_eq!(c.output_shape(three), TensorShape::new(256, 1, 1));
        assert_eq!(c.params(three), (9 * 128 * 256 + 256) as u64);
    }

    #[test]
    fn dense_layer_params() {
        let input = TensorShape::new(256, 1, 1);
        let d = Layer::Dense { out_features: 10 };
        assert_eq!(d.params(input), 2570);
        assert_eq!(d.output_shape(input), TensorShape::new(10, 1, 1));
        assert_eq!(d.flops(input), 2 * 256 * 10);
    }

    #[test]
    fn global_pool_shape() {
        let input = TensorShape::new(1024, 7, 7);
        assert_eq!(
            Layer::GlobalAvgPool.output_shape(input),
            TensorShape::new(1024, 1, 1)
        );
    }
}
