//! SSD default-box ("anchor"/"prior") generation.
//!
//! The paper leans on default-box arithmetic: SSD300 has **8732** default
//! boxes of which the 38×38 feature map provides **5776**; the small model
//! discards that map and "loses 66 % of default boxes", keeping **2956**.
//! This module reproduces those numbers from first principles.

use detcore::BBox;
use serde::{Deserialize, Serialize};

/// One feature map participating in detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureMapSpec {
    /// Spatial size (the map is `size × size`).
    pub size: usize,
    /// Default boxes per cell (4 or 6 in SSD).
    pub boxes_per_cell: usize,
    /// Box scale for this map, relative to the image.
    pub scale: f64,
    /// Scale of the next map (for the extra √(s_k·s_{k+1}) box).
    pub next_scale: f64,
}

/// The six SSD300 feature maps in order (38 → 1).
pub fn ssd300_feature_maps() -> Vec<FeatureMapSpec> {
    // Standard SSD300 scales: first map 0.1, then 0.2 … 0.9 linear.
    let sizes = [38usize, 19, 10, 5, 3, 1];
    let boxes = [4usize, 6, 6, 6, 4, 4];
    let scales = [0.1, 0.2, 0.375, 0.55, 0.725, 0.9];
    let next = [0.2, 0.375, 0.55, 0.725, 0.9, 1.075];
    (0..6)
        .map(|i| FeatureMapSpec {
            size: sizes[i],
            boxes_per_cell: boxes[i],
            scale: scales[i],
            next_scale: next[i],
        })
        .collect()
}

/// The small model's feature maps: SSD300 **without** the 38×38 map
/// (Sec. IV-B: "we discard the feature map of 38*38").
pub fn small_model_feature_maps() -> Vec<FeatureMapSpec> {
    ssd300_feature_maps().into_iter().skip(1).collect()
}

/// Total number of default boxes across maps.
pub fn num_default_boxes(maps: &[FeatureMapSpec]) -> usize {
    maps.iter()
        .map(|m| m.size * m.size * m.boxes_per_cell)
        .sum()
}

/// Generates the actual default boxes for a feature-map set.
///
/// Per SSD: each cell gets boxes at aspect ratios {1, 2, ½} (+{3, ⅓} when 6
/// per cell) at scale `s_k`, plus one square box at scale `√(s_k·s_{k+1})`.
/// Boxes are clamped to the unit square.
///
/// # Examples
///
/// ```
/// use modelzoo::{default_boxes, num_default_boxes, ssd300_feature_maps};
///
/// let maps = ssd300_feature_maps();
/// assert_eq!(num_default_boxes(&maps), 8732);
/// assert_eq!(default_boxes(&maps).len(), 8732);
/// ```
pub fn default_boxes(maps: &[FeatureMapSpec]) -> Vec<BBox> {
    let mut out = Vec::with_capacity(num_default_boxes(maps));
    for m in maps {
        // Aspect-ratio list in SSD order.
        let aspects: Vec<f64> = match m.boxes_per_cell {
            4 => vec![1.0, 2.0, 0.5],
            6 => vec![1.0, 2.0, 0.5, 3.0, 1.0 / 3.0],
            n => panic!("unsupported boxes_per_cell: {n}"),
        };
        let extra_scale = (m.scale * m.next_scale).sqrt();
        for i in 0..m.size {
            for j in 0..m.size {
                let cx = (j as f64 + 0.5) / m.size as f64;
                let cy = (i as f64 + 0.5) / m.size as f64;
                for &ar in &aspects {
                    let w = m.scale * ar.sqrt();
                    let h = m.scale / ar.sqrt();
                    out.push(BBox::from_center(cx, cy, w, h).clamp_unit());
                }
                // the extra square box at the geometric-mean scale
                out.push(BBox::from_center(cx, cy, extra_scale, extra_scale).clamp_unit());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd300_has_8732_boxes() {
        assert_eq!(num_default_boxes(&ssd300_feature_maps()), 8732);
    }

    #[test]
    fn first_map_provides_5776() {
        let maps = ssd300_feature_maps();
        assert_eq!(maps[0].size * maps[0].size * maps[0].boxes_per_cell, 5776);
    }

    #[test]
    fn small_model_keeps_2956() {
        let maps = small_model_feature_maps();
        assert_eq!(num_default_boxes(&maps), 2956);
        assert_eq!(8732 - 5776, 2956);
    }

    #[test]
    fn small_model_loses_66_percent() {
        let lost: f64 = 5776.0 / 8732.0;
        assert!((lost - 0.6615).abs() < 0.001, "the paper's 66 % figure");
    }

    #[test]
    fn generated_boxes_match_count_and_bounds() {
        for maps in [ssd300_feature_maps(), small_model_feature_maps()] {
            let boxes = default_boxes(&maps);
            assert_eq!(boxes.len(), num_default_boxes(&maps));
            for b in &boxes {
                assert!(b.x_min() >= 0.0 && b.x_max() <= 1.0);
                assert!(b.y_min() >= 0.0 && b.y_max() <= 1.0);
                assert!(b.area() > 0.0);
            }
        }
    }

    #[test]
    fn large_maps_have_smaller_boxes() {
        let maps = ssd300_feature_maps();
        let boxes = default_boxes(&maps);
        // mean area of the 38x38 map's boxes vs the 1x1 map's boxes
        let first: f64 = boxes[..5776].iter().map(|b| b.area()).sum::<f64>() / 5776.0;
        let last: f64 = boxes[boxes.len() - 4..]
            .iter()
            .map(|b| b.area())
            .sum::<f64>()
            / 4.0;
        assert!(
            first < last / 10.0,
            "38x38 boxes analyse small objects: {first} vs {last}"
        );
    }
}
