//! The simulated detector: scene in, post-NMS detections out.
//!
//! [`SimDetector`] turns a [`Capability`] into a [`Detector`] whose output
//! has the structure the paper's discriminator exploits (Fig. 6):
//!
//! * detected objects produce well-localised boxes with scores ≥ 0.5,
//! * *marginally* missed objects often produce a sub-threshold box
//!   (score ≈ 0.15–0.48, like the missed dog at 0.2507),
//! * spurious noise boxes appear with low scores (≤ ~0.3),
//! * deeply invisible objects produce nothing at all.
//!
//! **Common random numbers:** the per-object detection draw `u` is derived
//! from the *scene and object* only, so when the big model has a higher
//! detection probability than the small model it detects a superset of the
//! small model's objects on the same image — matching the real systems'
//! behaviour ("hard objects are hard for everyone") and making difficulty
//! labels well-defined.

use crate::{Capability, ModelKind};
use datagen::{Scene, SplitId};
use detcore::{BBox, ClassId, Detection, ImageDetections};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Beta, Distribution, Normal};

/// Anything that can run object detection over a scene.
///
/// Implementors must be deterministic: the same scene yields the same output.
pub trait Detector {
    /// Detector name (for reports). Names are static model labels, so no
    /// per-call (or per-construction) allocation is involved.
    fn name(&self) -> &'static str;

    /// Runs detection, returning the post-processing (post-NMS) output.
    fn detect(&self, scene: &Scene) -> ImageDetections;

    /// [`detect`](Self::detect) into a caller-owned buffer: `out` is cleared
    /// and refilled, keeping its capacity, so a caller that reuses one
    /// buffer across frames (mirroring `detcore`'s `nms_into`) pays the
    /// output allocation once per buffer instead of once per frame.
    ///
    /// The default clears `out` and copies [`detect`](Self::detect)'s result
    /// into it — contract-honouring but still one temporary allocation per
    /// call; implementations with a zero-allocation fast path (like
    /// [`SimDetector`]) override it to fill `out` directly.
    fn detect_into(&self, scene: &Scene, out: &mut ImageDetections) {
        out.clear();
        out.extend(self.detect(scene));
    }

    /// FLOPs for one forward pass (used by the latency model).
    fn flops(&self) -> u64;

    /// Model size in bytes (weights at float32).
    fn model_size_bytes(&self) -> u64;
}

/// splitmix64 mixer for stable per-object draws.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` derived from a hash.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Inverse-CDF Poisson draw from a uniform (rates here are small; capped at
/// 8). `neg_rate_exp` must equal `(-rate).exp()`: the base is a per-rate
/// invariant the [`SamplerCache`] computes once per detector, so repeated
/// draws for the same rate don't re-exponentiate.
fn poisson_draw(u: f64, rate: f64, neg_rate_exp: f64) -> usize {
    if rate <= 0.0 {
        return 0;
    }
    let mut k = 0usize;
    let mut acc = neg_rate_exp;
    let mut cum = acc;
    while u > cum && k < 8 {
        k += 1;
        acc *= rate / k as f64;
        cum += acc;
    }
    k
}

/// Per-detector sampling invariants, computed once at construction.
///
/// `SimDetector::detect` used to rebuild its `Beta`/`Normal` distributions
/// per object and re-derive `area_floor.ln()` and the `exp(-rate)` Poisson
/// bases per call; none of those depend on the scene. Hoisting them changes
/// no draw — distribution construction consumes no RNG state, and every
/// cached value is the exact expression the loop used to evaluate — so the
/// output stays bit-identical (`detect_matches_seed_reference` pins this
/// against a transcription of the pre-cache implementation).
#[derive(Debug, Clone)]
struct SamplerCache {
    /// `mix` input component: the model's stable seed tag.
    seed_tag: u64,
    /// `capability.area_floor.ln()` for `p_detect_cached`.
    area_floor_ln: f64,
    /// `exp(-fp_rate)`: Poisson base for confident false positives.
    fp_base: f64,
    /// `exp(-noise_rate)`: Poisson base for spurious noise boxes.
    noise_base: f64,
    /// Score distribution for detected objects: `Beta(score_conc, 1.6)`.
    hit_score: Beta,
    /// Localisation jitter for detected objects: `Normal(0, loc_jitter)`.
    hit_jitter: Normal,
    /// Localisation jitter for sub-threshold boxes near missed objects:
    /// `Normal(0, 2 · loc_jitter)`.
    miss_jitter: Normal,
    /// Score distribution for confident false positives: `Beta(2, 4)`.
    fp_score: Beta,
}

impl SamplerCache {
    fn new(kind: ModelKind, cap: &Capability) -> Self {
        SamplerCache {
            seed_tag: kind.seed_tag(),
            area_floor_ln: cap.area_floor.ln(),
            fp_base: (-cap.fp_rate).exp(),
            noise_base: (-cap.noise_rate).exp(),
            hit_score: Beta::new(cap.score_conc, 1.6).expect("valid beta"),
            hit_jitter: Normal::new(0.0, cap.loc_jitter).expect("valid normal"),
            miss_jitter: Normal::new(0.0, cap.loc_jitter * 2.0).expect("valid normal"),
            fp_score: Beta::new(2.0, 4.0).expect("valid beta"),
        }
    }
}

/// A simulated, deterministic object detector.
///
/// # Examples
///
/// ```
/// use datagen::{DatasetProfile, Scene, SplitId};
/// use modelzoo::{Detector, ModelKind, SimDetector};
///
/// let scene = Scene::sample(&DatasetProfile::voc(), 1, 0);
/// let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
/// let out1 = big.detect(&scene);
/// let out2 = big.detect(&scene);
/// assert_eq!(out1, out2); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SimDetector {
    kind: ModelKind,
    capability: Capability,
    num_classes: usize,
    flops: u64,
    size_bytes: u64,
    cache: SamplerCache,
}

impl SimDetector {
    /// Creates a detector for `kind` calibrated on `split`.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn new(kind: ModelKind, split: SplitId, num_classes: usize) -> Self {
        Self::with_capability(kind, Capability::profile(kind, split), num_classes)
    }

    /// Creates a detector with an explicit capability (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn with_capability(kind: ModelKind, capability: Capability, num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        let net = kind.network(num_classes);
        SimDetector {
            kind,
            num_classes,
            flops: net.total_flops(),
            size_bytes: net.total_params() * 4,
            cache: SamplerCache::new(kind, &capability),
            capability,
        }
    }

    /// The model kind.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The behavioural capability in use.
    pub fn capability(&self) -> &Capability {
        &self.capability
    }

    /// Number of classes this detector emits.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The shared per-object detection draw (common random number).
    fn object_draw(scene: &Scene, index: usize) -> f64 {
        unit(mix(
            scene.seed ^ (index as u64 + 1).wrapping_mul(0xd6e8_feb8_6659_fd93)
        ))
    }
}

impl Detector for SimDetector {
    fn name(&self) -> &'static str {
        self.kind.label()
    }

    /// Thin wrapper over [`detect_into`](Detector::detect_into) (mirroring
    /// `detcore`'s `nms` over `nms_into`): allocates one fresh output and
    /// fills it through the zero-allocation fast path.
    fn detect(&self, scene: &Scene) -> ImageDetections {
        let mut out = ImageDetections::new();
        self.detect_into(scene, &mut out);
        out
    }

    /// The hot path: every per-detector invariant (distributions, log/exp
    /// bases, seed tag) comes from the [`SamplerCache`], the per-scene
    /// clutter factor is computed once ahead of the object loop, and the
    /// output buffer is caller-owned — after warmup a `detect_into` call
    /// performs no allocation at all. Draw sequence and arithmetic are
    /// bit-identical to the pre-cache implementation (kept below as the
    /// `seed_reference` test oracle).
    fn detect_into(&self, scene: &Scene, out: &mut ImageDetections) {
        let cap = &self.capability;
        let cache = &self.cache;
        let mut rng = StdRng::seed_from_u64(mix(scene.seed ^ cache.seed_tag));
        // One box per object plus a few false positives is the typical
        // output size; reserving it keeps the hot loop reallocation-free.
        out.clear();
        let n = scene.num_objects();
        out.reserve(n + 4);
        let clutter_term = cap.clutter_term(n);

        for (i, obj) in scene.objects.iter().enumerate() {
            let p = cap.p_detect_cached(
                obj.area_ratio(),
                cache.area_floor_ln,
                clutter_term,
                obj.difficulty,
                scene.camera_blur,
            );
            let u = Self::object_draw(scene, i);
            if u < p {
                // Detected: high score, well-localised box, usually right class.
                let score = 0.5 + 0.5 * cache.hit_score.sample(&mut rng);
                let jitter = &cache.hit_jitter;
                let w = obj.bbox.width();
                let h = obj.bbox.height();
                let bbox = BBox::from_corners(
                    obj.bbox.x_min() + jitter.sample(&mut rng) * w,
                    obj.bbox.y_min() + jitter.sample(&mut rng) * h,
                    obj.bbox.x_max() + jitter.sample(&mut rng) * w,
                    obj.bbox.y_max() + jitter.sample(&mut rng) * h,
                )
                .clamp_unit();
                let class = if rng.gen::<f64>() < cap.misclass_prob {
                    ClassId(rng.gen_range(0..self.num_classes) as u16)
                } else {
                    obj.class
                };
                if !bbox.is_empty() {
                    out.push(Detection::new(class, score.min(0.9999), bbox));
                }
            } else {
                // Missed. Real SSD-style heads almost always leave a
                // low-score box near a missed object (the paper's dog at
                // 0.2507); only deeply invisible objects stay silent.
                let emit_prob = if p > 0.02 {
                    cap.sub_box_prob
                } else {
                    cap.sub_box_prob * 0.3
                };
                if rng.gen::<f64>() < emit_prob {
                    let score = rng.gen_range(0.16..0.48);
                    let jitter = &cache.miss_jitter;
                    let w = obj.bbox.width();
                    let h = obj.bbox.height();
                    let bbox = BBox::from_corners(
                        obj.bbox.x_min() + jitter.sample(&mut rng) * w,
                        obj.bbox.y_min() + jitter.sample(&mut rng) * h,
                        obj.bbox.x_max() + jitter.sample(&mut rng) * w,
                        obj.bbox.y_max() + jitter.sample(&mut rng) * h,
                    )
                    .clamp_unit();
                    if !bbox.is_empty() {
                        out.push(Detection::new(obj.class, score, bbox));
                    }
                }
            }
        }

        // Confident false positives: duplicated / badly-localised boxes that
        // score above 0.5 — the error mode that bounds real detectors' mAP.
        // The underlying uniform is shared across models (common random
        // numbers): hard images trigger FPs in both models, so difficulty
        // labels (count differences) reflect real detection gaps, not
        // independent FP noise.
        let fp_draw = unit(mix(scene.seed ^ 0xfa15_e905));
        let n_fps = poisson_draw(fp_draw, cap.fp_rate, cache.fp_base);
        for _ in 0..n_fps {
            let score = 0.5 + 0.45 * cache.fp_score.sample(&mut rng);
            // Anchor near a real object when one exists (duplicate-style FP),
            // otherwise free-floating.
            let bbox = if !scene.objects.is_empty() && rng.gen::<f64>() < 0.7 {
                let obj = &scene.objects[rng.gen_range(0..scene.objects.len())];
                let (cx, cy) = obj.bbox.center();
                let w = obj.bbox.width() * rng.gen_range(0.5..1.6);
                let h = obj.bbox.height() * rng.gen_range(0.5..1.6);
                BBox::from_center(
                    cx + rng.gen_range(-0.5..0.5) * w,
                    cy + rng.gen_range(-0.5..0.5) * h,
                    w,
                    h,
                )
                .clamp_unit()
            } else {
                BBox::from_center(
                    rng.gen_range(0.15..0.85),
                    rng.gen_range(0.15..0.85),
                    rng.gen_range(0.05..0.4),
                    rng.gen_range(0.05..0.4),
                )
                .clamp_unit()
            };
            let class = ClassId(rng.gen_range(0..self.num_classes) as u16);
            if !bbox.is_empty() {
                out.push(Detection::new(class, score, bbox));
            }
        }

        // Spurious noise boxes: low scores, random class and geometry.
        let noise_boxes = poisson_draw(rng.gen(), cap.noise_rate, cache.noise_base);
        for _ in 0..noise_boxes {
            let score = 0.02 + 0.33 * rng.gen::<f64>().powf(1.5);
            let cx = rng.gen_range(0.1..0.9);
            let cy = rng.gen_range(0.1..0.9);
            let w = rng.gen_range(0.03..0.35);
            let h = rng.gen_range(0.03..0.35);
            let bbox = BBox::from_center(cx, cy, w, h).clamp_unit();
            let class = ClassId(rng.gen_range(0..self.num_classes) as u16);
            out.push(Detection::new(class, score, bbox));
        }
    }

    fn flops(&self) -> u64 {
        self.flops
    }

    fn model_size_bytes(&self) -> u64 {
        self.size_bytes
    }
}

/// Transcription of the pre-cache (seed) `SimDetector::detect`, kept as the
/// bit-identity oracle for the sampler-cache fast path: per-object
/// `Beta::new`/`Normal::new` constructions, per-call `p_detect`, and a
/// `poisson_draw` that re-exponentiates its rate every call.
#[cfg(test)]
mod seed_reference {
    use super::*;

    fn poisson_draw(u: f64, rate: f64) -> usize {
        if rate <= 0.0 {
            return 0;
        }
        let mut k = 0usize;
        let mut acc = (-rate).exp();
        let mut cum = acc;
        while u > cum && k < 8 {
            k += 1;
            acc *= rate / k as f64;
            cum += acc;
        }
        k
    }

    pub fn detect(det: &SimDetector, scene: &Scene) -> ImageDetections {
        let cap = &det.capability;
        let mut rng = StdRng::seed_from_u64(mix(scene.seed ^ det.kind.seed_tag()));
        let mut out = ImageDetections::with_capacity(scene.num_objects() + 4);
        let n = scene.num_objects();

        for (i, obj) in scene.objects.iter().enumerate() {
            let p = cap.p_detect(obj.area_ratio(), n, obj.difficulty, scene.camera_blur);
            let u = SimDetector::object_draw(scene, i);
            if u < p {
                let beta = Beta::new(cap.score_conc, 1.6).expect("valid beta");
                let score = 0.5 + 0.5 * beta.sample(&mut rng);
                let jitter = Normal::new(0.0, cap.loc_jitter).expect("valid normal");
                let w = obj.bbox.width();
                let h = obj.bbox.height();
                let bbox = BBox::from_corners(
                    obj.bbox.x_min() + jitter.sample(&mut rng) * w,
                    obj.bbox.y_min() + jitter.sample(&mut rng) * h,
                    obj.bbox.x_max() + jitter.sample(&mut rng) * w,
                    obj.bbox.y_max() + jitter.sample(&mut rng) * h,
                )
                .clamp_unit();
                let class = if rng.gen::<f64>() < cap.misclass_prob {
                    ClassId(rng.gen_range(0..det.num_classes) as u16)
                } else {
                    obj.class
                };
                if !bbox.is_empty() {
                    out.push(Detection::new(class, score.min(0.9999), bbox));
                }
            } else {
                let emit_prob = if p > 0.02 {
                    cap.sub_box_prob
                } else {
                    cap.sub_box_prob * 0.3
                };
                if rng.gen::<f64>() < emit_prob {
                    let score = rng.gen_range(0.16..0.48);
                    let jitter = Normal::new(0.0, cap.loc_jitter * 2.0).expect("valid normal");
                    let w = obj.bbox.width();
                    let h = obj.bbox.height();
                    let bbox = BBox::from_corners(
                        obj.bbox.x_min() + jitter.sample(&mut rng) * w,
                        obj.bbox.y_min() + jitter.sample(&mut rng) * h,
                        obj.bbox.x_max() + jitter.sample(&mut rng) * w,
                        obj.bbox.y_max() + jitter.sample(&mut rng) * h,
                    )
                    .clamp_unit();
                    if !bbox.is_empty() {
                        out.push(Detection::new(obj.class, score, bbox));
                    }
                }
            }
        }

        let fp_draw = unit(mix(scene.seed ^ 0xfa15_e905));
        let n_fps = poisson_draw(fp_draw, cap.fp_rate);
        for _ in 0..n_fps {
            let beta = Beta::new(2.0, 4.0).expect("valid beta");
            let score = 0.5 + 0.45 * beta.sample(&mut rng);
            let bbox = if !scene.objects.is_empty() && rng.gen::<f64>() < 0.7 {
                let obj = &scene.objects[rng.gen_range(0..scene.objects.len())];
                let (cx, cy) = obj.bbox.center();
                let w = obj.bbox.width() * rng.gen_range(0.5..1.6);
                let h = obj.bbox.height() * rng.gen_range(0.5..1.6);
                BBox::from_center(
                    cx + rng.gen_range(-0.5..0.5) * w,
                    cy + rng.gen_range(-0.5..0.5) * h,
                    w,
                    h,
                )
                .clamp_unit()
            } else {
                BBox::from_center(
                    rng.gen_range(0.15..0.85),
                    rng.gen_range(0.15..0.85),
                    rng.gen_range(0.05..0.4),
                    rng.gen_range(0.05..0.4),
                )
                .clamp_unit()
            };
            let class = ClassId(rng.gen_range(0..det.num_classes) as u16);
            if !bbox.is_empty() {
                out.push(Detection::new(class, score, bbox));
            }
        }

        let noise_boxes = poisson_draw(rng.gen(), cap.noise_rate);
        for _ in 0..noise_boxes {
            let score = 0.02 + 0.33 * rng.gen::<f64>().powf(1.5);
            let cx = rng.gen_range(0.1..0.9);
            let cy = rng.gen_range(0.1..0.9);
            let w = rng.gen_range(0.03..0.35);
            let h = rng.gen_range(0.03..0.35);
            let bbox = BBox::from_center(cx, cy, w, h).clamp_unit();
            let class = ClassId(rng.gen_range(0..det.num_classes) as u16);
            out.push(Detection::new(class, score, bbox));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::DatasetProfile;
    use detcore::{count_detected, CountingConfig};
    use proptest::prelude::*;

    fn scenes(n: u64) -> Vec<Scene> {
        let p = DatasetProfile::voc();
        (0..n).map(|id| Scene::sample(&p, 99, id)).collect()
    }

    #[test]
    fn detection_is_deterministic() {
        let det = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
        for s in scenes(10) {
            assert_eq!(det.detect(&s), det.detect(&s));
        }
    }

    #[test]
    fn big_model_detects_more_than_small() {
        let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
        let cfg = CountingConfig::default();
        let mut big_total = 0;
        let mut small_total = 0;
        for s in scenes(300) {
            let gts = s.ground_truths();
            big_total += count_detected(&big.detect(&s), &gts, &cfg).detected;
            small_total += count_detected(&small.detect(&s), &gts, &cfg).detected;
        }
        assert!(
            big_total as f64 > small_total as f64 * 1.3,
            "big {big_total} vs small {small_total}"
        );
    }

    #[test]
    fn common_random_numbers_big_superset() {
        // On most images, objects the small model detects are also detected
        // by the big model (count-wise), thanks to shared draws.
        let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
        let cfg = CountingConfig::default();
        let mut violations = 0;
        let all = scenes(200);
        for s in &all {
            let gts = s.ground_truths();
            let b = count_detected(&big.detect(s), &gts, &cfg).detected;
            let sm = count_detected(&small.detect(s), &gts, &cfg).detected;
            if sm > b {
                violations += 1;
            }
        }
        assert!(
            violations < all.len() / 10,
            "small out-detected big on {violations}/200 images"
        );
    }

    #[test]
    fn scores_respect_structure() {
        let det = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
        for s in scenes(50) {
            for d in det.detect(&s).iter() {
                assert!(d.score() > 0.0 && d.score() < 1.0);
            }
        }
    }

    #[test]
    fn sub_threshold_boxes_exist() {
        let det = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
        let mut sub = 0;
        for s in scenes(200) {
            sub += det
                .detect(&s)
                .iter()
                .filter(|d| d.score() >= 0.16 && d.score() < 0.5)
                .count();
        }
        assert!(sub > 20, "expected sub-threshold boxes, got {sub}");
    }

    #[test]
    fn flops_and_size_come_from_network() {
        let det = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
        let net = ModelKind::VggLiteSsd.network(20);
        assert_eq!(det.flops(), net.total_flops());
        assert_eq!(det.model_size_bytes(), net.total_params() * 4);
        assert_eq!(det.num_classes(), 20);
    }

    #[test]
    fn different_kinds_differ_on_same_scene() {
        let s = &scenes(1)[0];
        let a = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20).detect(s);
        let b = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20).detect(s);
        assert_ne!(a, b);
    }

    #[test]
    fn detect_into_reuses_capacity() {
        let det = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
        let all = scenes(20);
        let mut out = ImageDetections::new();
        // Warm the buffer to the workload's high-water mark…
        for s in &all {
            det.detect_into(s, &mut out);
        }
        let ptr = out.as_slice().as_ptr();
        // …after which refills reuse the same backing buffer.
        for s in &all {
            det.detect_into(s, &mut out);
            assert_eq!(out.as_slice().as_ptr(), ptr, "refill must not reallocate");
        }
    }

    #[test]
    fn default_detect_into_clears_and_keeps_capacity() {
        // A Detector that does NOT override detect_into gets the
        // contract-honouring default: clear + refill, capacity kept.
        struct Wrapper(SimDetector);
        impl Detector for Wrapper {
            fn name(&self) -> &'static str {
                "wrapper"
            }
            fn detect(&self, scene: &Scene) -> ImageDetections {
                self.0.detect(scene)
            }
            fn flops(&self) -> u64 {
                self.0.flops()
            }
            fn model_size_bytes(&self) -> u64 {
                self.0.model_size_bytes()
            }
        }
        let det = Wrapper(SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20));
        let all = scenes(10);
        let mut out = ImageDetections::new();
        for s in &all {
            det.detect_into(s, &mut out);
        }
        let ptr = out.as_slice().as_ptr();
        for s in &all {
            det.detect_into(s, &mut out);
            assert_eq!(out, det.detect(s), "default must clear before refilling");
            assert_eq!(out.as_slice().as_ptr(), ptr, "warm buffer must be reused");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The sampler-cache fast path (`detect_into`) and its `detect`
        /// wrapper are bit-identical to the transcribed seed implementation
        /// across every `ModelKind` × `SplitId` capability profile.
        #[test]
        fn detect_matches_seed_reference(
            kind_idx in 0usize..6,
            split in prop::sample::select(vec![
                SplitId::Voc07,
                SplitId::Voc0712,
                SplitId::Voc0712pp,
                SplitId::Coco18,
                SplitId::Helmet,
            ]),
            profile_idx in 0usize..3,
            seed in 0u64..1_000,
            id in 0u64..1_000,
        ) {
            let kind = ModelKind::ALL[kind_idx];
            let profile = match profile_idx {
                0 => DatasetProfile::voc(),
                1 => DatasetProfile::coco18(),
                _ => DatasetProfile::helmet(),
            };
            let num_classes = profile.taxonomy.len();
            let det = SimDetector::new(kind, split, num_classes);
            let scene = Scene::sample(&profile, seed, id);

            let reference = seed_reference::detect(&det, &scene);
            prop_assert_eq!(&det.detect(&scene), &reference);

            // A dirty reused buffer produces the same output.
            let mut reused = det.detect(&Scene::sample(&profile, seed ^ 0xabcd, id));
            det.detect_into(&scene, &mut reused);
            prop_assert_eq!(&reused, &reference);
        }
    }
}
