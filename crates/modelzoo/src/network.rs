//! Whole-network static analysis: shapes, parameters, FLOPs, activations.

use crate::{Layer, TensorShape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Analysis record for one layer in a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerInfo {
    /// Layer name (e.g. `"conv4_3"`).
    pub name: String,
    /// The layer description.
    pub layer: Layer,
    /// Output activation shape.
    pub output: TensorShape,
    /// Parameter count.
    pub params: u64,
    /// FLOPs for one forward pass.
    pub flops: u64,
}

/// A sequential network description for static cost analysis.
///
/// Branching heads (SSD's per-feature-map detection heads) are modelled as
/// *auxiliary* layers attached to named trunk layers: their costs are counted
/// but they do not advance the trunk shape.
///
/// # Examples
///
/// ```
/// use modelzoo::{Layer, Network, TensorShape};
///
/// let mut net = Network::new("tiny", TensorShape::new(3, 32, 32));
/// net.push("conv1", Layer::Conv2d { out_channels: 8, kernel: 3, stride: 1 });
/// net.push("pool1", Layer::MaxPool { kernel: 2, stride: 2 });
/// assert_eq!(net.output_shape(), TensorShape::new(8, 16, 16));
/// assert!(net.total_flops() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    input: TensorShape,
    trunk: Vec<LayerInfo>,
    aux: Vec<LayerInfo>,
}

impl Network {
    /// Creates an empty network with the given input shape.
    pub fn new(name: &str, input: TensorShape) -> Self {
        Network {
            name: name.to_string(),
            input,
            trunk: Vec::new(),
            aux: Vec::new(),
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input shape.
    pub fn input_shape(&self) -> TensorShape {
        self.input
    }

    /// Appends a trunk layer; returns its output shape.
    pub fn push(&mut self, name: &str, layer: Layer) -> TensorShape {
        let input = self.output_shape();
        let output = layer.output_shape(input);
        self.trunk.push(LayerInfo {
            name: name.to_string(),
            layer,
            output,
            params: layer.params(input),
            flops: layer.flops(input),
        });
        output
    }

    /// Attaches an auxiliary (branch) layer reading from the given shape.
    ///
    /// Used for detection heads: costs are accounted, trunk shape unchanged.
    pub fn push_aux(&mut self, name: &str, layer: Layer, input: TensorShape) {
        let output = layer.output_shape(input);
        self.aux.push(LayerInfo {
            name: name.to_string(),
            layer,
            output,
            params: layer.params(input),
            flops: layer.flops(input),
        });
    }

    /// Current trunk output shape (input shape if no layers yet).
    pub fn output_shape(&self) -> TensorShape {
        self.trunk.last().map(|l| l.output).unwrap_or(self.input)
    }

    /// The output shape of the named trunk layer.
    pub fn shape_of(&self, name: &str) -> Option<TensorShape> {
        self.trunk.iter().find(|l| l.name == name).map(|l| l.output)
    }

    /// Trunk layers in order.
    pub fn trunk_layers(&self) -> &[LayerInfo] {
        &self.trunk
    }

    /// Auxiliary (head) layers.
    pub fn aux_layers(&self) -> &[LayerInfo] {
        &self.aux
    }

    /// Total parameters (trunk + heads).
    pub fn total_params(&self) -> u64 {
        self.trunk.iter().chain(&self.aux).map(|l| l.params).sum()
    }

    /// Total FLOPs (trunk + heads).
    pub fn total_flops(&self) -> u64 {
        self.trunk.iter().chain(&self.aux).map(|l| l.flops).sum()
    }

    /// Total FLOPs in units of 10⁹ (the paper's "Billion FLOPs").
    pub fn gflops(&self) -> f64 {
        self.total_flops() as f64 / 1e9
    }

    /// Model size in MiB at float32, matching the paper's "model size (MB)"
    /// (SSD300-VGG16 ≈ 100.28 MB ↔ 26.3 M params × 4 B).
    pub fn size_mb(&self) -> f64 {
        self.total_params() as f64 * 4.0 / (1024.0 * 1024.0)
    }

    /// Pruned ratio relative to a reference network, in percent:
    /// `(1 − size/reference_size) × 100` (Table II's "Pruned" column).
    pub fn pruned_percent_vs(&self, reference: &Network) -> f64 {
        (1.0 - self.size_mb() / reference.size_mb()) * 100.0
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: input {}, {} trunk + {} aux layers",
            self.name,
            self.input,
            self.trunk.len(),
            self.aux.len()
        )?;
        for l in &self.trunk {
            writeln!(
                f,
                "  {:<12} -> {:>12}  {:>12} params  {:>14} flops",
                l.name,
                l.output.to_string(),
                l.params,
                l.flops
            )?;
        }
        for l in &self.aux {
            writeln!(
                f,
                "  [head] {:<8} {:>12} params  {:>14} flops",
                l.name, l.params, l.flops
            )?;
        }
        write!(
            f,
            "  total: {:.2} MB, {:.2} GFLOPs",
            self.size_mb(),
            self.gflops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network {
        let mut net = Network::new("tiny", TensorShape::new(3, 32, 32));
        net.push(
            "conv1",
            Layer::Conv2d {
                out_channels: 8,
                kernel: 3,
                stride: 1,
            },
        );
        net.push(
            "pool1",
            Layer::MaxPool {
                kernel: 2,
                stride: 2,
            },
        );
        net.push(
            "conv2",
            Layer::Conv2d {
                out_channels: 16,
                kernel: 3,
                stride: 1,
            },
        );
        net
    }

    #[test]
    fn shapes_chain() {
        let net = tiny();
        assert_eq!(net.output_shape(), TensorShape::new(16, 16, 16));
        assert_eq!(net.shape_of("conv1"), Some(TensorShape::new(8, 32, 32)));
        assert_eq!(net.shape_of("nope"), None);
    }

    #[test]
    fn totals_are_sums() {
        let net = tiny();
        let sum_p: u64 = net.trunk_layers().iter().map(|l| l.params).sum();
        assert_eq!(net.total_params(), sum_p);
        assert!(net.gflops() > 0.0);
    }

    #[test]
    fn aux_layers_counted() {
        let mut net = tiny();
        let before = net.total_params();
        let shape = net.shape_of("conv2").unwrap();
        net.push_aux(
            "head",
            Layer::Conv2d {
                out_channels: 4,
                kernel: 3,
                stride: 1,
            },
            shape,
        );
        assert!(net.total_params() > before);
        // trunk output unchanged by aux
        assert_eq!(net.output_shape(), TensorShape::new(16, 16, 16));
    }

    #[test]
    fn pruned_percent() {
        let big = tiny();
        let mut small = Network::new("small", TensorShape::new(3, 32, 32));
        small.push(
            "conv1",
            Layer::Conv2d {
                out_channels: 2,
                kernel: 3,
                stride: 1,
            },
        );
        let pruned = small.pruned_percent_vs(&big);
        assert!(pruned > 0.0 && pruned < 100.0);
    }

    #[test]
    fn display_contains_totals() {
        let s = format!("{}", tiny());
        assert!(s.contains("total:"));
        assert!(s.contains("conv1"));
    }
}
