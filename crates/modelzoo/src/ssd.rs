//! SSD-family architectures: the big SSD300-VGG16 and the paper's small
//! model 1 (VGG-Lite + Conv6&7, Fig. 3).

use crate::{Layer, Network, TensorShape};

/// Attaches SSD detection heads (a 3×3 localisation conv and a 3×3
/// class-confidence conv) to each listed feature map.
///
/// `maps` holds `(layer_name, shape, boxes_per_cell)`. `num_classes` excludes
/// background; SSD adds one background class internally.
pub(crate) fn attach_ssd_heads(
    net: &mut Network,
    maps: &[(&str, TensorShape, usize)],
    num_classes: usize,
) {
    for (name, shape, boxes) in maps {
        let loc = Layer::Conv2d {
            out_channels: boxes * 4,
            kernel: 3,
            stride: 1,
        };
        let conf = Layer::Conv2d {
            out_channels: boxes * (num_classes + 1),
            kernel: 3,
            stride: 1,
        };
        net.push_aux(&format!("{name}_loc"), loc, *shape);
        net.push_aux(&format!("{name}_conf"), conf, *shape);
    }
}

/// Attaches SSDLite-style heads (depthwise 3×3 + pointwise 1×1) to each
/// listed feature map — the light-head variant the MobileNet small models use.
pub(crate) fn attach_sdlite_heads(
    net: &mut Network,
    maps: &[(&str, TensorShape, usize)],
    num_classes: usize,
) {
    for (name, shape, boxes) in maps {
        net.push_aux(
            &format!("{name}_dw"),
            Layer::DepthwiseConv {
                kernel: 3,
                stride: 1,
            },
            *shape,
        );
        net.push_aux(
            &format!("{name}_loc"),
            Layer::PointwiseConv {
                out_channels: boxes * 4,
            },
            *shape,
        );
        net.push_aux(
            &format!("{name}_conf"),
            Layer::PointwiseConv {
                out_channels: boxes * (num_classes + 1),
            },
            *shape,
        );
    }
}

/// The big model: SSD300 with the VGG16 base network.
///
/// Six detection feature maps (38², 19², 10², 5², 3², 1²) carrying 8732
/// default boxes. With `num_classes = 20` (VOC) this comes out at
/// ≈ 100 MB / ≈ 61 GFLOPs — the paper's Table II row for SSD.
///
/// # Examples
///
/// ```
/// use modelzoo::ssd300_vgg16;
///
/// let net = ssd300_vgg16(20);
/// assert!((net.size_mb() - 100.3).abs() < 3.0);
/// assert!((net.gflops() - 61.2).abs() < 5.0);
/// ```
pub fn ssd300_vgg16(num_classes: usize) -> Network {
    let mut net = Network::new("ssd300-vgg16", TensorShape::new(3, 300, 300));
    let c = |o: usize| Layer::Conv2d {
        out_channels: o,
        kernel: 3,
        stride: 1,
    };
    let pool = Layer::MaxPool {
        kernel: 2,
        stride: 2,
    };

    net.push("conv1_1", c(64));
    net.push("conv1_2", c(64));
    net.push("pool1", pool); // 150
    net.push("conv2_1", c(128));
    net.push("conv2_2", c(128));
    net.push("pool2", pool); // 75
    net.push("conv3_1", c(256));
    net.push("conv3_2", c(256));
    net.push("conv3_3", c(256));
    net.push("pool3", pool); // 38 (ceil mode)
    net.push("conv4_1", c(512));
    net.push("conv4_2", c(512));
    let map38 = net.push("conv4_3", c(512)); // detection map 1
    net.push("pool4", pool); // 19
    net.push("conv5_1", c(512));
    net.push("conv5_2", c(512));
    net.push("conv5_3", c(512));
    net.push(
        "pool5",
        Layer::MaxPool {
            kernel: 3,
            stride: 1,
        },
    ); // 19
    net.push("conv6", c(1024)); // dilated fc6
    let map19 = net.push("conv7", Layer::PointwiseConv { out_channels: 1024 }); // detection map 2
    net.push("conv8_1", Layer::PointwiseConv { out_channels: 256 });
    let map10 = net.push(
        "conv8_2",
        Layer::Conv2d {
            out_channels: 512,
            kernel: 3,
            stride: 2,
        },
    );
    net.push("conv9_1", Layer::PointwiseConv { out_channels: 128 });
    let map5 = net.push(
        "conv9_2",
        Layer::Conv2d {
            out_channels: 256,
            kernel: 3,
            stride: 2,
        },
    );
    net.push("conv10_1", Layer::PointwiseConv { out_channels: 128 });
    let map3 = net.push(
        "conv10_2",
        Layer::Conv2dValid {
            out_channels: 256,
            kernel: 3,
        },
    );
    net.push("conv11_1", Layer::PointwiseConv { out_channels: 128 });
    let map1 = net.push(
        "conv11_2",
        Layer::Conv2dValid {
            out_channels: 256,
            kernel: 3,
        },
    );

    attach_ssd_heads(
        &mut net,
        &[
            ("conv4_3", map38, 4),
            ("conv7", map19, 6),
            ("conv8_2", map10, 6),
            ("conv9_2", map5, 6),
            ("conv10_2", map3, 4),
            ("conv11_2", map1, 4),
        ],
        num_classes,
    );
    net
}

/// Small model 1: VGG-Lite + Conv6&7 (paper Fig. 3).
///
/// The VGG-Lite base cuts VGG16 down (9 convolutions and 2 pooling layers
/// removed, strided convolutions instead); Conv6&7 re-scale the features;
/// the SSD-style extra feature layers follow, and — crucially — **the 38×38
/// detection map is discarded**, leaving 2956 default boxes on five maps.
/// With VOC classes this is ≈ 19 MB / ≈ 5 GFLOPs (Table II row 1).
///
/// # Examples
///
/// ```
/// use modelzoo::{ssd300_vgg16, vgg_lite_ssd};
///
/// let small = vgg_lite_ssd(20);
/// let big = ssd300_vgg16(20);
/// assert!(small.pruned_percent_vs(&big) > 80.0);
/// ```
pub fn vgg_lite_ssd(num_classes: usize) -> Network {
    let mut net = Network::new("vgg-lite-ssd", TensorShape::new(3, 300, 300));

    // VGG-Lite: one conv per scale, strided (Fig. 3's "-s2" blocks).
    net.push(
        "conv1",
        Layer::Conv2d {
            out_channels: 64,
            kernel: 3,
            stride: 1,
        },
    ); // 300
    net.push(
        "pool1",
        Layer::MaxPool {
            kernel: 2,
            stride: 2,
        },
    ); // 150
    net.push(
        "conv2",
        Layer::Conv2d {
            out_channels: 128,
            kernel: 3,
            stride: 2,
        },
    ); // 75
    net.push(
        "conv3",
        Layer::Conv2d {
            out_channels: 256,
            kernel: 3,
            stride: 2,
        },
    ); // 38
    net.push(
        "conv4",
        Layer::Conv2d {
            out_channels: 160,
            kernel: 3,
            stride: 1,
        },
    ); // 38
    net.push(
        "conv5",
        Layer::Conv2d {
            out_channels: 256,
            kernel: 3,
            stride: 2,
        },
    ); // 19
       // Conv6&7 adjust the scale of the feature layers (Fig. 3).
    net.push(
        "conv6",
        Layer::Conv2d {
            out_channels: 512,
            kernel: 3,
            stride: 1,
        },
    ); // 19
    let map19 = net.push("conv7", Layer::PointwiseConv { out_channels: 768 }); // 19

    // Extra feature layers, reduced-width versions of SSD's conv8–conv11.
    net.push("conv8_1", Layer::PointwiseConv { out_channels: 128 });
    let map10 = net.push(
        "conv8_2",
        Layer::Conv2d {
            out_channels: 256,
            kernel: 3,
            stride: 2,
        },
    );
    net.push("conv9_1", Layer::PointwiseConv { out_channels: 64 });
    let map5 = net.push(
        "conv9_2",
        Layer::Conv2d {
            out_channels: 128,
            kernel: 3,
            stride: 2,
        },
    );
    net.push("conv10_1", Layer::PointwiseConv { out_channels: 64 });
    let map3 = net.push(
        "conv10_2",
        Layer::Conv2dValid {
            out_channels: 128,
            kernel: 3,
        },
    );
    net.push("conv11_1", Layer::PointwiseConv { out_channels: 64 });
    let map1 = net.push(
        "conv11_2",
        Layer::Conv2dValid {
            out_channels: 128,
            kernel: 3,
        },
    );

    // Heads on five maps only — the 38×38 map is gone.
    attach_ssd_heads(
        &mut net,
        &[
            ("conv7", map19, 6),
            ("conv8_2", map10, 6),
            ("conv9_2", map5, 6),
            ("conv10_2", map3, 4),
            ("conv11_2", map1, 4),
        ],
        num_classes,
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd300_matches_table2_row() {
        let net = ssd300_vgg16(20);
        // Paper Table II: 100.28 MB, 61.19 GFLOPs.
        assert!(
            (net.size_mb() - 100.28).abs() < 3.0,
            "size {:.2} MB",
            net.size_mb()
        );
        assert!(
            (net.gflops() - 61.19).abs() < 5.0,
            "flops {:.2} G",
            net.gflops()
        );
    }

    #[test]
    fn ssd300_feature_map_shapes() {
        let net = ssd300_vgg16(20);
        assert_eq!(net.shape_of("conv4_3").unwrap().h, 38);
        assert_eq!(net.shape_of("conv7").unwrap().h, 19);
        assert_eq!(net.shape_of("conv8_2").unwrap().h, 10);
        assert_eq!(net.shape_of("conv9_2").unwrap().h, 5);
        assert_eq!(net.shape_of("conv10_2").unwrap().h, 3);
        assert_eq!(net.shape_of("conv11_2").unwrap().h, 1);
    }

    #[test]
    fn vgg_lite_matches_table2_row() {
        let small = vgg_lite_ssd(20);
        // Paper Table II: 18.50 MB, 5.60 GFLOPs, pruned 81.55 %.
        assert!(
            (small.size_mb() - 18.50).abs() < 4.0,
            "size {:.2} MB",
            small.size_mb()
        );
        assert!(
            (small.gflops() - 5.60).abs() < 1.5,
            "flops {:.2} G",
            small.gflops()
        );
        let big = ssd300_vgg16(20);
        let pruned = small.pruned_percent_vs(&big);
        assert!(pruned > 78.0 && pruned < 90.0, "pruned {pruned:.2} %");
    }

    #[test]
    fn vgg_lite_has_no_38_map() {
        let net = vgg_lite_ssd(20);
        for l in net.trunk_layers() {
            if l.name.ends_with("_loc") || l.name.ends_with("_conf") {
                continue;
            }
        }
        // the first detection head reads the 19x19 map
        assert!(net.aux_layers().iter().all(|l| l.output.h <= 19));
    }

    #[test]
    fn head_output_channels_encode_boxes() {
        let net = ssd300_vgg16(20);
        let conf38 = net
            .aux_layers()
            .iter()
            .find(|l| l.name == "conv4_3_conf")
            .unwrap();
        assert_eq!(conf38.output.c, 4 * 21);
        let loc19 = net
            .aux_layers()
            .iter()
            .find(|l| l.name == "conv7_loc")
            .unwrap();
        assert_eq!(loc19.output.c, 6 * 4);
    }
}
