//! Model-partition (Neurosurgeon-style) analysis.
//!
//! The paper's motivation (Sec. II-C): partitioned execution ships an
//! intermediate activation tensor from the edge to the cloud, and for object
//! detectors that tensor is large — often larger than the encoded image
//! itself — so partitioning is a poor fit for detection. This module computes
//! the per-layer activation sizes that argument rests on.

use crate::Network;
use serde::{Deserialize, Serialize};

/// One candidate split point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitPoint {
    /// Index into the trunk (split *after* this layer).
    pub layer_index: usize,
    /// Layer name.
    pub layer_name: String,
    /// Bytes that must cross the network at this split (float32 activations).
    pub transfer_bytes: u64,
    /// FLOPs executed on the device (layers up to and including this one).
    pub device_flops: u64,
    /// FLOPs executed in the cloud (remaining trunk + all heads).
    pub cloud_flops: u64,
}

/// Analysis of every trunk split point of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionAnalysis {
    /// Network name.
    pub network: String,
    /// All split points in trunk order.
    pub splits: Vec<SplitPoint>,
}

impl PartitionAnalysis {
    /// Computes activation sizes and FLOP balance at every trunk layer.
    pub fn of(net: &Network) -> PartitionAnalysis {
        let total_trunk: u64 = net.trunk_layers().iter().map(|l| l.flops).sum();
        let head_flops: u64 = net.aux_layers().iter().map(|l| l.flops).sum();
        let mut device = 0u64;
        let splits = net
            .trunk_layers()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                device += l.flops;
                SplitPoint {
                    layer_index: i,
                    layer_name: l.name.clone(),
                    transfer_bytes: l.output.bytes_f32(),
                    device_flops: device,
                    cloud_flops: total_trunk - device + head_flops,
                }
            })
            .collect();
        PartitionAnalysis {
            network: net.name().to_string(),
            splits,
        }
    }

    /// The smallest transfer among split points whose device share of FLOPs
    /// is at most `max_device_fraction` (a Jetson-class budget).
    pub fn min_transfer_within_budget(&self, max_device_fraction: f64) -> Option<&SplitPoint> {
        assert!(
            (0.0..=1.0).contains(&max_device_fraction),
            "fraction must be in [0, 1]"
        );
        let total = self
            .splits
            .last()
            .map(|s| s.device_flops + s.cloud_flops)
            .unwrap_or(0) as f64;
        self.splits
            .iter()
            .filter(|s| (s.device_flops as f64) <= total * max_device_fraction)
            .min_by_key(|s| s.transfer_bytes)
    }

    /// How many split points transfer more bytes than `image_bytes`
    /// (the paper's claim: most of them, for object detectors).
    pub fn splits_larger_than_image(&self, image_bytes: u64) -> usize {
        self.splits
            .iter()
            .filter(|s| s.transfer_bytes > image_bytes)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssd300_vgg16;

    #[test]
    fn early_layers_dwarf_encoded_image() {
        let net = ssd300_vgg16(20);
        let analysis = PartitionAnalysis::of(&net);
        // conv1_1 output: 64×300×300×4 B = 23 MB, vs a ~50 KB encoded image.
        assert_eq!(analysis.splits[0].transfer_bytes, 64 * 300 * 300 * 4);
        let image_bytes = 60_000;
        let worse = analysis.splits_larger_than_image(image_bytes);
        assert!(
            worse as f64 > analysis.splits.len() as f64 * 0.5,
            "most split points ship more than the image: {worse}/{}",
            analysis.splits.len()
        );
    }

    #[test]
    fn device_flops_monotone() {
        let analysis = PartitionAnalysis::of(&ssd300_vgg16(20));
        let flops: Vec<u64> = analysis.splits.iter().map(|s| s.device_flops).collect();
        assert!(flops.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn budget_filter_respects_fraction() {
        let analysis = PartitionAnalysis::of(&ssd300_vgg16(20));
        let sp = analysis.min_transfer_within_budget(0.2).unwrap();
        let total = analysis.splits.last().unwrap().device_flops
            + analysis.splits.last().unwrap().cloud_flops;
        assert!(sp.device_flops as f64 <= 0.2 * total as f64);
    }

    #[test]
    fn full_budget_finds_global_min() {
        let analysis = PartitionAnalysis::of(&ssd300_vgg16(20));
        let sp = analysis.min_transfer_within_budget(1.0).unwrap();
        let global_min = analysis
            .splits
            .iter()
            .map(|s| s.transfer_bytes)
            .min()
            .unwrap();
        assert_eq!(sp.transfer_bytes, global_min);
    }
}
