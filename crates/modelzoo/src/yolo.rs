//! YOLOv4-family architectures for the paper's Sec. VI-C experiments.
//!
//! The big model is YOLOv4 (CSPDarknet53 backbone, SPP+PAN neck, three
//! detection scales at 416×416). The small counterpart follows the paper's
//! recipe: "select MobileNet v1 as the base network, and reduce the
//! large-scale feature map".

use crate::ssd::attach_sdlite_heads;
use crate::{Layer, Network, TensorShape};

/// Pushes one CSP stage: a strided downsampling conv followed by `n`
/// residual units (modelled as 1×1 reduce + 3×3 expand at half width).
fn csp_stage(net: &mut Network, name: &str, out_channels: usize, n: usize) -> TensorShape {
    let mut shape = net.push(
        &format!("{name}_down"),
        Layer::Conv2d {
            out_channels,
            kernel: 3,
            stride: 2,
        },
    );
    let half = out_channels / 2;
    for i in 0..n {
        net.push(
            &format!("{name}_r{i}_1"),
            Layer::PointwiseConv { out_channels: half },
        );
        shape = net.push(
            &format!("{name}_r{i}_2"),
            Layer::Conv2d {
                out_channels,
                kernel: 3,
                stride: 1,
            },
        );
    }
    shape
}

/// The big model for Sec. VI-C: YOLOv4 at 416×416 input.
///
/// Three detection scales (52², 26², 13²) with 3 anchors each. Roughly
/// 64 M parameters / ≈ 245 MB — far too heavy for a Jetson-class device,
/// which is the paper's premise for keeping it in the cloud.
///
/// # Examples
///
/// ```
/// use modelzoo::yolov4;
///
/// let net = yolov4(20);
/// assert!(net.size_mb() > 150.0);
/// ```
pub fn yolov4(num_classes: usize) -> Network {
    let mut net = Network::new("yolov4", TensorShape::new(3, 416, 416));
    net.push(
        "stem",
        Layer::Conv2d {
            out_channels: 32,
            kernel: 3,
            stride: 1,
        },
    ); // 416
    csp_stage(&mut net, "csp1", 64, 1); // 208
    csp_stage(&mut net, "csp2", 128, 2); // 104
    let map52 = csp_stage(&mut net, "csp3", 256, 8); // 52
    let map26 = csp_stage(&mut net, "csp4", 512, 8); // 26
    let map13 = csp_stage(&mut net, "csp5", 1024, 4); // 13

    // SPP + PAN neck, approximated by 1×1/3×3 conv pairs at each scale.
    net.push_aux("spp_1", Layer::PointwiseConv { out_channels: 512 }, map13);
    net.push_aux(
        "spp_2",
        Layer::Conv2d {
            out_channels: 1024,
            kernel: 3,
            stride: 1,
        },
        TensorShape::new(512, 13, 13),
    );
    net.push_aux(
        "pan_26_1",
        Layer::PointwiseConv { out_channels: 256 },
        map26,
    );
    net.push_aux(
        "pan_26_2",
        Layer::Conv2d {
            out_channels: 512,
            kernel: 3,
            stride: 1,
        },
        TensorShape::new(256, 26, 26),
    );
    net.push_aux(
        "pan_52_1",
        Layer::PointwiseConv { out_channels: 128 },
        map52,
    );
    net.push_aux(
        "pan_52_2",
        Layer::Conv2d {
            out_channels: 256,
            kernel: 3,
            stride: 1,
        },
        TensorShape::new(128, 52, 52),
    );

    // Three YOLO heads: 3 anchors × (5 + classes) channels each.
    let out_c = 3 * (5 + num_classes);
    net.push_aux(
        "head52",
        Layer::PointwiseConv {
            out_channels: out_c,
        },
        TensorShape::new(256, 52, 52),
    );
    net.push_aux(
        "head26",
        Layer::PointwiseConv {
            out_channels: out_c,
        },
        TensorShape::new(512, 26, 26),
    );
    net.push_aux(
        "head13",
        Layer::PointwiseConv {
            out_channels: out_c,
        },
        TensorShape::new(1024, 13, 13),
    );
    net
}

/// The small YOLO model: MobileNetV1 backbone, large-scale feature map
/// removed, detection on two coarse scales only.
pub fn yolo_mobilenet_small(num_classes: usize) -> Network {
    let mut net = Network::new("yolo-mnv1-small", TensorShape::new(3, 416, 416));
    let s = |c: usize| ((c as f64 * 0.75 / 8.0).round() as usize * 8).max(8);
    net.push(
        "conv1",
        Layer::Conv2d {
            out_channels: s(32),
            kernel: 3,
            stride: 2,
        },
    ); // 208
    let blocks: [(usize, usize); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2), // 26
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2), // 13
        (1024, 1),
    ];
    let mut map26 = net.output_shape();
    let mut shape = net.output_shape();
    for (i, (c, stride)) in blocks.iter().enumerate() {
        net.push(
            &format!("b{i}_dw"),
            Layer::DepthwiseConv {
                kernel: 3,
                stride: *stride,
            },
        );
        shape = net.push(
            &format!("b{i}_pw"),
            Layer::PointwiseConv {
                out_channels: s(*c),
            },
        );
        if shape.h == 26 {
            map26 = shape;
        }
    }
    let map13 = shape;
    // Two-scale SSDLite-style heads; the 52×52 (large) map is dropped,
    // mirroring the paper's small-model recipe.
    attach_sdlite_heads(
        &mut net,
        &[("b10", map26, 6), ("b12", map13, 6)],
        num_classes,
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yolov4_is_heavyweight() {
        let net = yolov4(20);
        // Real YOLOv4 ≈ 64 M params ≈ 245 MB; accept a generous band.
        assert!(
            net.size_mb() > 150.0 && net.size_mb() < 320.0,
            "{}",
            net.size_mb()
        );
        assert!(net.gflops() > 40.0, "{}", net.gflops());
    }

    #[test]
    fn yolo_scales_present() {
        let net = yolov4(20);
        assert_eq!(net.shape_of("csp3_r7_2").unwrap().h, 52);
        assert_eq!(net.shape_of("csp4_r7_2").unwrap().h, 26);
        assert_eq!(net.shape_of("csp5_r3_2").unwrap().h, 13);
    }

    #[test]
    fn small_yolo_much_smaller() {
        let big = yolov4(20);
        let small = yolo_mobilenet_small(20);
        assert!(small.pruned_percent_vs(&big) > 90.0);
        assert!(small.gflops() < big.gflops() / 10.0);
    }

    #[test]
    fn head_channels_follow_yolo_convention() {
        let net = yolov4(20);
        let head = net
            .aux_layers()
            .iter()
            .find(|l| l.name == "head13")
            .unwrap();
        assert_eq!(head.output.c, 3 * 25);
    }
}
