//! Tensor shapes for static network analysis.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A `C × H × W` activation shape (batch dimension omitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl TensorShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        assert!(
            c > 0 && h > 0 && w > 0,
            "tensor dimensions must be positive"
        );
        TensorShape { c, h, w }
    }

    /// Total element count.
    pub fn elements(&self) -> u64 {
        self.c as u64 * self.h as u64 * self.w as u64
    }

    /// Bytes occupied at float32 precision — the quantity a partitioned
    /// (Neurosurgeon-style) execution would ship over the network.
    pub fn bytes_f32(&self) -> u64 {
        self.elements() * 4
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_and_bytes() {
        let s = TensorShape::new(64, 300, 300);
        assert_eq!(s.elements(), 64 * 300 * 300);
        assert_eq!(s.bytes_f32(), 64 * 300 * 300 * 4);
        assert_eq!(format!("{s}"), "64x300x300");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = TensorShape::new(0, 1, 1);
    }
}
