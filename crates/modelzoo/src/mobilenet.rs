//! MobileNet-based small models (paper small models 2 and 3).
//!
//! Small model 2 uses Google MobileNetV1 as the base network, small model 3
//! MobileNetV2; both keep the SSD-style extra feature layers and drop the
//! 38×38 detection map, like small model 1. Heads are depthwise-separable
//! (SSDLite-style), which is what makes these models so small (Table II:
//! 11.55 MB and 6.50 MB).

use crate::ssd::attach_sdlite_heads;
use crate::{Layer, Network, TensorShape};

fn scaled(channels: usize, alpha: f64) -> usize {
    ((channels as f64 * alpha / 8.0).round() as usize * 8).max(8)
}

/// Pushes a depthwise-separable block (3×3 depthwise + 1×1 pointwise).
fn dw_block(net: &mut Network, name: &str, out_channels: usize, stride: usize) -> TensorShape {
    net.push(
        &format!("{name}_dw"),
        Layer::DepthwiseConv { kernel: 3, stride },
    );
    net.push(&format!("{name}_pw"), Layer::PointwiseConv { out_channels })
}

/// Small model 2: MobileNetV1 base network + SSD extras, no 38×38 map.
///
/// `alpha` is the width multiplier; the paper's configuration corresponds to
/// [`mobilenet_v1_ssd_paper`].
pub fn mobilenet_v1_ssd(num_classes: usize, alpha: f64) -> Network {
    assert!(alpha > 0.0 && alpha <= 1.5, "width multiplier out of range");
    let mut net = Network::new("mobilenet-v1-ssd", TensorShape::new(3, 300, 300));
    let s = |c: usize| scaled(c, alpha);

    net.push(
        "conv1",
        Layer::Conv2d {
            out_channels: s(32),
            kernel: 3,
            stride: 2,
        },
    ); // 150
    dw_block(&mut net, "block2", s(64), 1); // 150
    dw_block(&mut net, "block3", s(128), 2); // 75
    dw_block(&mut net, "block4", s(128), 1);
    dw_block(&mut net, "block5", s(256), 2); // 38
    dw_block(&mut net, "block6", s(256), 1);
    dw_block(&mut net, "block7", s(512), 2); // 19
    let mut map19 = net.output_shape();
    for i in 0..5 {
        map19 = dw_block(&mut net, &format!("block{}", 8 + i), s(512), 1);
    }
    dw_block(&mut net, "block13", s(1024), 2); // 10
    let map10 = dw_block(&mut net, "block14", s(1024), 1); // 10

    // SSD-style extra feature layers (reduced widths as in small model 1).
    net.push("extra1_1", Layer::PointwiseConv { out_channels: 128 });
    let map5 = net.push(
        "extra1_2",
        Layer::Conv2d {
            out_channels: 256,
            kernel: 3,
            stride: 2,
        },
    );
    net.push("extra2_1", Layer::PointwiseConv { out_channels: 64 });
    let map3 = net.push(
        "extra2_2",
        Layer::Conv2dValid {
            out_channels: 128,
            kernel: 3,
        },
    );
    net.push("extra3_1", Layer::PointwiseConv { out_channels: 64 });
    let map1 = net.push(
        "extra3_2",
        Layer::Conv2dValid {
            out_channels: 128,
            kernel: 3,
        },
    );

    attach_sdlite_heads(
        &mut net,
        &[
            ("block12", map19, 6),
            ("block14", map10, 6),
            ("extra1_2", map5, 6),
            ("extra2_2", map3, 4),
            ("extra3_2", map1, 4),
        ],
        num_classes,
    );
    net
}

/// Small model 2 at the width the paper's Table II row implies (≈ 11.55 MB).
pub fn mobilenet_v1_ssd_paper(num_classes: usize) -> Network {
    mobilenet_v1_ssd(num_classes, 0.85)
}

/// Pushes an inverted-residual (MobileNetV2) block.
fn inverted_residual(
    net: &mut Network,
    name: &str,
    out_channels: usize,
    expansion: usize,
    stride: usize,
) -> TensorShape {
    let in_c = net.output_shape().c;
    if expansion != 1 {
        net.push(
            &format!("{name}_expand"),
            Layer::PointwiseConv {
                out_channels: in_c * expansion,
            },
        );
    }
    net.push(
        &format!("{name}_dw"),
        Layer::DepthwiseConv { kernel: 3, stride },
    );
    net.push(
        &format!("{name}_project"),
        Layer::PointwiseConv { out_channels },
    )
}

/// Small model 3: MobileNetV2 base network + SSD extras, no 38×38 map.
pub fn mobilenet_v2_ssd(num_classes: usize, alpha: f64) -> Network {
    assert!(alpha > 0.0 && alpha <= 1.5, "width multiplier out of range");
    let mut net = Network::new("mobilenet-v2-ssd", TensorShape::new(3, 300, 300));
    let s = |c: usize| scaled(c, alpha);

    net.push(
        "conv1",
        Layer::Conv2d {
            out_channels: s(32),
            kernel: 3,
            stride: 2,
        },
    ); // 150
    inverted_residual(&mut net, "b1", s(16), 1, 1); // 150
    inverted_residual(&mut net, "b2", s(24), 6, 2); // 75
    inverted_residual(&mut net, "b3", s(24), 6, 1);
    inverted_residual(&mut net, "b4", s(32), 6, 2); // 38
    inverted_residual(&mut net, "b5", s(32), 6, 1);
    inverted_residual(&mut net, "b6", s(32), 6, 1);
    inverted_residual(&mut net, "b7", s(64), 6, 2); // 19
    inverted_residual(&mut net, "b8", s(64), 6, 1);
    inverted_residual(&mut net, "b9", s(64), 6, 1);
    inverted_residual(&mut net, "b10", s(64), 6, 1);
    inverted_residual(&mut net, "b11", s(96), 6, 1);
    inverted_residual(&mut net, "b12", s(96), 6, 1);
    let map19 = inverted_residual(&mut net, "b13", s(96), 6, 1); // 19
    inverted_residual(&mut net, "b14", s(160), 6, 2); // 10
    inverted_residual(&mut net, "b15", s(160), 6, 1);
    inverted_residual(&mut net, "b16", s(320), 6, 1);
    let map10 = net.push(
        "conv_last",
        Layer::PointwiseConv {
            out_channels: s(640),
        },
    ); // 10

    net.push("extra1_1", Layer::PointwiseConv { out_channels: 96 });
    let map5 = net.push(
        "extra1_2",
        Layer::Conv2d {
            out_channels: 192,
            kernel: 3,
            stride: 2,
        },
    );
    net.push("extra2_1", Layer::PointwiseConv { out_channels: 48 });
    let map3 = net.push(
        "extra2_2",
        Layer::Conv2dValid {
            out_channels: 96,
            kernel: 3,
        },
    );
    net.push("extra3_1", Layer::PointwiseConv { out_channels: 48 });
    let map1 = net.push(
        "extra3_2",
        Layer::Conv2dValid {
            out_channels: 96,
            kernel: 3,
        },
    );

    attach_sdlite_heads(
        &mut net,
        &[
            ("b13", map19, 6),
            ("conv_last", map10, 6),
            ("extra1_2", map5, 6),
            ("extra2_2", map3, 4),
            ("extra3_2", map1, 4),
        ],
        num_classes,
    );
    net
}

/// Small model 3 at the width the paper's Table II row implies (≈ 6.50 MB).
pub fn mobilenet_v2_ssd_paper(num_classes: usize) -> Network {
    mobilenet_v2_ssd(num_classes, 0.9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssd300_vgg16;

    #[test]
    fn v1_smaller_than_vgg_lite_bigger_than_v2() {
        let s1 = crate::vgg_lite_ssd(20);
        let s2 = mobilenet_v1_ssd_paper(20);
        let s3 = mobilenet_v2_ssd_paper(20);
        assert!(
            s2.size_mb() < s1.size_mb(),
            "{} < {}",
            s2.size_mb(),
            s1.size_mb()
        );
        assert!(
            s3.size_mb() < s2.size_mb(),
            "{} < {}",
            s3.size_mb(),
            s2.size_mb()
        );
    }

    #[test]
    fn pruned_above_80_percent() {
        let big = ssd300_vgg16(20);
        for net in [mobilenet_v1_ssd_paper(20), mobilenet_v2_ssd_paper(20)] {
            let pruned = net.pruned_percent_vs(&big);
            assert!(pruned > 80.0, "{} pruned {pruned:.2}%", net.name());
        }
    }

    #[test]
    fn v2_cheapest_flops() {
        let s1 = crate::vgg_lite_ssd(20);
        let s2 = mobilenet_v1_ssd_paper(20);
        let s3 = mobilenet_v2_ssd_paper(20);
        assert!(s3.gflops() < s2.gflops());
        assert!(s3.gflops() < s1.gflops());
    }

    #[test]
    fn width_multiplier_scales_size() {
        let half = mobilenet_v1_ssd(20, 0.5);
        let full = mobilenet_v1_ssd(20, 1.0);
        assert!(half.size_mb() < full.size_mb());
    }

    #[test]
    fn backbone_ends_at_10x10() {
        let net = mobilenet_v1_ssd_paper(20);
        assert_eq!(net.shape_of("block14_pw").unwrap().h, 10);
        assert_eq!(net.shape_of("extra3_2").unwrap().h, 1);
    }
}
