//! Automatic small-model generation — the paper's Sec. VII future work.
//!
//! "In the future, we will design automatic object detection model
//! compression, that is, the users only need to select the object detection
//! models in the cloud, and then a lightweight object detection model
//! suitable for given edge devices … can be automatically obtained."
//!
//! This module implements the storage/compute-budgeted search over the
//! MobileNet width multiplier: given an edge device's budget, it finds the
//! widest (most accurate) small model that fits.

use crate::{mobilenet_v1_ssd, mobilenet_v2_ssd, Network};
use serde::{Deserialize, Serialize};

/// Which base network family to search over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompressBase {
    /// MobileNetV1-SSD (the paper's small model 2 family).
    MobileNetV1,
    /// MobileNetV2-SSD (the paper's small model 3 family).
    MobileNetV2,
}

/// The budget a candidate small model must fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeBudget {
    /// Maximum model size in MB (storage on the edge device).
    pub max_size_mb: f64,
    /// Maximum compute in GFLOPs per frame (optional).
    pub max_gflops: Option<f64>,
}

impl EdgeBudget {
    /// A size-only budget.
    pub fn size_mb(max_size_mb: f64) -> Self {
        EdgeBudget {
            max_size_mb,
            max_gflops: None,
        }
    }

    fn admits(&self, net: &Network) -> bool {
        net.size_mb() <= self.max_size_mb
            && self.max_gflops.map(|g| net.gflops() <= g).unwrap_or(true)
    }
}

/// A found compression point.
#[derive(Debug, Clone)]
pub struct Compressed {
    /// The chosen width multiplier.
    pub alpha: f64,
    /// The resulting network.
    pub network: Network,
}

fn build(base: CompressBase, num_classes: usize, alpha: f64) -> Network {
    match base {
        CompressBase::MobileNetV1 => mobilenet_v1_ssd(num_classes, alpha),
        CompressBase::MobileNetV2 => mobilenet_v2_ssd(num_classes, alpha),
    }
}

/// Finds the widest width multiplier whose network fits the budget.
///
/// Searches `alpha ∈ [0.1, 1.5]` by bisection (model size is monotone in the
/// width multiplier). Returns `None` when even the narrowest candidate
/// exceeds the budget.
///
/// # Examples
///
/// ```
/// use modelzoo::{compress_to_budget, CompressBase, EdgeBudget};
///
/// // Reproduce (approximately) the paper's small model 2 from its budget:
/// let found = compress_to_budget(CompressBase::MobileNetV1, 20, EdgeBudget::size_mb(12.0))
///     .expect("12 MB is feasible");
/// assert!(found.network.size_mb() <= 12.0);
/// assert!((found.alpha - 0.85).abs() < 0.15);
/// ```
///
/// # Panics
///
/// Panics if `num_classes == 0` or the budget is non-positive.
pub fn compress_to_budget(
    base: CompressBase,
    num_classes: usize,
    budget: EdgeBudget,
) -> Option<Compressed> {
    assert!(num_classes > 0, "need at least one class");
    assert!(budget.max_size_mb > 0.0, "budget must be positive");
    let (mut lo, mut hi) = (0.1f64, 1.5f64);
    if !budget.admits(&build(base, num_classes, lo)) {
        return None;
    }
    // If even the widest fits, take it.
    if budget.admits(&build(base, num_classes, hi)) {
        return Some(Compressed {
            alpha: hi,
            network: build(base, num_classes, hi),
        });
    }
    for _ in 0..24 {
        let mid = (lo + hi) / 2.0;
        if budget.admits(&build(base, num_classes, mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(Compressed {
        alpha: lo,
        network: build(base, num_classes, lo),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_paper_small_model_2() {
        let c =
            compress_to_budget(CompressBase::MobileNetV1, 20, EdgeBudget::size_mb(12.05)).unwrap();
        assert!(c.network.size_mb() <= 12.05);
        // the paper configuration uses alpha 0.85 at ~12 MB
        assert!((0.7..=1.0).contains(&c.alpha), "alpha {}", c.alpha);
    }

    #[test]
    fn recovers_paper_small_model_3() {
        let c =
            compress_to_budget(CompressBase::MobileNetV2, 20, EdgeBudget::size_mb(7.1)).unwrap();
        assert!(c.network.size_mb() <= 7.1);
        assert!((0.75..=1.05).contains(&c.alpha), "alpha {}", c.alpha);
    }

    #[test]
    fn infeasible_budget_returns_none() {
        assert!(
            compress_to_budget(CompressBase::MobileNetV1, 20, EdgeBudget::size_mb(0.5)).is_none()
        );
    }

    #[test]
    fn generous_budget_takes_widest() {
        let c =
            compress_to_budget(CompressBase::MobileNetV1, 20, EdgeBudget::size_mb(500.0)).unwrap();
        assert!((c.alpha - 1.5).abs() < 1e-9);
    }

    #[test]
    fn flops_constraint_binds() {
        let size_only =
            compress_to_budget(CompressBase::MobileNetV1, 20, EdgeBudget::size_mb(30.0)).unwrap();
        let tight = compress_to_budget(
            CompressBase::MobileNetV1,
            20,
            EdgeBudget {
                max_size_mb: 30.0,
                max_gflops: Some(1.0),
            },
        )
        .unwrap();
        assert!(tight.alpha < size_only.alpha);
        assert!(tight.network.gflops() <= 1.0);
    }

    #[test]
    fn result_is_monotone_in_budget() {
        let small =
            compress_to_budget(CompressBase::MobileNetV2, 20, EdgeBudget::size_mb(4.0)).unwrap();
        let large =
            compress_to_budget(CompressBase::MobileNetV2, 20, EdgeBudget::size_mb(9.0)).unwrap();
        assert!(small.alpha <= large.alpha);
        assert!(small.network.size_mb() <= large.network.size_mb());
    }
}
