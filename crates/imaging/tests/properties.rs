//! Property-based tests for imaging invariants.

use imaging::{
    brenner_gradient, encoded_size_bytes, gaussian_blur, gaussian_kernel, render, GrayImage,
    RenderSpec, CODEC_HEADER_BYTES,
};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = GrayImage> {
    (4usize..40, 4usize..40, any::<u64>()).prop_map(|(w, h, seed)| {
        // cheap deterministic pseudo-random fill
        let mut pixels = Vec::with_capacity(w * h);
        let mut s = seed | 1;
        for _ in 0..w * h {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            pixels.push((s >> 33) as u8);
        }
        GrayImage::from_pixels(w, h, pixels)
    })
}

proptest! {
    #[test]
    fn kernel_sums_to_one(sigma in 0.2f64..5.0) {
        let k = gaussian_kernel(sigma);
        prop_assert!((k.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(k.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn blur_preserves_dimensions_and_range(img in arb_image(), sigma in 0.0f64..4.0) {
        let b = gaussian_blur(&img, sigma);
        prop_assert_eq!(b.width(), img.width());
        prop_assert_eq!(b.height(), img.height());
    }

    #[test]
    fn blur_never_expands_intensity_range(img in arb_image(), sigma in 0.1f64..4.0) {
        let lo_in = *img.as_bytes().iter().min().unwrap();
        let hi_in = *img.as_bytes().iter().max().unwrap();
        let b = gaussian_blur(&img, sigma);
        let lo_out = *b.as_bytes().iter().min().unwrap();
        let hi_out = *b.as_bytes().iter().max().unwrap();
        // rounding tolerance of 1
        prop_assert!(lo_out + 1 >= lo_in);
        prop_assert!(hi_out <= hi_in.saturating_add(1));
    }

    #[test]
    fn sharpness_non_negative(img in arb_image()) {
        prop_assert!(brenner_gradient(&img) >= 0.0);
    }

    #[test]
    fn encoded_size_at_least_header(img in arb_image()) {
        prop_assert!(encoded_size_bytes(&img) >= CODEC_HEADER_BYTES);
    }

    #[test]
    fn encoded_size_at_most_raw_plus_header(img in arb_image()) {
        // entropy coding can't exceed 8 bits/pixel in this model
        prop_assert!(encoded_size_bytes(&img) <= CODEC_HEADER_BYTES + img.len() + 1);
    }

    #[test]
    fn render_deterministic(seed in any::<u64>()) {
        let spec = RenderSpec::empty(24, 24, seed);
        prop_assert_eq!(render(&spec), render(&spec));
    }

    #[test]
    fn downscale_dimensions(img in arb_image(), factor in 1usize..4) {
        prop_assume!(factor <= img.width() && factor <= img.height());
        let d = img.downscale(factor);
        prop_assert_eq!(d.width(), img.width() / factor);
        prop_assert_eq!(d.height(), img.height() / factor);
    }
}
