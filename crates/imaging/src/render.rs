//! Deterministic synthetic scene renderer.
//!
//! Renders a camera frame from a scene description: a textured background plus
//! one textured rectangle per annotated object, followed by global camera
//! effects (defocus blur, sensor noise, illumination). The renderer exists so
//! that pixel-level baselines — the Brenner-gradient upload strategy and the
//! encoded-size model for network transfer — operate on real rasters whose
//! statistics co-vary with scene difficulty, exactly as in the paper's HELMET
//! footage (blur, water stains, insufficient light).

use crate::{add_gaussian_noise, gaussian_blur, scale_illumination, GrayImage};
use detcore::BBox;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How one object is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectRenderSpec {
    /// Object extent in normalised coordinates.
    pub bbox: BBox,
    /// Seed for the object's texture (deterministic).
    pub texture_seed: u64,
    /// Mean intensity of the object's texture.
    pub base_intensity: u8,
}

/// A full frame description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderSpec {
    /// Output width in pixels.
    pub width: usize,
    /// Output height in pixels.
    pub height: usize,
    /// Seed for the background texture.
    pub background_seed: u64,
    /// Objects, drawn in order (later objects overdraw earlier ones).
    pub objects: Vec<ObjectRenderSpec>,
    /// Camera defocus blur sigma in pixels (0 = sharp).
    pub blur_sigma: f64,
    /// Sensor noise standard deviation (0 = clean).
    pub noise_std: f64,
    /// Illumination gain (1 = nominal, < 1 = dark scene).
    pub illumination: f64,
    /// Seed for the sensor-noise draw.
    pub noise_seed: u64,
}

impl RenderSpec {
    /// A clean, well-lit frame of the given size with no objects.
    pub fn empty(width: usize, height: usize, background_seed: u64) -> Self {
        RenderSpec {
            width,
            height,
            background_seed,
            objects: Vec::new(),
            blur_sigma: 0.0,
            noise_std: 0.0,
            illumination: 1.0,
            noise_seed: background_seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// splitmix64-style integer mixer for deterministic procedural textures.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash-based value noise in `[0, 255]` for lattice cell `(cx, cy)`.
#[inline]
fn lattice_value(seed: u64, cx: i64, cy: i64) -> f64 {
    let h = mix(seed
        ^ (cx as u64).wrapping_mul(0x517c_c1b7_2722_0a95)
        ^ (cy as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    (h & 0xff) as f64
}

/// Smooth value noise at pixel `(x, y)` with the given cell size.
fn value_noise(seed: u64, x: usize, y: usize, cell: usize) -> f64 {
    let fx = x as f64 / cell as f64;
    let fy = y as f64 / cell as f64;
    let cx = fx.floor() as i64;
    let cy = fy.floor() as i64;
    let tx = fx - cx as f64;
    let ty = fy - cy as f64;
    // smoothstep interpolation between the four corners
    let sx = tx * tx * (3.0 - 2.0 * tx);
    let sy = ty * ty * (3.0 - 2.0 * ty);
    let v00 = lattice_value(seed, cx, cy);
    let v10 = lattice_value(seed, cx + 1, cy);
    let v01 = lattice_value(seed, cx, cy + 1);
    let v11 = lattice_value(seed, cx + 1, cy + 1);
    let a = v00 + (v10 - v00) * sx;
    let b = v01 + (v11 - v01) * sx;
    a + (b - a) * sy
}

/// Renders a frame from a [`RenderSpec`].
///
/// The output is deterministic: the same spec always yields the same pixels.
///
/// # Examples
///
/// ```
/// use imaging::{render, RenderSpec};
///
/// let spec = RenderSpec::empty(64, 48, 42);
/// let a = render(&spec);
/// let b = render(&spec);
/// assert_eq!(a, b);
/// assert_eq!(a.width(), 64);
/// ```
///
/// # Panics
///
/// Panics if the spec has a zero dimension.
pub fn render(spec: &RenderSpec) -> GrayImage {
    assert!(
        spec.width > 0 && spec.height > 0,
        "frame dimensions must be positive"
    );
    let mut img = GrayImage::new(spec.width, spec.height);
    // Background: two octaves of value noise around mid-grey.
    for y in 0..spec.height {
        for x in 0..spec.width {
            let coarse = value_noise(spec.background_seed, x, y, 24);
            let fine = value_noise(spec.background_seed ^ 0xabcd, x, y, 5);
            let v = 70.0 + 0.45 * coarse + 0.25 * fine;
            img.set(x, y, v.round().clamp(0.0, 255.0) as u8);
        }
    }
    // Objects: textured rectangles with a contrasting border.
    for obj in &spec.objects {
        let (x0, y0, x1, y1) = obj.bbox.to_pixels(spec.width, spec.height);
        if x1 <= x0 || y1 <= y0 {
            continue;
        }
        let border = (((x1 - x0).min(y1 - y0)) / 8).max(1);
        for y in y0..y1 {
            for x in x0..x1 {
                let on_border =
                    x < x0 + border || x >= x1 - border || y < y0 + border || y >= y1 - border;
                let tex = value_noise(obj.texture_seed, x - x0, y - y0, 4);
                let base = obj.base_intensity as f64;
                let v = if on_border {
                    // strong edge: objects contribute high-frequency content
                    255.0 - base * 0.8
                } else {
                    base * 0.7 + tex * 0.3
                };
                img.set(x, y, v.round().clamp(0.0, 255.0) as u8);
            }
        }
    }
    // Camera effects, in physical order: optics blur, illumination, sensor noise.
    let mut out = gaussian_blur(&img, spec.blur_sigma);
    if (spec.illumination - 1.0).abs() > f64::EPSILON {
        out = scale_illumination(&out, spec.illumination);
    }
    if spec.noise_std > 0.0 {
        let mut rng = StdRng::seed_from_u64(spec.noise_seed);
        out = add_gaussian_noise(&out, spec.noise_std, &mut rng);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brenner_gradient;

    fn obj(x0: f64, y0: f64, x1: f64, y1: f64, seed: u64) -> ObjectRenderSpec {
        ObjectRenderSpec {
            bbox: BBox::new(x0, y0, x1, y1).unwrap(),
            texture_seed: seed,
            base_intensity: 180,
        }
    }

    #[test]
    fn render_is_deterministic() {
        let mut spec = RenderSpec::empty(48, 48, 7);
        spec.objects.push(obj(0.2, 0.2, 0.7, 0.7, 9));
        spec.blur_sigma = 1.0;
        spec.noise_std = 4.0;
        assert_eq!(render(&spec), render(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let a = render(&RenderSpec::empty(32, 32, 1));
        let b = render(&RenderSpec::empty(32, 32, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn objects_change_pixels_inside_bbox() {
        let empty = render(&RenderSpec::empty(64, 64, 5));
        let mut spec = RenderSpec::empty(64, 64, 5);
        spec.objects.push(obj(0.25, 0.25, 0.75, 0.75, 11));
        let with_obj = render(&spec);
        assert_ne!(empty.get(32, 32), with_obj.get(32, 32));
        // outside the box, pixels are untouched
        assert_eq!(empty.get(2, 2), with_obj.get(2, 2));
    }

    #[test]
    fn blur_lowers_brenner_score() {
        let mut sharp = RenderSpec::empty(64, 64, 5);
        sharp.objects.push(obj(0.1, 0.1, 0.9, 0.9, 3));
        let mut blurry = sharp.clone();
        blurry.blur_sigma = 3.0;
        assert!(brenner_gradient(&render(&sharp)) > brenner_gradient(&render(&blurry)));
    }

    #[test]
    fn illumination_darkens() {
        let mut dark = RenderSpec::empty(32, 32, 5);
        dark.illumination = 0.4;
        let bright = RenderSpec::empty(32, 32, 5);
        assert!(render(&dark).mean() < render(&bright).mean());
    }

    #[test]
    fn degenerate_object_bbox_is_skipped() {
        let mut spec = RenderSpec::empty(32, 32, 5);
        spec.objects.push(obj(0.5, 0.5, 0.5, 0.5, 3));
        // must not panic; image equals the empty render
        let a = render(&spec);
        let b = render(&RenderSpec::empty(32, 32, 5));
        assert_eq!(a, b);
    }
}
