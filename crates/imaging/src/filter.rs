//! Image filters: Gaussian blur and sensor noise.

use crate::GrayImage;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Builds a normalised 1-D Gaussian kernel for the given sigma.
///
/// The radius is `ceil(3 sigma)`, covering > 99.7 % of the mass.
///
/// # Panics
///
/// Panics if `sigma <= 0` or is not finite.
pub fn gaussian_kernel(sigma: f64) -> Vec<f64> {
    assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as i64;
    let mut kernel = Vec::with_capacity((2 * radius + 1) as usize);
    let denom = 2.0 * sigma * sigma;
    for i in -radius..=radius {
        kernel.push((-(i * i) as f64 / denom).exp());
    }
    let sum: f64 = kernel.iter().sum();
    for k in &mut kernel {
        *k /= sum;
    }
    kernel
}

fn convolve_1d(
    src: &[f64],
    width: usize,
    height: usize,
    kernel: &[f64],
    horizontal: bool,
) -> Vec<f64> {
    let radius = (kernel.len() / 2) as i64;
    let mut out = vec![0.0; src.len()];
    for y in 0..height as i64 {
        for x in 0..width as i64 {
            let mut acc = 0.0;
            for (ki, &k) in kernel.iter().enumerate() {
                let off = ki as i64 - radius;
                let (sx, sy) = if horizontal {
                    (x + off, y)
                } else {
                    (x, y + off)
                };
                // clamp-to-edge boundary
                let sx = sx.clamp(0, width as i64 - 1);
                let sy = sy.clamp(0, height as i64 - 1);
                acc += k * src[(sy * width as i64 + sx) as usize];
            }
            out[(y * width as i64 + x) as usize] = acc;
        }
    }
    out
}

/// Applies separable Gaussian blur with the given sigma (in pixels).
///
/// Uses clamp-to-edge boundary handling. `sigma == 0` returns a copy.
///
/// # Examples
///
/// ```
/// use imaging::{gaussian_blur, GrayImage};
///
/// let mut img = GrayImage::new(32, 32);
/// img.set(16, 16, 255);
/// let blurred = gaussian_blur(&img, 2.0);
/// assert!(blurred.get(16, 16) < 255); // energy spread out
/// assert!(blurred.get(17, 16) > 0);
/// ```
///
/// # Panics
///
/// Panics if `sigma` is negative or not finite.
pub fn gaussian_blur(img: &GrayImage, sigma: f64) -> GrayImage {
    assert!(
        sigma.is_finite() && sigma >= 0.0,
        "sigma must be non-negative"
    );
    if sigma == 0.0 {
        return img.clone();
    }
    let kernel = gaussian_kernel(sigma);
    let (w, h) = (img.width(), img.height());
    let src: Vec<f64> = img.as_bytes().iter().map(|&p| p as f64).collect();
    let tmp = convolve_1d(&src, w, h, &kernel, true);
    let out = convolve_1d(&tmp, w, h, &kernel, false);
    GrayImage::from_pixels(
        w,
        h,
        out.into_iter()
            .map(|v| v.round().clamp(0.0, 255.0) as u8)
            .collect(),
    )
}

/// Adds zero-mean Gaussian sensor noise with the given standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative or not finite.
pub fn add_gaussian_noise<R: Rng + ?Sized>(
    img: &GrayImage,
    std_dev: f64,
    rng: &mut R,
) -> GrayImage {
    assert!(
        std_dev.is_finite() && std_dev >= 0.0,
        "std_dev must be non-negative"
    );
    if std_dev == 0.0 {
        return img.clone();
    }
    let normal = Normal::new(0.0, std_dev).expect("validated std_dev");
    let pixels = img
        .as_bytes()
        .iter()
        .map(|&p| (p as f64 + normal.sample(rng)).round().clamp(0.0, 255.0) as u8)
        .collect();
    GrayImage::from_pixels(img.width(), img.height(), pixels)
}

/// Applies a global illumination scale (e.g. insufficient light on a building
/// site): `out = in * gain`, clamped.
///
/// # Panics
///
/// Panics if `gain` is negative or not finite.
pub fn scale_illumination(img: &GrayImage, gain: f64) -> GrayImage {
    assert!(gain.is_finite() && gain >= 0.0, "gain must be non-negative");
    let pixels = img
        .as_bytes()
        .iter()
        .map(|&p| (p as f64 * gain).round().clamp(0.0, 255.0) as u8)
        .collect();
    GrayImage::from_pixels(img.width(), img.height(), pixels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kernel_normalised_and_symmetric() {
        for sigma in [0.5, 1.0, 2.5] {
            let k = gaussian_kernel(sigma);
            assert!((k.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert_eq!(k.len() % 2, 1);
            for i in 0..k.len() / 2 {
                assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-12);
            }
            // centre is the max
            let mid = k[k.len() / 2];
            assert!(k.iter().all(|&v| v <= mid + 1e-12));
        }
    }

    #[test]
    fn blur_preserves_flat_image() {
        let img = GrayImage::filled(16, 16, 77);
        let b = gaussian_blur(&img, 1.5);
        assert!(b.as_bytes().iter().all(|&p| (p as i32 - 77).abs() <= 1));
    }

    #[test]
    fn blur_zero_sigma_is_identity() {
        let mut img = GrayImage::new(8, 8);
        img.set(3, 3, 200);
        assert_eq!(gaussian_blur(&img, 0.0), img);
    }

    #[test]
    fn blur_reduces_variance() {
        let mut img = GrayImage::new(32, 32);
        // checkerboard = maximal high-frequency content
        for y in 0..32 {
            for x in 0..32 {
                img.set(x, y, if (x + y) % 2 == 0 { 0 } else { 255 });
            }
        }
        let b = gaussian_blur(&img, 2.0);
        assert!(b.variance() < img.variance() / 10.0);
    }

    #[test]
    fn blur_approximately_preserves_mean() {
        let mut img = GrayImage::new(24, 24);
        let mut v: u8 = 13;
        img.map_in_place(|_| {
            v = v.wrapping_mul(31).wrapping_add(7);
            v
        });
        let b = gaussian_blur(&img, 1.0);
        assert!((b.mean() - img.mean()).abs() < 2.0);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let img = GrayImage::filled(16, 16, 128);
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let n1 = add_gaussian_noise(&img, 10.0, &mut r1);
        let n2 = add_gaussian_noise(&img, 10.0, &mut r2);
        assert_eq!(n1, n2);
        let mut r3 = StdRng::seed_from_u64(8);
        let n3 = add_gaussian_noise(&img, 10.0, &mut r3);
        assert_ne!(n1, n3);
    }

    #[test]
    fn noise_zero_is_identity() {
        let img = GrayImage::filled(8, 8, 50);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(add_gaussian_noise(&img, 0.0, &mut rng), img);
    }

    #[test]
    fn illumination_scaling() {
        let img = GrayImage::filled(4, 4, 100);
        let darker = scale_illumination(&img, 0.5);
        assert_eq!(darker.get(0, 0), 50);
        let clipped = scale_illumination(&img, 10.0);
        assert_eq!(clipped.get(0, 0), 255);
    }
}
