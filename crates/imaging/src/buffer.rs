//! Grayscale raster image buffer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An 8-bit grayscale image stored row-major.
///
/// The edge camera in the paper's pipeline produces frames; this buffer is the
/// in-memory representation that the Brenner-gradient baseline and the
/// encoded-size model operate on.
///
/// # Examples
///
/// ```
/// use imaging::GrayImage;
///
/// let mut img = GrayImage::filled(64, 48, 128);
/// img.set(10, 20, 255);
/// assert_eq!(img.get(10, 20), 255);
/// assert_eq!(img.get(0, 0), 128);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, 0)
    }

    /// Creates an image filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        GrayImage {
            width,
            height,
            pixels: vec![value; width * height],
        }
    }

    /// Creates an image from raw row-major pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or a dimension is zero.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        GrayImage {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// Always `false` (dimensions are positive by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Raw pixel slice, row-major.
    pub fn as_bytes(&self) -> &[u8] {
        &self.pixels
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Pixel at `(x, y)` or `None` when out of bounds.
    #[inline]
    pub fn try_get(&self, x: usize, y: usize) -> Option<u8> {
        if x < self.width && y < self.height {
            Some(self.pixels[y * self.width + x])
        } else {
            None
        }
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// One row of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    pub fn row(&self, y: usize) -> &[u8] {
        assert!(y < self.height, "row out of bounds");
        &self.pixels[y * self.width..(y + 1) * self.width]
    }

    /// Applies `f` to every pixel value in place.
    pub fn map_in_place<F: FnMut(u8) -> u8>(&mut self, mut f: F) {
        for p in &mut self.pixels {
            *p = f(*p);
        }
    }

    /// Mean pixel intensity in `[0, 255]`.
    pub fn mean(&self) -> f64 {
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }

    /// Pixel intensity variance.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.pixels
            .iter()
            .map(|&p| {
                let d = p as f64 - m;
                d * d
            })
            .sum::<f64>()
            / self.pixels.len() as f64
    }

    /// Histogram of pixel intensities (256 bins).
    pub fn histogram(&self) -> [u64; 256] {
        let mut h = [0u64; 256];
        for &p in &self.pixels {
            h[p as usize] += 1;
        }
        h
    }

    /// Shannon entropy of the intensity histogram, in bits per pixel.
    pub fn entropy(&self) -> f64 {
        let h = self.histogram();
        let n = self.pixels.len() as f64;
        let mut e = 0.0;
        for &c in &h {
            if c > 0 {
                let p = c as f64 / n;
                e -= p * p.log2();
            }
        }
        e
    }

    /// Downscales by integer factor using box averaging.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or not smaller than both dimensions.
    pub fn downscale(&self, factor: usize) -> GrayImage {
        assert!(factor > 0, "factor must be positive");
        assert!(
            factor <= self.width && factor <= self.height,
            "factor exceeds image size"
        );
        let w = self.width / factor;
        let h = self.height / factor;
        let mut out = GrayImage::new(w, h);
        for oy in 0..h {
            for ox in 0..w {
                let mut sum = 0u32;
                for dy in 0..factor {
                    for dx in 0..factor {
                        sum += self.get(ox * factor + dx, oy * factor + dy) as u32;
                    }
                }
                out.set(ox, oy, (sum / (factor * factor) as u32) as u8);
            }
        }
        out
    }
}

impl fmt::Debug for GrayImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GrayImage")
            .field("width", &self.width)
            .field("height", &self.height)
            .field("mean", &format!("{:.1}", self.mean()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = GrayImage::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.len(), 12);
        img.set(3, 2, 200);
        assert_eq!(img.get(3, 2), 200);
        assert_eq!(img.try_get(4, 0), None);
        assert_eq!(img.try_get(3, 2), Some(200));
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zero_dims_panic() {
        let _ = GrayImage::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn bad_buffer_len_panics() {
        let _ = GrayImage::from_pixels(2, 2, vec![0, 1, 2]);
    }

    #[test]
    fn mean_and_variance() {
        let img = GrayImage::from_pixels(2, 2, vec![0, 0, 255, 255]);
        assert!((img.mean() - 127.5).abs() < 1e-9);
        assert!((img.variance() - 127.5 * 127.5).abs() < 1e-9);
        let flat = GrayImage::filled(5, 5, 42);
        assert_eq!(flat.variance(), 0.0);
    }

    #[test]
    fn entropy_bounds() {
        let flat = GrayImage::filled(8, 8, 100);
        assert_eq!(flat.entropy(), 0.0);
        let mut img = GrayImage::new(16, 16);
        let mut v = 0u8;
        img.map_in_place(|_| {
            v = v.wrapping_add(1);
            v
        });
        let e = img.entropy();
        assert!(e > 0.0 && e <= 8.0);
    }

    #[test]
    fn histogram_sums_to_len() {
        let img = GrayImage::from_pixels(2, 3, vec![1, 1, 2, 3, 3, 3]);
        let h = img.histogram();
        assert_eq!(h.iter().sum::<u64>(), 6);
        assert_eq!(h[3], 3);
    }

    #[test]
    fn downscale_averages() {
        let img = GrayImage::from_pixels(2, 2, vec![0, 100, 100, 200]);
        let d = img.downscale(2);
        assert_eq!(d.width(), 1);
        assert_eq!(d.height(), 1);
        assert_eq!(d.get(0, 0), 100);
    }

    #[test]
    fn rows_are_contiguous() {
        let img = GrayImage::from_pixels(3, 2, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(img.row(0), &[1, 2, 3]);
        assert_eq!(img.row(1), &[4, 5, 6]);
    }
}
