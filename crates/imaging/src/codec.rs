//! Encoded-image size model: how many bytes a frame occupies on the wire.
//!
//! The paper's framework uploads *whole images* to the cloud, so the byte
//! size of an encoded frame is what the WLAN link actually carries. We model
//! a lossless DPCM-style encoder: each pixel is predicted from its left
//! neighbour and the residuals are entropy-coded, so the size is
//! `header + ceil(n_pixels × H_residual / 8)` where `H_residual` is the
//! Shannon entropy of the residual histogram. Smooth/blurred frames compress
//! better; textured, sharp frames cost more — matching real codecs closely
//! enough for bandwidth accounting.

use crate::GrayImage;

/// Fixed per-image container overhead in bytes (headers, tables).
pub const CODEC_HEADER_BYTES: usize = 620;

/// Entropy (bits/pixel) of the horizontal-DPCM residuals of an image.
///
/// The first pixel of each row is predicted as 128.
pub fn residual_entropy_bits(img: &GrayImage) -> f64 {
    let mut hist = [0u64; 256];
    let mut n = 0u64;
    for y in 0..img.height() {
        let row = img.row(y);
        let mut prev = 128u8;
        for &p in row {
            let residual = p.wrapping_sub(prev);
            hist[residual as usize] += 1;
            n += 1;
            prev = p;
        }
    }
    let n = n as f64;
    let mut e = 0.0;
    for &c in &hist {
        if c > 0 {
            let p = c as f64 / n;
            e -= p * p.log2();
        }
    }
    e
}

/// Estimated encoded size of the frame in bytes.
///
/// # Examples
///
/// ```
/// use imaging::{encoded_size_bytes, gaussian_blur, GrayImage, render, RenderSpec};
///
/// let frame = render(&RenderSpec::empty(320, 240, 3));
/// let sharp = encoded_size_bytes(&frame);
/// let soft = encoded_size_bytes(&gaussian_blur(&frame, 3.0));
/// assert!(soft <= sharp); // blurred frames compress better
/// ```
pub fn encoded_size_bytes(img: &GrayImage) -> usize {
    let bits = residual_entropy_bits(img) * img.len() as f64;
    CODEC_HEADER_BYTES + (bits / 8.0).ceil() as usize
}

/// Byte size of the *detection result* message for `n` boxes.
///
/// Each box serialises to class id (2 B) + score (4 B) + four coordinates
/// (4 × 4 B) plus a small envelope; results are tiny compared with images,
/// which is why returning results downstream is negligible in the paper.
pub fn result_size_bytes(num_boxes: usize) -> usize {
    24 + num_boxes * 22
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gaussian_blur, render, RenderSpec};

    #[test]
    fn flat_image_compresses_to_header() {
        let img = GrayImage::filled(100, 100, 200);
        // residuals: one 200-128=72 at each row start, rest zeros -> tiny entropy
        let size = encoded_size_bytes(&img);
        assert!(size < CODEC_HEADER_BYTES + 1500, "got {size}");
    }

    #[test]
    fn textured_image_costs_more_than_flat() {
        let flat = GrayImage::filled(64, 64, 130);
        let textured = render(&RenderSpec::empty(64, 64, 99));
        assert!(encoded_size_bytes(&textured) > encoded_size_bytes(&flat));
    }

    #[test]
    fn blur_reduces_size() {
        let frame = render(&RenderSpec::empty(128, 128, 5));
        let soft = gaussian_blur(&frame, 2.5);
        assert!(encoded_size_bytes(&soft) <= encoded_size_bytes(&frame));
    }

    #[test]
    fn entropy_bounded_by_8_bits() {
        let frame = render(&RenderSpec::empty(64, 64, 17));
        let e = residual_entropy_bits(&frame);
        assert!((0.0..=8.0).contains(&e));
    }

    #[test]
    fn size_scales_with_area() {
        let small = render(&RenderSpec::empty(64, 64, 4));
        let large = render(&RenderSpec::empty(128, 128, 4));
        assert!(encoded_size_bytes(&large) > encoded_size_bytes(&small) * 2);
    }

    #[test]
    fn result_size_is_small() {
        assert!(result_size_bytes(50) < 2000);
        assert!(result_size_bytes(0) > 0);
        assert!(result_size_bytes(10) > result_size_bytes(5));
    }
}
