//! # imaging — raster substrate for the smallbig workspace
//!
//! Synthetic camera frames for the edge-cloud object-detection reproduction:
//!
//! * [`GrayImage`] — 8-bit grayscale buffer with statistics,
//! * [`gaussian_blur`] / [`add_gaussian_noise`] / [`scale_illumination`] —
//!   camera/optics effects,
//! * [`brenner_gradient`] / [`tenengrad`] / [`laplacian_variance`] — focus
//!   measures (the paper's blurred-upload baseline uses Brenner, Eq. 2),
//! * [`render`] — deterministic scene→frame renderer,
//! * [`encoded_size_bytes`] — bytes-on-the-wire model for uploaded frames.
//!
//! # Example
//!
//! ```
//! use imaging::{brenner_gradient, encoded_size_bytes, render, RenderSpec};
//!
//! let frame = render(&RenderSpec::empty(320, 240, 1));
//! println!("sharpness = {:.1}", brenner_gradient(&frame));
//! println!("size      = {} bytes", encoded_size_bytes(&frame));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod codec;
mod filter;
mod render;
mod sharpness;

pub use buffer::GrayImage;
pub use codec::{encoded_size_bytes, residual_entropy_bits, result_size_bytes, CODEC_HEADER_BYTES};
pub use filter::{add_gaussian_noise, gaussian_blur, gaussian_kernel, scale_illumination};
pub use render::{render, ObjectRenderSpec, RenderSpec};
pub use sharpness::{brenner_gradient, laplacian_variance, tenengrad};
