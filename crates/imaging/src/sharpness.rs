//! Image sharpness (focus/ambiguity) metrics.
//!
//! The paper's blurred-upload baseline (Sec. VI-E-2) ranks images by the
//! **Brenner gradient**: `Σ_y Σ_x |f(x+2, y) − f(x, y)|²` — "the larger the
//! value of the function, the clearer the image". Tenengrad and
//! variance-of-Laplacian are provided as alternative focus measures for
//! ablation.

use crate::GrayImage;

/// Brenner gradient focus measure, normalised per pixel.
///
/// Computes `Σ |f(x+2, y) − f(x, y)|²` over all valid pixels, divided by the
/// number of terms so that values are comparable across image sizes.
///
/// # Examples
///
/// ```
/// use imaging::{brenner_gradient, gaussian_blur, GrayImage};
///
/// let mut img = GrayImage::new(32, 32);
/// for y in 0..32 {
///     for x in 0..32 {
///         img.set(x, y, if x % 4 < 2 { 0 } else { 255 });
///     }
/// }
/// let sharp = brenner_gradient(&img);
/// let blurred = brenner_gradient(&gaussian_blur(&img, 2.0));
/// assert!(sharp > blurred); // blur lowers the Brenner score
/// ```
pub fn brenner_gradient(img: &GrayImage) -> f64 {
    let (w, h) = (img.width(), img.height());
    if w < 3 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for y in 0..h {
        let row = img.row(y);
        for x in 0..w - 2 {
            let d = row[x + 2] as f64 - row[x] as f64;
            sum += d * d;
        }
    }
    sum / ((w - 2) * h) as f64
}

/// Tenengrad focus measure: mean squared Sobel gradient magnitude.
pub fn tenengrad(img: &GrayImage) -> f64 {
    let (w, h) = (img.width(), img.height());
    if w < 3 || h < 3 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let p = |dx: i64, dy: i64| {
                img.get((x as i64 + dx) as usize, (y as i64 + dy) as usize) as f64
            };
            let gx = -p(-1, -1) - 2.0 * p(-1, 0) - p(-1, 1) + p(1, -1) + 2.0 * p(1, 0) + p(1, 1);
            let gy = -p(-1, -1) - 2.0 * p(0, -1) - p(1, -1) + p(-1, 1) + 2.0 * p(0, 1) + p(1, 1);
            sum += gx * gx + gy * gy;
        }
    }
    sum / ((w - 2) * (h - 2)) as f64
}

/// Variance of the 4-neighbour Laplacian response.
pub fn laplacian_variance(img: &GrayImage) -> f64 {
    let (w, h) = (img.width(), img.height());
    if w < 3 || h < 3 {
        return 0.0;
    }
    let mut values = Vec::with_capacity((w - 2) * (h - 2));
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let c = img.get(x, y) as f64;
            let lap = img.get(x - 1, y) as f64
                + img.get(x + 1, y) as f64
                + img.get(x, y - 1) as f64
                + img.get(x, y + 1) as f64
                - 4.0 * c;
            values.push(lap);
        }
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian_blur;

    fn stripes(w: usize, h: usize, period: usize) -> GrayImage {
        let mut img = GrayImage::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    if (x / period).is_multiple_of(2) {
                        0
                    } else {
                        255
                    },
                );
            }
        }
        img
    }

    #[test]
    fn flat_image_has_zero_sharpness() {
        let img = GrayImage::filled(32, 32, 120);
        assert_eq!(brenner_gradient(&img), 0.0);
        assert_eq!(tenengrad(&img), 0.0);
        assert_eq!(laplacian_variance(&img), 0.0);
    }

    #[test]
    fn blur_monotonically_decreases_brenner() {
        let img = stripes(64, 64, 3);
        let b0 = brenner_gradient(&img);
        let b1 = brenner_gradient(&gaussian_blur(&img, 0.8));
        let b2 = brenner_gradient(&gaussian_blur(&img, 2.0));
        let b3 = brenner_gradient(&gaussian_blur(&img, 4.0));
        assert!(b0 > b1 && b1 > b2 && b2 > b3, "{b0} {b1} {b2} {b3}");
    }

    #[test]
    fn blur_decreases_tenengrad_and_laplacian() {
        let img = stripes(64, 64, 4);
        let blurred = gaussian_blur(&img, 2.5);
        assert!(tenengrad(&img) > tenengrad(&blurred));
        assert!(laplacian_variance(&img) > laplacian_variance(&blurred));
    }

    #[test]
    fn brenner_matches_hand_computation() {
        // 1x5 image: f = [0, 0, 10, 0, 20]
        // terms: |10-0|^2 + |0-0|^2 + |20-10|^2 = 100 + 0 + 100 = 200; /3 terms
        let img = GrayImage::from_pixels(5, 1, vec![0, 0, 10, 0, 20]);
        assert!((brenner_gradient(&img) - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn tiny_images_are_zero() {
        let img = GrayImage::filled(2, 2, 9);
        assert_eq!(brenner_gradient(&img), 0.0);
        assert_eq!(tenengrad(&img), 0.0);
    }

    #[test]
    fn finer_stripes_are_sharper() {
        let fine = stripes(64, 64, 2);
        let coarse = stripes(64, 64, 8);
        assert!(brenner_gradient(&fine) > brenner_gradient(&coarse));
    }
}
