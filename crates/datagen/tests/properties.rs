//! Property-based tests for dataset generation invariants.

use datagen::{Dataset, DatasetProfile, DatasetStats, Scene};
use proptest::prelude::*;

fn profiles() -> Vec<DatasetProfile> {
    vec![
        DatasetProfile::voc(),
        DatasetProfile::coco18(),
        DatasetProfile::helmet(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scenes_always_have_objects_in_bounds(seed in any::<u64>(), id in 0u64..10_000) {
        for profile in profiles() {
            let s = Scene::sample(&profile, seed, id);
            prop_assert!(!s.objects.is_empty(), "profiles never emit empty scenes");
            for o in &s.objects {
                prop_assert!(o.bbox.x_min() >= 0.0 && o.bbox.x_max() <= 1.0);
                prop_assert!(o.bbox.y_min() >= 0.0 && o.bbox.y_max() <= 1.0);
                prop_assert!(o.area_ratio() > 0.0);
                prop_assert!((0.0..=1.0).contains(&o.difficulty));
                prop_assert!(profile.taxonomy.contains(o.class));
            }
            prop_assert!(s.camera_blur >= 0.0);
            prop_assert!(s.noise_std >= 0.0);
            prop_assert!(s.illumination > 0.0);
        }
    }

    #[test]
    fn sampling_is_a_pure_function(seed in any::<u64>(), id in 0u64..1000) {
        let p = DatasetProfile::voc();
        prop_assert_eq!(Scene::sample(&p, seed, id), Scene::sample(&p, seed, id));
    }

    #[test]
    fn min_area_is_truly_minimal(seed in any::<u64>(), id in 0u64..1000) {
        let p = DatasetProfile::coco18();
        let s = Scene::sample(&p, seed, id);
        let min = s.min_area_ratio().unwrap();
        for o in &s.objects {
            prop_assert!(o.area_ratio() >= min - 1e-15);
        }
    }

    #[test]
    fn dataset_stats_are_consistent(n in 5usize..60, seed in any::<u64>()) {
        let ds = Dataset::generate("p", &DatasetProfile::voc(), n, seed);
        let st = DatasetStats::compute(&ds);
        prop_assert_eq!(st.num_images, n);
        prop_assert_eq!(st.total_objects, ds.total_objects());
        prop_assert!((st.mean_objects - ds.mean_objects()).abs() < 1e-12);
        prop_assert_eq!(st.count_histogram.iter().sum::<usize>(), n);
        prop_assert!(st.frac_multi_object >= 0.0 && st.frac_multi_object <= 1.0);
    }

    #[test]
    fn concat_preserves_scene_content(a in 2usize..20, b in 2usize..20, seed in any::<u64>()) {
        let p = DatasetProfile::voc();
        let da = Dataset::generate("a", &p, a, seed);
        let db = Dataset::generate("b", &p, b, seed ^ 0xff);
        let c = da.concat(&db, "c");
        prop_assert_eq!(c.len(), a + b);
        prop_assert_eq!(c.total_objects(), da.total_objects() + db.total_objects());
        // objects (not ids) are preserved verbatim
        for (orig, cat) in da.iter().zip(c.iter()) {
            prop_assert_eq!(&orig.objects, &cat.objects);
        }
    }

    /// The buffer-reusing `ground_truths_into` clears its destination and
    /// reproduces `ground_truths` exactly — even through a dirty buffer
    /// carried across scenes, which is how the eval loops use it.
    #[test]
    fn ground_truths_into_matches_allocation(n in 1usize..30, seed in any::<u64>()) {
        for profile in profiles() {
            let ds = Dataset::generate("gt", &profile, n, seed);
            let mut reused = Vec::new();
            for scene in ds.iter() {
                // `reused` still holds the previous scene's truths here;
                // the refill must fully replace them.
                scene.ground_truths_into(&mut reused);
                prop_assert_eq!(&reused, &scene.ground_truths());
                prop_assert_eq!(reused.len(), scene.num_objects());
            }
        }
    }
}
