//! Datasets: named collections of scenes with a train/test split identity.

use crate::{DatasetProfile, Scene};
use detcore::Taxonomy;
use serde::{Deserialize, Serialize};

/// A generated dataset: an ordered collection of scenes sharing one profile.
///
/// # Examples
///
/// ```
/// use datagen::{Dataset, DatasetProfile};
///
/// let ds = Dataset::generate("demo", &DatasetProfile::voc(), 100, 7);
/// assert_eq!(ds.len(), 100);
/// assert!(ds.total_objects() >= 100); // every scene has >= 1 object
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    taxonomy: Taxonomy,
    scenes: Vec<Scene>,
}

impl Dataset {
    /// Generates `n` scenes from a profile, deterministically in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(name: &str, profile: &DatasetProfile, n: usize, seed: u64) -> Self {
        assert!(n > 0, "dataset must contain at least one scene");
        let scenes = (0..n as u64)
            .map(|id| Scene::sample(profile, seed, id))
            .collect();
        Dataset {
            name: name.to_string(),
            taxonomy: profile.taxonomy.clone(),
            scenes,
        }
    }

    /// Builds a dataset from pre-sampled scenes (used by split composition).
    pub fn from_scenes(name: &str, taxonomy: Taxonomy, scenes: Vec<Scene>) -> Self {
        Dataset {
            name: name.to_string(),
            taxonomy,
            scenes,
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class taxonomy of this dataset.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The scenes in order.
    pub fn scenes(&self) -> &[Scene] {
        &self.scenes
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }

    /// Iterates over scenes.
    pub fn iter(&self) -> std::slice::Iter<'_, Scene> {
        self.scenes.iter()
    }

    /// Total annotated objects across all scenes.
    pub fn total_objects(&self) -> usize {
        self.scenes.iter().map(|s| s.num_objects()).sum()
    }

    /// Mean objects per image.
    pub fn mean_objects(&self) -> f64 {
        if self.scenes.is_empty() {
            return 0.0;
        }
        self.total_objects() as f64 / self.scenes.len() as f64
    }

    /// Returns a new dataset containing the first `n` scenes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the dataset size.
    pub fn take_prefix(&self, n: usize) -> Dataset {
        assert!(n > 0 && n <= self.scenes.len(), "invalid prefix length");
        Dataset {
            name: format!("{}[..{}]", self.name, n),
            taxonomy: self.taxonomy.clone(),
            scenes: self.scenes[..n].to_vec(),
        }
    }

    /// Concatenates two datasets over the same taxonomy (e.g. 07+12).
    ///
    /// # Panics
    ///
    /// Panics if the taxonomies differ.
    pub fn concat(&self, other: &Dataset, name: &str) -> Dataset {
        assert_eq!(
            self.taxonomy, other.taxonomy,
            "cannot concatenate datasets over different taxonomies"
        );
        let mut scenes = self.scenes.clone();
        // Re-id the second dataset's scenes to keep ids unique.
        let offset = scenes.len() as u64;
        scenes.extend(other.scenes.iter().cloned().map(|mut s| {
            s.id += offset;
            s
        }));
        Dataset {
            name: name.to_string(),
            taxonomy: self.taxonomy.clone(),
            scenes,
        }
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Scene;
    type IntoIter = std::slice::Iter<'a, Scene>;
    fn into_iter(self) -> Self::IntoIter {
        self.scenes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = DatasetProfile::voc();
        let a = Dataset::generate("a", &p, 50, 11);
        let b = Dataset::generate("b", &p, 50, 11);
        assert_eq!(a.scenes(), b.scenes());
        let c = Dataset::generate("c", &p, 50, 12);
        assert_ne!(a.scenes(), c.scenes());
    }

    #[test]
    fn scene_ids_are_sequential() {
        let ds = Dataset::generate("x", &DatasetProfile::helmet(), 10, 3);
        for (i, s) in ds.iter().enumerate() {
            assert_eq!(s.id, i as u64);
        }
    }

    #[test]
    fn concat_offsets_ids() {
        let p = DatasetProfile::voc();
        let a = Dataset::generate("a", &p, 5, 1);
        let b = Dataset::generate("b", &p, 5, 2);
        let c = a.concat(&b, "a+b");
        assert_eq!(c.len(), 10);
        let ids: Vec<u64> = c.iter().map(|s| s.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "ids must be unique after concat");
    }

    #[test]
    #[should_panic(expected = "different taxonomies")]
    fn concat_rejects_mixed_taxonomies() {
        let a = Dataset::generate("a", &DatasetProfile::voc(), 2, 1);
        let b = Dataset::generate("b", &DatasetProfile::helmet(), 2, 1);
        let _ = a.concat(&b, "bad");
    }

    #[test]
    fn take_prefix_shrinks() {
        let ds = Dataset::generate("x", &DatasetProfile::voc(), 20, 3);
        let p = ds.take_prefix(5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.scenes()[0], ds.scenes()[0]);
    }

    #[test]
    fn mean_objects_positive() {
        let ds = Dataset::generate("x", &DatasetProfile::coco18(), 200, 3);
        assert!(ds.mean_objects() >= 1.0);
    }
}
