//! Dataset statistics: the aggregate views the paper's Fig. 4 relies on.

use crate::Dataset;
use serde::{Deserialize, Serialize};

/// Summary statistics of a dataset's semantic features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of images.
    pub num_images: usize,
    /// Total annotated objects.
    pub total_objects: usize,
    /// Mean objects per image.
    pub mean_objects: f64,
    /// Histogram of object counts (index = count, clipped at 20+).
    pub count_histogram: Vec<usize>,
    /// Quantiles of the per-image minimum area ratio: `[p10, p25, p50, p75, p90]`.
    pub min_area_quantiles: [f64; 5],
    /// Mean intrinsic difficulty over all objects.
    pub mean_difficulty: f64,
    /// Fraction of images with more than two objects.
    pub frac_multi_object: f64,
}

impl DatasetStats {
    /// Computes statistics for a dataset.
    ///
    /// # Examples
    ///
    /// ```
    /// use datagen::{Dataset, DatasetProfile, DatasetStats};
    ///
    /// let ds = Dataset::generate("d", &DatasetProfile::voc(), 200, 1);
    /// let stats = DatasetStats::compute(&ds);
    /// assert_eq!(stats.num_images, 200);
    /// assert!(stats.mean_objects >= 1.0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn compute(ds: &Dataset) -> DatasetStats {
        assert!(!ds.is_empty(), "cannot summarise an empty dataset");
        let num_images = ds.len();
        let total_objects = ds.total_objects();
        let mut count_histogram = vec![0usize; 21];
        let mut min_areas: Vec<f64> = Vec::with_capacity(num_images);
        let mut diff_sum = 0.0;
        let mut multi = 0usize;
        for s in ds.iter() {
            let n = s.num_objects();
            count_histogram[n.min(20)] += 1;
            if let Some(a) = s.min_area_ratio() {
                min_areas.push(a);
            }
            for o in &s.objects {
                diff_sum += o.difficulty;
            }
            if n > 2 {
                multi += 1;
            }
        }
        min_areas.sort_by(|a, b| a.partial_cmp(b).expect("finite areas"));
        let q = |p: f64| -> f64 {
            if min_areas.is_empty() {
                return 0.0;
            }
            let idx = ((min_areas.len() - 1) as f64 * p).round() as usize;
            min_areas[idx]
        };
        DatasetStats {
            num_images,
            total_objects,
            mean_objects: total_objects as f64 / num_images as f64,
            count_histogram,
            min_area_quantiles: [q(0.10), q(0.25), q(0.50), q(0.75), q(0.90)],
            mean_difficulty: if total_objects == 0 {
                0.0
            } else {
                diff_sum / total_objects as f64
            },
            frac_multi_object: multi as f64 / num_images as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetProfile;

    #[test]
    fn histogram_sums_to_images() {
        let ds = Dataset::generate("d", &DatasetProfile::voc(), 300, 5);
        let st = DatasetStats::compute(&ds);
        assert_eq!(st.count_histogram.iter().sum::<usize>(), 300);
        assert_eq!(st.count_histogram[0], 0, "profiles never emit empty scenes");
    }

    #[test]
    fn quantiles_are_sorted() {
        let ds = Dataset::generate("d", &DatasetProfile::coco18(), 300, 5);
        let st = DatasetStats::compute(&ds);
        let q = st.min_area_quantiles;
        assert!(q.windows(2).all(|w| w[0] <= w[1]));
        assert!(q[0] > 0.0);
    }

    #[test]
    fn voc_mean_count_in_expected_band() {
        // calibrated so the full VOC07 test set carries ~11-13k objects
        let ds = Dataset::generate("d", &DatasetProfile::voc(), 2000, 9);
        let st = DatasetStats::compute(&ds);
        assert!(
            (1.9..=3.2).contains(&st.mean_objects),
            "voc mean objects {}",
            st.mean_objects
        );
    }

    #[test]
    fn difficulty_in_unit_interval() {
        let ds = Dataset::generate("d", &DatasetProfile::helmet(), 200, 5);
        let st = DatasetStats::compute(&ds);
        assert!((0.0..=1.0).contains(&st.mean_difficulty));
        assert!(st.mean_difficulty > 0.1, "helmet should be hard");
    }
}
