//! Temporally correlated video sequences.
//!
//! The paper's framework targets video workloads ("Edge-Cloud collaboration
//! focuses more on timeliness (e.g., object detection for video stream)"),
//! where consecutive frames share most of their objects. A
//! [`VideoSequence`] evolves a scene over time: objects persist with high
//! probability, drift and change scale smoothly, leave the frame, and new
//! objects enter — while camera conditions (blur, light) follow a slow
//! random walk. This is the substrate for streaming experiments where
//! discriminator verdicts are expected to be temporally coherent.

use crate::{DatasetProfile, Scene, SceneObject};
use detcore::BBox;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Poisson};
use serde::{Deserialize, Serialize};

/// Parameters of the temporal evolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoProfile {
    /// The per-frame content statistics (class mix, areas, difficulty…).
    pub base: DatasetProfile,
    /// Per-frame survival probability of an object (e.g. 0.95 at 1 fps).
    pub persistence: f64,
    /// Poisson rate of new objects entering per frame.
    pub entry_rate: f64,
    /// Std-dev of per-frame centre drift, as a fraction of the image.
    pub motion_sigma: f64,
    /// Std-dev of per-frame log-scale drift.
    pub zoom_sigma: f64,
    /// AR(1) smoothing factor for camera conditions (0 = frozen, 1 = i.i.d.).
    pub camera_drift: f64,
}

impl VideoProfile {
    /// A surveillance-style stream over the given content profile.
    pub fn surveillance(base: DatasetProfile) -> Self {
        VideoProfile {
            base,
            persistence: 0.93,
            entry_rate: 0.35,
            motion_sigma: 0.015,
            zoom_sigma: 0.03,
            camera_drift: 0.15,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.persistence),
            "persistence must be a probability"
        );
        assert!(self.entry_rate >= 0.0, "entry rate must be non-negative");
        assert!(self.motion_sigma >= 0.0 && self.zoom_sigma >= 0.0);
        assert!((0.0..=1.0).contains(&self.camera_drift));
    }
}

/// A generated sequence of temporally correlated frames.
///
/// # Examples
///
/// ```
/// use datagen::{DatasetProfile, VideoProfile, VideoSequence};
///
/// let profile = VideoProfile::surveillance(DatasetProfile::helmet());
/// let video = VideoSequence::generate(&profile, 30, 7);
/// assert_eq!(video.frames().len(), 30);
/// // consecutive frames share most objects
/// let a = video.frames()[0].num_objects();
/// assert!(a >= 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoSequence {
    frames: Vec<Scene>,
}

impl VideoSequence {
    /// Generates `num_frames` frames deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_frames == 0` or the profile is invalid.
    pub fn generate(profile: &VideoProfile, num_frames: usize, seed: u64) -> VideoSequence {
        assert!(num_frames > 0, "video needs at least one frame");
        profile.validate();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x71de_05eb);
        let first = Scene::sample(&profile.base, seed, 0);
        let mut objects = first.objects.clone();
        let (mut blur, mut noise, mut illum) =
            (first.camera_blur, first.noise_std, first.illumination);

        let motion = Normal::new(0.0, profile.motion_sigma.max(1e-12)).expect("valid");
        let zoom = Normal::new(0.0, profile.zoom_sigma.max(1e-12)).expect("valid");

        let mut frames = Vec::with_capacity(num_frames);
        for f in 0..num_frames as u64 {
            if f > 0 {
                // Survive + drift existing objects.
                objects.retain(|_| rng.gen::<f64>() < profile.persistence);
                for o in &mut objects {
                    let (cx, cy) = o.bbox.center();
                    let s = (zoom.sample(&mut rng)).exp();
                    let w = (o.bbox.width() * s).clamp(0.01, 0.98);
                    let h = (o.bbox.height() * s).clamp(0.01, 0.98);
                    let cx = (cx + motion.sample(&mut rng)).clamp(w / 2.0, 1.0 - w / 2.0);
                    let cy = (cy + motion.sample(&mut rng)).clamp(h / 2.0, 1.0 - h / 2.0);
                    o.bbox = BBox::from_center(cx, cy, w, h).clamp_unit();
                }
                // New arrivals.
                let arrivals = if profile.entry_rate > 0.0 {
                    Poisson::new(profile.entry_rate)
                        .expect("positive rate")
                        .sample(&mut rng) as usize
                } else {
                    0
                };
                for k in 0..arrivals {
                    objects.push(sample_entrant(&profile.base, &mut rng, f, k));
                }
                // Keep at least one object in frame (a tracked subject).
                if objects.is_empty() {
                    objects.push(sample_entrant(&profile.base, &mut rng, f, 99));
                }
                // Camera random walk.
                let (b2, n2, i2) = profile.base.camera.sample(&mut rng);
                let a = profile.camera_drift;
                blur = blur * (1.0 - a) + b2 * a;
                noise = noise * (1.0 - a) + n2 * a;
                illum = illum * (1.0 - a) + i2 * a;
            }
            frames.push(Scene {
                id: f,
                objects: objects.clone(),
                camera_blur: blur,
                noise_std: noise,
                illumination: illum,
                seed: seed ^ f.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            });
        }
        VideoSequence { frames }
    }

    /// The frames in temporal order.
    pub fn frames(&self) -> &[Scene] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the sequence is empty (never true for generated sequences).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Converts the sequence into a [`crate::Dataset`] for batch evaluation.
    pub fn into_dataset(self, name: &str, profile: &VideoProfile) -> crate::Dataset {
        crate::Dataset::from_scenes(name, profile.base.taxonomy.clone(), self.frames)
    }

    /// Mean fraction of objects shared between consecutive frames
    /// (a temporal-coherence measure in `[0, 1]`).
    pub fn mean_persistence(&self) -> f64 {
        if self.frames.len() < 2 {
            return 1.0;
        }
        let mut sum = 0.0;
        let mut n = 0usize;
        for w in self.frames.windows(2) {
            let prev = &w[0].objects;
            let next = &w[1].objects;
            if prev.is_empty() {
                continue;
            }
            let survivors = prev
                .iter()
                .filter(|o| next.iter().any(|p| p.texture_seed == o.texture_seed))
                .count();
            sum += survivors as f64 / prev.len() as f64;
            n += 1;
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }
}

/// A fresh object entering the field of view.
fn sample_entrant(base: &DatasetProfile, rng: &mut StdRng, frame: u64, k: usize) -> SceneObject {
    let class = base.sample_class(rng);
    let area = base.area.sample(rng, 2);
    let aspect = 0.7 + rng.gen::<f64>() * 0.6;
    let w = (area * aspect).sqrt().min(0.95);
    let h = (area / aspect).sqrt().min(0.95);
    let cx = rng.gen_range(w / 2.0..=1.0 - w / 2.0);
    let cy = rng.gen_range(h / 2.0..=1.0 - h / 2.0);
    SceneObject {
        class,
        bbox: BBox::from_center(cx, cy, w, h).clamp_unit(),
        difficulty: base.difficulty.sample(rng),
        texture_seed: frame
            .wrapping_mul(0x517c_c1b7_2722_0a95)
            .wrapping_add(k as u64 + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> VideoProfile {
        VideoProfile::surveillance(DatasetProfile::voc())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = VideoSequence::generate(&profile(), 20, 3);
        let b = VideoSequence::generate(&profile(), 20, 3);
        assert_eq!(a, b);
        let c = VideoSequence::generate(&profile(), 20, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn frames_are_temporally_coherent() {
        let v = VideoSequence::generate(&profile(), 60, 9);
        let p = v.mean_persistence();
        assert!(
            (0.80..=1.0).contains(&p),
            "persistence 0.93 should yield high overlap, got {p}"
        );
    }

    #[test]
    fn iid_profile_has_low_coherence() {
        let mut prof = profile();
        prof.persistence = 0.05;
        prof.entry_rate = 2.0;
        let v = VideoSequence::generate(&prof, 40, 9);
        assert!(v.mean_persistence() < 0.3);
    }

    #[test]
    fn every_frame_is_valid() {
        let v = VideoSequence::generate(&profile(), 50, 5);
        for s in v.frames() {
            assert!(!s.objects.is_empty());
            for o in &s.objects {
                assert!(o.bbox.x_min() >= 0.0 && o.bbox.x_max() <= 1.0);
                assert!(o.bbox.area() > 0.0);
            }
            assert!(s.camera_blur >= 0.0 && s.illumination > 0.0);
        }
    }

    #[test]
    fn camera_conditions_drift_smoothly() {
        let v = VideoSequence::generate(&profile(), 60, 11);
        let blurs: Vec<f64> = v.frames().iter().map(|s| s.camera_blur).collect();
        let max_step = blurs
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0, f64::max);
        let range = blurs.iter().cloned().fold(f64::MIN, f64::max)
            - blurs.iter().cloned().fold(f64::MAX, f64::min);
        // single steps are small relative to the overall excursion
        assert!(max_step <= range + 1e-12);
        assert!(max_step < 1.0, "blur must not jump: {max_step}");
    }

    #[test]
    fn into_dataset_preserves_frames() {
        let prof = profile();
        let v = VideoSequence::generate(&prof, 15, 2);
        let frames = v.frames().to_vec();
        let ds = v.into_dataset("video", &prof);
        assert_eq!(ds.len(), 15);
        assert_eq!(ds.scenes(), &frames[..]);
    }
}
