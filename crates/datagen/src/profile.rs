//! Statistical profiles describing how each dataset's scenes are distributed.
//!
//! A [`DatasetProfile`] captures the joint statistics that matter to the
//! paper's problem: how many objects an image holds, how large the smallest
//! of them is, how intrinsically hard they are to recognise, and what the
//! camera conditions look like. Profiles for VOC-like, COCO-like and
//! HELMET-like data are calibrated so that the published headline numbers
//! (object totals, mAP bands, ~50 % difficult-case rate with SSD) emerge.

use crate::{Scene, SceneObject};
use detcore::{BBox, ClassId, Taxonomy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Beta, Distribution, LogNormal, Poisson};
use serde::{Deserialize, Serialize};

/// Object-count distribution: a mixture of sparse scenes and crowded scenes.
///
/// With probability `p_crowd` the image is crowded (`1 + Poisson(λ_crowd)`),
/// otherwise sparse (`1 + Poisson(λ_sparse)`). Counts are clamped to
/// `max_objects`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountModel {
    /// Probability that a scene is crowded.
    pub p_crowd: f64,
    /// Poisson rate for sparse scenes (count = 1 + Poisson).
    pub lambda_sparse: f64,
    /// Poisson rate for crowded scenes.
    pub lambda_crowd: f64,
    /// Hard upper bound on objects per image.
    pub max_objects: usize,
}

impl CountModel {
    /// Samples an object count (≥ 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let lambda = if rng.gen::<f64>() < self.p_crowd {
            self.lambda_crowd
        } else {
            self.lambda_sparse
        };
        let tail = if lambda > 0.0 {
            Poisson::new(lambda).expect("positive lambda").sample(rng) as usize
        } else {
            0
        };
        (1 + tail).min(self.max_objects)
    }
}

/// Log-normal object area-ratio distribution, clamped to `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Mean of `ln(area_ratio)`.
    pub ln_mu: f64,
    /// Std-dev of `ln(area_ratio)`.
    pub ln_sigma: f64,
    /// Smallest permitted area ratio.
    pub min: f64,
    /// Largest permitted area ratio.
    pub max: f64,
    /// Crowding exponent: in an image with `n` objects each object's area is
    /// scaled by `n^-crowd_shrink` (objects in crowded scenes are smaller).
    pub crowd_shrink: f64,
}

impl AreaModel {
    /// Samples an area ratio for an object in an image with `n` objects.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> f64 {
        self.sampler(n).sample(rng)
    }

    /// Hoists the per-scene invariants (the log-normal and the crowding
    /// factor `n^-crowd_shrink`) so a scene's object loop builds them once.
    /// Draw-for-draw identical to calling [`sample`](Self::sample) per
    /// object: construction consumes no RNG state.
    pub fn sampler(&self, n: usize) -> AreaSampler {
        AreaSampler {
            dist: LogNormal::new(self.ln_mu, self.ln_sigma).expect("valid log-normal"),
            crowd: (n as f64).powf(-self.crowd_shrink),
            min: self.min,
            max: self.max,
        }
    }
}

/// Per-scene area sampler built by [`AreaModel::sampler`].
#[derive(Debug, Clone, Copy)]
pub struct AreaSampler {
    dist: LogNormal,
    crowd: f64,
    min: f64,
    max: f64,
}

impl AreaSampler {
    /// Samples one object's area ratio.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.dist.sample(rng) * self.crowd).clamp(self.min, self.max)
    }
}

/// Intrinsic per-object difficulty distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DifficultyModel {
    /// Beta(α, β) shape of the base difficulty draw.
    pub alpha: f64,
    /// Beta(α, β) shape.
    pub beta: f64,
    /// Difficulty floor added to every object (HELMET-like data > 0).
    pub base: f64,
}

impl DifficultyModel {
    /// Samples a difficulty in `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sampler().sample(rng)
    }

    /// Hoists the beta construction so a scene's object loop builds it once
    /// (draw-for-draw identical to per-object [`sample`](Self::sample)).
    pub fn sampler(&self) -> DifficultySampler {
        DifficultySampler {
            dist: Beta::new(self.alpha, self.beta).expect("valid beta"),
            base: self.base,
        }
    }
}

/// Reusable difficulty sampler built by [`DifficultyModel::sampler`].
#[derive(Debug, Clone, Copy)]
pub struct DifficultySampler {
    dist: Beta,
    base: f64,
}

impl DifficultySampler {
    /// Samples one object's difficulty in `[0, 1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.base + self.dist.sample(rng)).clamp(0.0, 1.0)
    }
}

/// Camera-condition distribution for a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraModel {
    /// Mean defocus-blur sigma (exponential draw).
    pub mean_blur: f64,
    /// Maximum blur sigma.
    pub max_blur: f64,
    /// Mean sensor-noise std-dev (exponential draw).
    pub mean_noise: f64,
    /// Illumination gain bounds (uniform draw).
    pub illum_range: (f64, f64),
}

impl CameraModel {
    /// Samples `(blur_sigma, noise_std, illumination)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64, f64) {
        let blur = (-rng.gen::<f64>().max(1e-12).ln() * self.mean_blur).min(self.max_blur);
        let noise = -rng.gen::<f64>().max(1e-12).ln() * self.mean_noise;
        let illum = rng.gen_range(self.illum_range.0..=self.illum_range.1);
        (blur, noise, illum)
    }
}

/// The complete generative description of a dataset family.
///
/// # Examples
///
/// ```
/// use datagen::DatasetProfile;
///
/// let voc = DatasetProfile::voc();
/// assert_eq!(voc.taxonomy.len(), 20);
/// let coco = DatasetProfile::coco18();
/// assert_eq!(coco.taxonomy.len(), 18);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Profile name (e.g. `"voc"`).
    pub name: String,
    /// Class taxonomy.
    pub taxonomy: Taxonomy,
    /// Relative class frequencies (same length as the taxonomy).
    pub class_weights: Vec<f64>,
    /// Object-count distribution.
    pub count: CountModel,
    /// Area-ratio distribution.
    pub area: AreaModel,
    /// Difficulty distribution.
    pub difficulty: DifficultyModel,
    /// Camera-condition distribution.
    pub camera: CameraModel,
}

impl DatasetProfile {
    /// PASCAL-VOC-like profile: ~2.4 objects/image, medium-sized objects,
    /// consumer-photo camera quality.
    pub fn voc() -> Self {
        let taxonomy = Taxonomy::voc20();
        // person dominates VOC; a handful of vehicle/animal classes follow
        let mut w = vec![1.0; 20];
        w[14] = 9.0; // person
        w[6] = 3.0; // car
        w[8] = 2.5; // chair
        w[4] = 1.8; // bottle
        w[11] = 1.5; // dog
        DatasetProfile {
            name: "voc".to_string(),
            taxonomy,
            class_weights: w,
            count: CountModel {
                p_crowd: 0.18,
                lambda_sparse: 0.55,
                lambda_crowd: 6.0,
                max_objects: 40,
            },
            area: AreaModel {
                ln_mu: -1.2, // single objects are large (median ≈ 30 %)
                ln_sigma: 1.15,
                min: 0.0008,
                max: 0.95,
                crowd_shrink: 0.50, // crowded scenes have smaller objects
            },
            difficulty: DifficultyModel {
                alpha: 1.4,
                beta: 5.0,
                base: 0.0,
            },
            camera: CameraModel {
                mean_blur: 0.35,
                max_blur: 2.5,
                mean_noise: 1.5,
                illum_range: (0.85, 1.1),
            },
        }
    }

    /// COCO-18-subset-like profile: more objects per image and markedly
    /// smaller objects than VOC, which is why the paper's COCO mAPs are low.
    pub fn coco18() -> Self {
        let taxonomy = Taxonomy::coco18();
        let mut w = vec![1.0; 18];
        w[13] = 10.0; // person
        w[6] = 4.0; // car
        w[8] = 2.5; // chair
        w[4] = 2.0; // bottle
        DatasetProfile {
            name: "coco18".to_string(),
            taxonomy,
            class_weights: w,
            count: CountModel {
                p_crowd: 0.30,
                lambda_sparse: 1.3,
                lambda_crowd: 8.0,
                max_objects: 60,
            },
            area: AreaModel {
                ln_mu: -2.35, // smaller objects than VOC (median ≈ 10 % solo)
                ln_sigma: 1.20,
                min: 0.0004,
                max: 0.90,
                crowd_shrink: 0.50,
            },
            difficulty: DifficultyModel {
                alpha: 2.0,
                beta: 3.4,
                base: 0.18,
            },
            camera: CameraModel {
                mean_blur: 0.4,
                max_blur: 2.5,
                mean_noise: 2.0,
                illum_range: (0.8, 1.1),
            },
        }
    }

    /// HELMET-like profile (Sedna building-site footage): two classes, small
    /// heads, harsh camera conditions (blur, smoke, poor light).
    pub fn helmet() -> Self {
        DatasetProfile {
            name: "helmet".to_string(),
            taxonomy: Taxonomy::helmet(),
            class_weights: vec![3.0, 1.0],
            count: CountModel {
                p_crowd: 0.25,
                lambda_sparse: 1.0,
                lambda_crowd: 4.5,
                max_objects: 25,
            },
            area: AreaModel {
                ln_mu: -2.0,
                ln_sigma: 1.0,
                min: 0.0012,
                max: 0.6,
                crowd_shrink: 0.45,
            },
            difficulty: DifficultyModel {
                alpha: 1.8,
                beta: 4.2,
                base: 0.04,
            },
            camera: CameraModel {
                mean_blur: 0.8,
                max_blur: 4.0,
                mean_noise: 4.0,
                illum_range: (0.55, 1.05),
            },
        }
    }

    /// The night-shift variant of this profile: dimmer light, heavier blur
    /// and sensor noise, smaller apparent objects, denser grouping, and a
    /// higher intrinsic difficulty floor. Used by drift schedules
    /// ([`DriftSchedule::day_night`](crate::DriftSchedule::day_night)) to
    /// model the day/night distribution swap a fixed camera sees.
    pub fn night(&self) -> Self {
        let mut p = self.clone();
        p.name = format!("{}-night", p.name);
        p.difficulty.base = (p.difficulty.base + 0.22).min(1.0);
        p.camera.mean_blur *= 1.8;
        p.camera.mean_noise *= 2.0;
        p.camera.illum_range = (
            (p.camera.illum_range.0 * 0.5).max(0.05),
            p.camera.illum_range.1 * 0.7,
        );
        // Headlights and floodlights: objects read smaller at night, and
        // activity clusters under the lit patches, so crowded scenes are
        // much more common.
        p.area.ln_mu -= 0.4;
        p.count.p_crowd = (p.count.p_crowd + 0.25).min(0.9);
        p
    }

    /// Samples one object class according to the class weights.
    pub fn sample_class<R: Rng + ?Sized>(&self, rng: &mut R) -> ClassId {
        let total: f64 = self.class_weights.iter().sum();
        let mut t = rng.gen::<f64>() * total;
        for (i, w) in self.class_weights.iter().enumerate() {
            t -= w;
            if t <= 0.0 {
                return ClassId(i as u16);
            }
        }
        ClassId((self.class_weights.len() - 1) as u16)
    }
}

/// Typical aspect ratio (w/h) per VOC class index; 1.0 for unknown classes.
fn class_aspect(class: ClassId, taxonomy: &Taxonomy) -> f64 {
    match taxonomy.name(class) {
        "person" => 0.45,
        "bottle" => 0.4,
        "car" | "bus" | "train" | "sofa" => 1.7,
        "aeroplane" | "boat" => 1.9,
        "bird" | "cat" | "dog" | "horse" | "cow" | "sheep" => 1.2,
        "bicycle" | "motorbike" => 1.1,
        "helmet" | "head" => 0.9,
        _ => 1.0,
    }
}

impl Scene {
    /// Samples a scene from a profile. Deterministic in `(profile, seed, id)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use datagen::{DatasetProfile, Scene};
    ///
    /// let p = DatasetProfile::helmet();
    /// let a = Scene::sample(&p, 1, 5);
    /// let b = Scene::sample(&p, 1, 5);
    /// assert_eq!(a, b);
    /// ```
    pub fn sample(profile: &DatasetProfile, seed: u64, id: u64) -> Scene {
        let scene_seed = seed
            ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x1234_5678);
        let mut rng = StdRng::seed_from_u64(scene_seed);
        let n = profile.count.sample(&mut rng);
        // Per-scene invariants hoisted out of the object loop (construction
        // consumes no RNG state, so the draws are unchanged).
        let area_sampler = profile.area.sampler(n);
        let difficulty_sampler = profile.difficulty.sampler();
        let mut objects = Vec::with_capacity(n);
        for k in 0..n {
            let class = profile.sample_class(&mut rng);
            let area = area_sampler.sample(&mut rng);
            let aspect_base = class_aspect(class, &profile.taxonomy);
            let aspect = aspect_base * (rng.gen::<f64>() * 0.6 + 0.7); // ±30 % jitter
            let mut w = (area * aspect).sqrt();
            let mut h = (area / aspect).sqrt();
            w = w.min(0.98);
            h = h.min(0.98);
            let cx = rng.gen_range(w / 2.0..=1.0 - w / 2.0);
            let cy = rng.gen_range(h / 2.0..=1.0 - h / 2.0);
            let bbox = BBox::from_center(cx, cy, w, h).clamp_unit();
            let difficulty = difficulty_sampler.sample(&mut rng);
            objects.push(SceneObject {
                class,
                bbox,
                difficulty,
                texture_seed: scene_seed ^ (k as u64 + 1).wrapping_mul(0x517c_c1b7),
            });
        }
        let (camera_blur, noise_std, illumination) = profile.camera.sample(&mut rng);
        Scene {
            id,
            objects,
            camera_blur,
            noise_std,
            illumination,
            seed: scene_seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_model_respects_bounds() {
        let m = CountModel {
            p_crowd: 0.5,
            lambda_sparse: 1.0,
            lambda_crowd: 30.0,
            max_objects: 10,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let n = m.sample(&mut rng);
            assert!((1..=10).contains(&n));
        }
    }

    #[test]
    fn area_model_clamps() {
        let m = AreaModel {
            ln_mu: -2.0,
            ln_sigma: 2.0,
            min: 0.01,
            max: 0.5,
            crowd_shrink: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 5, 20] {
            for _ in 0..100 {
                let a = m.sample(&mut rng, n);
                assert!((0.01..=0.5).contains(&a));
            }
        }
    }

    #[test]
    fn crowding_shrinks_areas_on_average() {
        let m = AreaModel {
            ln_mu: -2.0,
            ln_sigma: 0.8,
            min: 1e-4,
            max: 0.9,
            crowd_shrink: 0.6,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mean = |n: usize, rng: &mut StdRng| -> f64 {
            (0..400).map(|_| m.sample(rng, n)).sum::<f64>() / 400.0
        };
        let sparse = mean(1, &mut rng);
        let crowded = mean(12, &mut rng);
        assert!(crowded < sparse, "crowded {crowded} vs sparse {sparse}");
    }

    #[test]
    fn difficulty_in_unit_interval() {
        let m = DifficultyModel {
            alpha: 2.0,
            beta: 3.0,
            base: 0.2,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn scene_sampling_is_deterministic() {
        let p = DatasetProfile::voc();
        assert_eq!(Scene::sample(&p, 9, 4), Scene::sample(&p, 9, 4));
        assert_ne!(Scene::sample(&p, 9, 4), Scene::sample(&p, 9, 5));
        assert_ne!(Scene::sample(&p, 9, 4), Scene::sample(&p, 10, 4));
    }

    #[test]
    fn scene_objects_within_unit_square() {
        let p = DatasetProfile::coco18();
        for id in 0..50 {
            let s = Scene::sample(&p, 1, id);
            for o in &s.objects {
                assert!(o.bbox.x_min() >= 0.0 && o.bbox.x_max() <= 1.0);
                assert!(o.bbox.y_min() >= 0.0 && o.bbox.y_max() <= 1.0);
                assert!(o.area_ratio() > 0.0);
            }
        }
    }

    #[test]
    fn scene_classes_belong_to_taxonomy() {
        let p = DatasetProfile::helmet();
        for id in 0..50 {
            let s = Scene::sample(&p, 2, id);
            for o in &s.objects {
                assert!(p.taxonomy.contains(o.class));
            }
        }
    }

    #[test]
    fn helmet_is_harsher_than_voc() {
        let voc = DatasetProfile::voc();
        let helmet = DatasetProfile::helmet();
        let mean_blur = |p: &DatasetProfile| -> f64 {
            (0..300)
                .map(|id| Scene::sample(p, 3, id).camera_blur)
                .sum::<f64>()
                / 300.0
        };
        assert!(mean_blur(&helmet) > mean_blur(&voc));
        let mean_diff = |p: &DatasetProfile| -> f64 {
            (0..300)
                .map(|id| Scene::sample(p, 3, id).mean_difficulty())
                .sum::<f64>()
                / 300.0
        };
        assert!(mean_diff(&helmet) > mean_diff(&voc));
    }

    #[test]
    fn coco_has_more_and_smaller_objects_than_voc() {
        let voc = DatasetProfile::voc();
        let coco = DatasetProfile::coco18();
        let stats = |p: &DatasetProfile| -> (f64, f64) {
            let mut count = 0.0;
            let mut area = 0.0;
            let mut n_obj = 0.0;
            for id in 0..500 {
                let s = Scene::sample(p, 7, id);
                count += s.num_objects() as f64;
                for o in &s.objects {
                    area += o.area_ratio();
                    n_obj += 1.0;
                }
            }
            (count / 500.0, area / n_obj)
        };
        let (voc_count, voc_area) = stats(&voc);
        let (coco_count, coco_area) = stats(&coco);
        assert!(coco_count > voc_count);
        assert!(coco_area < voc_area);
    }
}
