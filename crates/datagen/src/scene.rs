//! Scenes: the ground-truth description of one camera frame.

use detcore::{BBox, ClassId, GroundTruth};
use imaging::{ObjectRenderSpec, RenderSpec};
use serde::{Deserialize, Serialize};

/// One annotated object in a scene.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneObject {
    /// Object class.
    pub class: ClassId,
    /// Object extent in normalised coordinates.
    pub bbox: BBox,
    /// Intrinsic recognition difficulty in `[0, 1]` — occlusion, unusual
    /// pose, partial visibility. High values make *any* detector more likely
    /// to miss the object; small models suffer more (see `modelzoo`).
    pub difficulty: f64,
    /// Texture seed for rendering.
    pub texture_seed: u64,
}

impl SceneObject {
    /// Area ratio of the object (box area relative to the image).
    pub fn area_ratio(&self) -> f64 {
        self.bbox.area()
    }
}

/// A fully specified scene: objects plus camera conditions.
///
/// A `Scene` is the synthetic analogue of an annotated dataset image: the
/// objects are the ground truth; the camera fields describe global conditions
/// (defocus blur, sensor noise, illumination) that the HELMET dataset in the
/// paper exhibits ("blur, occlusion, water stains, smoke, insufficient
/// light").
///
/// # Examples
///
/// ```
/// use datagen::{DatasetProfile, Scene};
///
/// let profile = DatasetProfile::voc();
/// let scene = Scene::sample(&profile, 42, 0);
/// assert!(!scene.objects.is_empty());
/// assert!(scene.min_area_ratio().unwrap() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Unique image identifier within its dataset.
    pub id: u64,
    /// Annotated objects.
    pub objects: Vec<SceneObject>,
    /// Camera defocus blur sigma, in pixels at the reference resolution.
    pub camera_blur: f64,
    /// Sensor noise standard deviation.
    pub noise_std: f64,
    /// Illumination gain (1 = nominal).
    pub illumination: f64,
    /// Master seed used to derive all per-scene randomness.
    pub seed: u64,
}

impl Scene {
    /// The scene's objects as detcore ground truths.
    pub fn ground_truths(&self) -> Vec<GroundTruth> {
        let mut out = Vec::with_capacity(self.objects.len());
        self.ground_truths_into(&mut out);
        out
    }

    /// [`ground_truths`](Self::ground_truths) into a reused buffer: clears
    /// `out` and refills it. Evaluation loops that visit one scene at a
    /// time keep a single buffer warm instead of allocating per image.
    pub fn ground_truths_into(&self, out: &mut Vec<GroundTruth>) {
        out.clear();
        out.extend(
            self.objects
                .iter()
                .map(|o| GroundTruth::new(o.class, o.bbox)),
        );
    }

    /// Number of annotated objects — the first semantic feature the paper's
    /// discriminator estimates.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// The minimum object area ratio — the second semantic feature — or
    /// `None` for an empty scene.
    pub fn min_area_ratio(&self) -> Option<f64> {
        self.objects
            .iter()
            .map(|o| o.area_ratio())
            .min_by(|a, b| a.partial_cmp(b).expect("areas are finite"))
    }

    /// Mean intrinsic difficulty of the scene's objects (0 for empty scenes).
    pub fn mean_difficulty(&self) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        self.objects.iter().map(|o| o.difficulty).sum::<f64>() / self.objects.len() as f64
    }

    /// Builds the render description for this scene at the given resolution.
    pub fn render_spec(&self, width: usize, height: usize) -> RenderSpec {
        RenderSpec {
            width,
            height,
            background_seed: self.seed,
            objects: self
                .objects
                .iter()
                .map(|o| ObjectRenderSpec {
                    bbox: o.bbox,
                    texture_seed: o.texture_seed,
                    base_intensity: 140u8.saturating_add((o.texture_seed % 80) as u8),
                })
                .collect(),
            blur_sigma: self.camera_blur,
            noise_std: self.noise_std,
            illumination: self.illumination,
            noise_seed: self.seed ^ 0x5bf0_3635,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(area_side: f64, difficulty: f64) -> SceneObject {
        SceneObject {
            class: ClassId(0),
            bbox: BBox::new(0.1, 0.1, 0.1 + area_side, 0.1 + area_side).unwrap(),
            difficulty,
            texture_seed: 1,
        }
    }

    #[test]
    fn min_area_ratio_empty_is_none() {
        let s = Scene {
            id: 0,
            objects: vec![],
            camera_blur: 0.0,
            noise_std: 0.0,
            illumination: 1.0,
            seed: 1,
        };
        assert_eq!(s.min_area_ratio(), None);
        assert_eq!(s.mean_difficulty(), 0.0);
        assert!(s.ground_truths().is_empty());
    }

    #[test]
    fn min_area_ratio_picks_smallest() {
        let s = Scene {
            id: 0,
            objects: vec![obj(0.5, 0.1), obj(0.2, 0.9)],
            camera_blur: 0.0,
            noise_std: 0.0,
            illumination: 1.0,
            seed: 1,
        };
        assert!((s.min_area_ratio().unwrap() - 0.04).abs() < 1e-12);
        assert_eq!(s.num_objects(), 2);
        assert!((s.mean_difficulty() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_spec_carries_camera_state() {
        let s = Scene {
            id: 3,
            objects: vec![obj(0.3, 0.2)],
            camera_blur: 1.5,
            noise_std: 3.0,
            illumination: 0.8,
            seed: 77,
        };
        let spec = s.render_spec(64, 48);
        assert_eq!(spec.width, 64);
        assert_eq!(spec.objects.len(), 1);
        assert_eq!(spec.blur_sigma, 1.5);
        assert_eq!(spec.illumination, 0.8);
    }
}
