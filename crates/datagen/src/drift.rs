//! Deterministic distribution-drift schedules.
//!
//! A deployed camera's scene statistics are not stationary: night falls,
//! crews change, smoke rolls in. A [`DriftSchedule`] describes that as a
//! piecewise-constant sequence of [`DatasetProfile`]s over *virtual* time —
//! phase boundaries are plain numbers, so which profile generates a frame
//! is a pure function of the frame's timestamp and the whole run stays
//! bit-reproducible. Fleet populations sample their scenes through a
//! schedule (`FleetSpec::drift` in `smallbig-core`), and the model-update
//! eval uses one to show static calibration decaying while the update loop
//! re-fits.
//!
//! # Example
//!
//! ```
//! use datagen::{DatasetProfile, DriftSchedule};
//!
//! let drift = DriftSchedule::day_night(DatasetProfile::helmet(), 30.0);
//! assert_eq!(drift.profile_at(0.0).name, "helmet");
//! assert_eq!(drift.profile_at(31.0).name, "helmet-night");
//! assert_eq!(drift.phase_index(31.0), 1);
//! ```

use crate::DatasetProfile;
use serde::{Deserialize, Serialize};

/// One constant-distribution phase of a [`DriftSchedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftPhase {
    /// Virtual time (seconds) at which this phase takes over.
    pub start_s: f64,
    /// The generative profile in force during the phase.
    pub profile: DatasetProfile,
}

/// A piecewise-constant drift schedule over virtual time.
///
/// Phases are ordered by `start_s`; the first phase must start at `0.0`
/// so every timestamp maps to exactly one profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftSchedule {
    /// The phases, in strictly increasing `start_s` order.
    pub phases: Vec<DriftPhase>,
}

impl DriftSchedule {
    /// A schedule with a single constant phase (no drift).
    pub fn constant(profile: DatasetProfile) -> DriftSchedule {
        DriftSchedule {
            phases: vec![DriftPhase {
                start_s: 0.0,
                profile,
            }],
        }
    }

    /// Day/night swap: `base` until `swap_at_s`, then its night variant
    /// ([`DatasetProfile::night`] — harsher camera, dimmer light, smaller
    /// and intrinsically harder objects).
    pub fn day_night(base: DatasetProfile, swap_at_s: f64) -> DriftSchedule {
        let night = base.night();
        DriftSchedule {
            phases: vec![
                DriftPhase {
                    start_s: 0.0,
                    profile: base,
                },
                DriftPhase {
                    start_s: swap_at_s,
                    profile: night,
                },
            ],
        }
    }

    /// Difficulty ramp: `steps` phases of `step_s` seconds each, raising
    /// the difficulty floor by `delta` per step (clamped to `[0, 1]`).
    pub fn difficulty_ramp(
        base: DatasetProfile,
        step_s: f64,
        steps: usize,
        delta: f64,
    ) -> DriftSchedule {
        let phases = (0..steps.max(1))
            .map(|i| {
                let mut profile = base.clone();
                profile.difficulty.base =
                    (profile.difficulty.base + delta * i as f64).clamp(0.0, 1.0);
                DriftPhase {
                    start_s: step_s * i as f64,
                    profile,
                }
            })
            .collect();
        DriftSchedule { phases }
    }

    /// Class-mix shift: `base` until `at_s`, then the same profile with
    /// `class_weights` (must match the taxonomy length — validated by
    /// [`DriftSchedule::validate`]).
    pub fn class_mix_shift(
        base: DatasetProfile,
        at_s: f64,
        class_weights: Vec<f64>,
    ) -> DriftSchedule {
        let mut shifted = base.clone();
        shifted.class_weights = class_weights;
        DriftSchedule {
            phases: vec![
                DriftPhase {
                    start_s: 0.0,
                    profile: base,
                },
                DriftPhase {
                    start_s: at_s,
                    profile: shifted,
                },
            ],
        }
    }

    /// Index of the phase in force at virtual time `t_s`.
    pub fn phase_index(&self, t_s: f64) -> usize {
        let mut idx = 0;
        for (i, p) in self.phases.iter().enumerate() {
            if p.start_s <= t_s {
                idx = i;
            } else {
                break;
            }
        }
        idx
    }

    /// The profile in force at virtual time `t_s`.
    pub fn profile_at(&self, t_s: f64) -> &DatasetProfile {
        &self.phases[self.phase_index(t_s)].profile
    }

    /// Checks the schedule's invariants, returning a description of the
    /// first violation: at least one phase, the first starting at `0.0`,
    /// start times finite and strictly increasing, and every phase's class
    /// weights matching its taxonomy.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("drift schedule has no phases".to_string());
        }
        if self.phases[0].start_s != 0.0 {
            return Err(format!(
                "first drift phase must start at 0.0, not {}",
                self.phases[0].start_s
            ));
        }
        for pair in self.phases.windows(2) {
            if !(pair[1].start_s > pair[0].start_s && pair[1].start_s.is_finite()) {
                return Err(format!(
                    "drift phase starts must be finite and strictly increasing \
                     ({} then {})",
                    pair[0].start_s, pair[1].start_s
                ));
            }
        }
        for (i, p) in self.phases.iter().enumerate() {
            if p.profile.class_weights.len() != p.profile.taxonomy.len() {
                return Err(format!(
                    "drift phase {i}: {} class weights for a {}-class taxonomy",
                    p.profile.class_weights.len(),
                    p.profile.taxonomy.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scene;

    #[test]
    fn day_night_swaps_at_boundary() {
        let d = DriftSchedule::day_night(DatasetProfile::helmet(), 30.0);
        d.validate().unwrap();
        assert_eq!(d.phase_index(0.0), 0);
        assert_eq!(d.phase_index(29.999), 0);
        assert_eq!(d.phase_index(30.0), 1);
        assert_eq!(d.profile_at(100.0).name, "helmet-night");
    }

    #[test]
    fn difficulty_ramp_is_monotone() {
        let d = DriftSchedule::difficulty_ramp(DatasetProfile::voc(), 10.0, 4, 0.1);
        d.validate().unwrap();
        let bases: Vec<f64> = d.phases.iter().map(|p| p.profile.difficulty.base).collect();
        assert_eq!(bases.len(), 4);
        assert!(bases.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(d.phase_index(35.0), 3);
    }

    #[test]
    fn class_mix_shift_changes_weights_only() {
        let base = DatasetProfile::helmet();
        let d = DriftSchedule::class_mix_shift(base.clone(), 20.0, vec![1.0, 5.0]);
        d.validate().unwrap();
        assert_eq!(d.profile_at(0.0), &base);
        assert_eq!(d.profile_at(20.0).class_weights, vec![1.0, 5.0]);
        assert_eq!(d.profile_at(20.0).camera, base.camera);
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        assert!(DriftSchedule { phases: vec![] }.validate().is_err());
        let late_start = DriftSchedule {
            phases: vec![DriftPhase {
                start_s: 1.0,
                profile: DatasetProfile::helmet(),
            }],
        };
        assert!(late_start.validate().unwrap_err().contains("start at 0.0"));
        let mut bad_order = DriftSchedule::day_night(DatasetProfile::helmet(), 30.0);
        bad_order.phases[1].start_s = 0.0;
        assert!(bad_order.validate().unwrap_err().contains("increasing"));
        let bad_weights =
            DriftSchedule::class_mix_shift(DatasetProfile::helmet(), 20.0, vec![1.0, 2.0, 3.0]);
        assert!(bad_weights
            .validate()
            .unwrap_err()
            .contains("class weights"));
    }

    #[test]
    fn night_scenes_are_deterministic_and_harsher() {
        let day = DatasetProfile::helmet();
        let night = day.night();
        assert_eq!(Scene::sample(&night, 5, 2), Scene::sample(&night, 5, 2));
        let mean = |p: &DatasetProfile, f: &dyn Fn(&Scene) -> f64| -> f64 {
            (0..200).map(|id| f(&Scene::sample(p, 11, id))).sum::<f64>() / 200.0
        };
        assert!(
            mean(&night, &|s| s.camera_blur) > mean(&day, &|s| s.camera_blur),
            "night blurrier"
        );
        assert!(
            mean(&night, &|s| s.mean_difficulty()) > mean(&day, &|s| s.mean_difficulty()),
            "night harder"
        );
        assert!(
            mean(&night, &|s| s.illumination) < mean(&day, &|s| s.illumination),
            "night darker"
        );
    }

    #[test]
    fn schedule_round_trips_through_json() {
        let d = DriftSchedule::day_night(DatasetProfile::helmet(), 30.0);
        let json = serde_json::to_string(&d).unwrap();
        let back: DriftSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
