//! The paper's train/test splits, reproduced at their published sizes.
//!
//! | Split   | Train                                   | Test                  |
//! |---------|-----------------------------------------|-----------------------|
//! | 07      | VOC2007 trainval (5011)                 | VOC2007 test (4952)   |
//! | 07+12   | VOC2007 trainval + VOC2012 trainval (16551) | VOC2007 test (4952) |
//! | 07++12  | VOC2007 trainval+test (9963) + VOC2012 trainval (6588) | 4952 from VOC2012 |
//! | COCO    | 93353 images (18 VOC classes)           | 4914 images           |
//! | HELMET  | Sedna building-site footage             | held-out site footage |
//!
//! Each component dataset is generated from its profile with a fixed seed, so
//! 07 and 07+12 share the *identical* test set, exactly as in the paper.

use crate::{Dataset, DatasetProfile};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier for one of the paper's dataset splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplitId {
    /// VOC2007 only.
    Voc07,
    /// VOC2007 + VOC2012 trainval; VOC2007 test.
    Voc0712,
    /// VOC2007 trainval+test + VOC2012 trainval; VOC2012 test sample.
    Voc0712pp,
    /// The 18-class COCO subset.
    Coco18,
    /// The Sedna HELMET dataset.
    Helmet,
}

impl SplitId {
    /// All splits in the paper's table order.
    pub const ALL: [SplitId; 5] = [
        SplitId::Voc07,
        SplitId::Voc0712,
        SplitId::Voc0712pp,
        SplitId::Coco18,
        SplitId::Helmet,
    ];

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            SplitId::Voc07 => "07",
            SplitId::Voc0712 => "07+12",
            SplitId::Voc0712pp => "07++12",
            SplitId::Coco18 => "COCO",
            SplitId::Helmet => "HELMET",
        }
    }

    /// The four splits used in Tables III–VIII (without HELMET).
    pub const PAPER_MAIN: [SplitId; 4] = [
        SplitId::Voc07,
        SplitId::Voc0712,
        SplitId::Voc0712pp,
        SplitId::Coco18,
    ];
}

impl fmt::Display for SplitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Published sizes of each component (images).
mod sizes {
    pub const VOC07_TRAINVAL: usize = 5011;
    pub const VOC07_TEST: usize = 4952;
    pub const VOC12_TRAINVAL: usize = 11540;
    pub const VOC12_PP_TRAIN: usize = 6588;
    pub const VOC12_PP_TEST: usize = 4952;
    pub const COCO_TRAIN: usize = 93353;
    pub const COCO_TEST: usize = 4914;
    pub const HELMET_TRAIN: usize = 2500;
    pub const HELMET_TEST: usize = 480;
}

/// Component seeds: fixed so that shared components are bit-identical across
/// splits (e.g. the VOC2007 test set in 07 and 07+12).
mod seeds {
    pub const VOC07_TRAINVAL: u64 = 0x0007_aa01;
    pub const VOC07_TEST: u64 = 0x0007_cc02;
    pub const VOC12_TRAINVAL: u64 = 0x0012_bb03;
    pub const VOC12_PP_TEST: u64 = 0x0012_dd04;
    pub const COCO_TRAIN: u64 = 0x00c0_c001;
    pub const COCO_TEST: u64 = 0x00c0_c002;
    pub const HELMET_TRAIN: u64 = 0x00af_0041;
    pub const HELMET_TEST: u64 = 0x00af_0042;
}

/// A train/test split over one taxonomy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Split {
    /// Which split this is.
    pub id: SplitId,
    /// Training images (used for labelling + threshold calibration).
    pub train: Dataset,
    /// Test images (used for every reported table).
    pub test: Dataset,
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(30)
}

impl Split {
    /// Loads a split at its full published size.
    pub fn load(id: SplitId) -> Split {
        Split::load_scaled(id, 1.0)
    }

    /// Loads a split with all component sizes multiplied by `scale`
    /// (minimum 30 images per component). Useful for fast tests.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn load_scaled(id: SplitId, scale: f64) -> Split {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let voc = DatasetProfile::voc();
        let coco = DatasetProfile::coco18();
        let helmet = DatasetProfile::helmet();
        match id {
            SplitId::Voc07 => Split {
                id,
                train: Dataset::generate(
                    "voc07-trainval",
                    &voc,
                    scaled(sizes::VOC07_TRAINVAL, scale),
                    seeds::VOC07_TRAINVAL,
                ),
                test: Dataset::generate(
                    "voc07-test",
                    &voc,
                    scaled(sizes::VOC07_TEST, scale),
                    seeds::VOC07_TEST,
                ),
            },
            SplitId::Voc0712 => {
                let t07 = Dataset::generate(
                    "voc07-trainval",
                    &voc,
                    scaled(sizes::VOC07_TRAINVAL, scale),
                    seeds::VOC07_TRAINVAL,
                );
                let t12 = Dataset::generate(
                    "voc12-trainval",
                    &voc,
                    scaled(sizes::VOC12_TRAINVAL, scale),
                    seeds::VOC12_TRAINVAL,
                );
                Split {
                    id,
                    train: t07.concat(&t12, "voc0712-trainval"),
                    test: Dataset::generate(
                        "voc07-test",
                        &voc,
                        scaled(sizes::VOC07_TEST, scale),
                        seeds::VOC07_TEST,
                    ),
                }
            }
            SplitId::Voc0712pp => {
                let t07 = Dataset::generate(
                    "voc07-trainval",
                    &voc,
                    scaled(sizes::VOC07_TRAINVAL, scale),
                    seeds::VOC07_TRAINVAL,
                );
                let t07test = Dataset::generate(
                    "voc07-test",
                    &voc,
                    scaled(sizes::VOC07_TEST, scale),
                    seeds::VOC07_TEST,
                );
                let t12 = Dataset::generate(
                    "voc12pp-train",
                    &voc,
                    scaled(sizes::VOC12_PP_TRAIN, scale),
                    seeds::VOC12_TRAINVAL,
                );
                let train = t07
                    .concat(&t07test, "voc07-all")
                    .concat(&t12, "voc0712pp-train");
                Split {
                    id,
                    train,
                    test: Dataset::generate(
                        "voc12-test",
                        &voc,
                        scaled(sizes::VOC12_PP_TEST, scale),
                        seeds::VOC12_PP_TEST,
                    ),
                }
            }
            SplitId::Coco18 => Split {
                id,
                train: Dataset::generate(
                    "coco18-train",
                    &coco,
                    scaled(sizes::COCO_TRAIN, scale),
                    seeds::COCO_TRAIN,
                ),
                test: Dataset::generate(
                    "coco18-test",
                    &coco,
                    scaled(sizes::COCO_TEST, scale),
                    seeds::COCO_TEST,
                ),
            },
            SplitId::Helmet => Split {
                id,
                train: Dataset::generate(
                    "helmet-train",
                    &helmet,
                    scaled(sizes::HELMET_TRAIN, scale),
                    seeds::HELMET_TRAIN,
                ),
                test: Dataset::generate(
                    "helmet-test",
                    &helmet,
                    scaled(sizes::HELMET_TEST, scale),
                    seeds::HELMET_TEST,
                ),
            },
        }
    }

    /// The profile this split's scenes were drawn from.
    pub fn profile(&self) -> DatasetProfile {
        match self.id {
            SplitId::Voc07 | SplitId::Voc0712 | SplitId::Voc0712pp => DatasetProfile::voc(),
            SplitId::Coco18 => DatasetProfile::coco18(),
            SplitId::Helmet => DatasetProfile::helmet(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sizes_match_paper() {
        // use a small scale for the big ones; check exact arithmetic at scale 1
        assert_eq!(scaled(sizes::VOC07_TRAINVAL, 1.0), 5011);
        assert_eq!(scaled(sizes::VOC07_TEST, 1.0), 4952);
        assert_eq!(
            scaled(sizes::VOC07_TRAINVAL, 1.0) + scaled(sizes::VOC12_TRAINVAL, 1.0),
            16551
        );
        assert_eq!(
            scaled(sizes::VOC07_TRAINVAL, 1.0)
                + scaled(sizes::VOC07_TEST, 1.0)
                + scaled(sizes::VOC12_PP_TRAIN, 1.0),
            16551
        );
        assert_eq!(scaled(sizes::COCO_TRAIN, 1.0), 93353);
        assert_eq!(scaled(sizes::COCO_TEST, 1.0), 4914);
    }

    #[test]
    fn voc07_and_0712_share_test_set() {
        let a = Split::load_scaled(SplitId::Voc07, 0.02);
        let b = Split::load_scaled(SplitId::Voc0712, 0.02);
        assert_eq!(a.test.scenes(), b.test.scenes());
    }

    #[test]
    fn pp_test_set_differs_from_07_test() {
        let a = Split::load_scaled(SplitId::Voc07, 0.02);
        let c = Split::load_scaled(SplitId::Voc0712pp, 0.02);
        assert_ne!(a.test.scenes(), c.test.scenes());
    }

    #[test]
    fn train_is_larger_for_composed_splits() {
        let a = Split::load_scaled(SplitId::Voc07, 0.02);
        let b = Split::load_scaled(SplitId::Voc0712, 0.02);
        assert!(b.train.len() > a.train.len());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(SplitId::Voc07.label(), "07");
        assert_eq!(SplitId::Voc0712.label(), "07+12");
        assert_eq!(SplitId::Voc0712pp.label(), "07++12");
        assert_eq!(SplitId::Coco18.label(), "COCO");
        assert_eq!(format!("{}", SplitId::Helmet), "HELMET");
    }

    #[test]
    fn helmet_uses_helmet_taxonomy() {
        let s = Split::load_scaled(SplitId::Helmet, 0.1);
        assert_eq!(s.train.taxonomy().len(), 2);
        assert_eq!(s.profile().name, "helmet");
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        let _ = Split::load_scaled(SplitId::Voc07, 0.0);
    }

    #[test]
    fn loading_is_deterministic() {
        let a = Split::load_scaled(SplitId::Coco18, 0.005);
        let b = Split::load_scaled(SplitId::Coco18, 0.005);
        assert_eq!(a.train.scenes(), b.train.scenes());
        assert_eq!(a.test.scenes(), b.test.scenes());
    }
}
