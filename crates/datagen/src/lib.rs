//! # datagen — synthetic dataset substrate
//!
//! Generates VOC-, COCO- and HELMET-like datasets for the smallbig
//! reproduction. A dataset is a set of [`Scene`]s — ground-truth object
//! layouts plus camera conditions — drawn deterministically from a
//! [`DatasetProfile`] that encodes the statistics the paper's analysis
//! depends on (Fig. 4): the object-count distribution, the object
//! area-ratio distribution, intrinsic difficulty and camera degradation.
//!
//! The paper's exact split structure is reproduced by [`Split`]:
//! `07`, `07+12`, `07++12`, `COCO` (18-class subset) and `HELMET` at the
//! published image counts.
//!
//! # Example
//!
//! ```
//! use datagen::{Split, SplitId};
//!
//! // Scaled-down 07 split for a quick experiment:
//! let split = Split::load_scaled(SplitId::Voc07, 0.01);
//! assert_eq!(split.test.taxonomy().len(), 20);
//! println!("{} train / {} test", split.train.len(), split.test.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod drift;
mod profile;
mod scene;
mod splits;
mod stats;
mod video;

pub use dataset::Dataset;
pub use drift::{DriftPhase, DriftSchedule};
pub use profile::{AreaModel, CameraModel, CountModel, DatasetProfile, DifficultyModel};
pub use scene::{Scene, SceneObject};
pub use splits::{Split, SplitId};
pub use stats::DatasetStats;
pub use video::{VideoProfile, VideoSequence};
