//! Network-link models: how long a payload takes to cross the edge↔cloud hop.

use crate::trace::LinkState;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// A point-to-point network link with bandwidth, latency, jitter and loss.
///
/// Transfer time is `rtt + bytes × 8 / bandwidth`, scaled by a log-normal
/// jitter multiplier; each lost transfer (probability `loss_prob`) costs one
/// retransmission round (an extra RTT plus the payload time again).
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use simnet::LinkModel;
///
/// let wlan = LinkModel::wlan();
/// let mut rng = StdRng::seed_from_u64(1);
/// let t = wlan.transfer_time(60_000, &mut rng);
/// assert!(t > 0.0 && t < 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    name: String,
    /// Usable bandwidth, bits per second.
    bandwidth_bps: f64,
    /// Round-trip time in seconds.
    rtt_s: f64,
    /// Log-normal jitter sigma (0 = deterministic).
    jitter_sigma: f64,
    /// Probability a transfer must be retransmitted.
    loss_prob: f64,
}

impl LinkModel {
    /// Creates a link model.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth/RTT are non-positive, jitter is negative, or the
    /// loss probability is outside `[0, 1)`.
    pub fn new(
        name: &str,
        bandwidth_bps: f64,
        rtt_s: f64,
        jitter_sigma: f64,
        loss_prob: f64,
    ) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(rtt_s >= 0.0, "rtt must be non-negative");
        assert!(jitter_sigma >= 0.0, "jitter must be non-negative");
        assert!(
            (0.0..1.0).contains(&loss_prob),
            "loss probability in [0, 1)"
        );
        LinkModel {
            name: name.to_string(),
            bandwidth_bps,
            rtt_s,
            jitter_sigma,
            loss_prob,
        }
    }

    /// The paper's testbed link: a shared WLAN between the Jetson Nano and
    /// the server. Calibrated so a HELMET frame upload plus SSD inference
    /// reproduces Table XI's cloud-only total (264.76 s for the test set):
    /// ≈ 1.3 Mbit/s sustained with 30 ms RTT and mild jitter.
    pub fn wlan() -> Self {
        LinkModel::new("wlan", 1.3e6, 0.030, 0.25, 0.02)
    }

    /// A campus-grade wired/5 GHz link (for ablations): 50 Mbit/s, 10 ms RTT.
    pub fn fast_wifi() -> Self {
        LinkModel::new("fast-wifi", 50.0e6, 0.010, 0.10, 0.005)
    }

    /// A cellular WAN uplink (for ablations): 2 Mbit/s, 80 ms RTT, lossy.
    pub fn cellular() -> Self {
        LinkModel::new("cellular", 2.0e6, 0.080, 0.40, 0.05)
    }

    /// Link name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Usable bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// Round-trip time in seconds.
    pub fn rtt_s(&self) -> f64 {
        self.rtt_s
    }

    /// Probability a transfer must be retransmitted.
    pub fn loss_prob(&self) -> f64 {
        self.loss_prob
    }

    /// The link's nominal operating point as an observable [`LinkState`]
    /// (what an adaptive offload policy sees for a static link).
    pub fn state(&self) -> LinkState {
        LinkState {
            bandwidth_bps: self.bandwidth_bps,
            rtt_s: self.rtt_s,
            loss_prob: self.loss_prob,
        }
    }

    /// Deterministic (jitter-free, loss-free) transfer time for a payload.
    pub fn nominal_transfer_time(&self, bytes: usize) -> f64 {
        self.rtt_s + bytes as f64 * 8.0 / self.bandwidth_bps
    }

    /// One log-normal jitter multiplier (1.0 when the link is jitter-free).
    pub(crate) fn jitter_draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.jitter_sigma > 0.0 {
            LogNormal::new(0.0, self.jitter_sigma)
                .expect("validated sigma")
                .sample(rng)
        } else {
            1.0
        }
    }

    /// [`transfer_time`](Self::transfer_time) with the link's bandwidth/RTT
    /// scaled and the loss probability overridden — the shared core of the
    /// static path and [`crate::LinkTrace::transfer_time_at`]. At identity
    /// scales and the link's own loss this is *bit-identical* to the static
    /// path (multiplying by 1.0 is exact in IEEE-754), which is what lets a
    /// constant trace reproduce a static link's draws.
    pub(crate) fn transfer_time_scaled<R: Rng + ?Sized>(
        &self,
        bytes: usize,
        bandwidth_scale: f64,
        rtt_scale: f64,
        loss_prob: f64,
        rng: &mut R,
    ) -> f64 {
        let rtt = self.rtt_s * rtt_scale;
        let base = rtt + bytes as f64 * 8.0 / (self.bandwidth_bps * bandwidth_scale);
        let mut total = base * self.jitter_draw(rng);
        // Geometric retransmissions.
        let mut guard = 0;
        while rng.gen::<f64>() < loss_prob && guard < 8 {
            total += rtt + base;
            guard += 1;
        }
        total
    }

    /// Stochastic transfer time for a payload, including jitter and
    /// retransmissions. Deterministic given the RNG state.
    pub fn transfer_time<R: Rng + ?Sized>(&self, bytes: usize, rng: &mut R) -> f64 {
        self.transfer_time_scaled(bytes, 1.0, 1.0, self.loss_prob, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_time_is_rtt_plus_serialisation() {
        let l = LinkModel::new("l", 8e6, 0.02, 0.0, 0.0);
        // 1 MB over 8 Mbit/s = 1 s, plus 20 ms RTT
        assert!((l.nominal_transfer_time(1_000_000) - 1.02).abs() < 1e-9);
    }

    #[test]
    fn zero_jitter_zero_loss_is_deterministic() {
        let l = LinkModel::new("l", 8e6, 0.02, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let a = l.transfer_time(500_000, &mut rng);
        assert!((a - l.nominal_transfer_time(500_000)).abs() < 1e-12);
    }

    #[test]
    fn jitter_is_reproducible_per_seed() {
        let l = LinkModel::wlan();
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(
            l.transfer_time(60_000, &mut r1),
            l.transfer_time(60_000, &mut r2)
        );
    }

    #[test]
    fn larger_payloads_take_longer_on_average() {
        let l = LinkModel::wlan();
        let mut rng = StdRng::seed_from_u64(7);
        let small: f64 = (0..200).map(|_| l.transfer_time(10_000, &mut rng)).sum();
        let mut rng = StdRng::seed_from_u64(7);
        let large: f64 = (0..200).map(|_| l.transfer_time(200_000, &mut rng)).sum();
        assert!(large > small);
    }

    #[test]
    fn loss_adds_retransmission_cost() {
        let lossless = LinkModel::new("a", 1e6, 0.02, 0.0, 0.0);
        let lossy = LinkModel::new("b", 1e6, 0.02, 0.0, 0.5);
        let mut rng = StdRng::seed_from_u64(9);
        let t0: f64 = (0..300)
            .map(|_| lossless.transfer_time(50_000, &mut rng))
            .sum();
        let mut rng = StdRng::seed_from_u64(9);
        let t1: f64 = (0..300)
            .map(|_| lossy.transfer_time(50_000, &mut rng))
            .sum();
        assert!(t1 > t0 * 1.3);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_certain_loss() {
        let _ = LinkModel::new("bad", 1e6, 0.0, 0.0, 1.0);
    }

    #[test]
    fn wlan_uploads_frame_in_under_a_second_typically() {
        let l = LinkModel::wlan();
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..300)
            .map(|_| l.transfer_time(60_000, &mut rng))
            .sum::<f64>()
            / 300.0;
        assert!((0.2..1.2).contains(&mean), "mean wlan frame upload {mean}");
    }
}
