//! Dynamic network schedules and fault plans.
//!
//! A static [`LinkModel`] answers "how long does this payload take *now*";
//! this module makes "now" matter. A [`LinkTrace`] is a piecewise schedule
//! over **virtual time** that scales a base link's bandwidth/RTT and
//! overrides its loss probability — outages, diurnal ramps, Gilbert–Elliott
//! bursty loss, seeded random walks. A [`FaultPlan`] schedules cloud-server
//! stalls and per-session drop windows. [`RetryConfig`] is the exponential
//! backoff the session layer uses when a traced attempt fails.
//!
//! # Determinism contract
//!
//! Everything here is a pure function of `(constructor arguments, virtual
//! time, RNG state)`:
//!
//! * Stochastic constructors ([`LinkTrace::bursty`],
//!   [`LinkTrace::random_walk`]) expand their schedule **at construction
//!   time** from their own seeded [`StdRng`] stream — two traces built with
//!   the same arguments are equal segment-for-segment.
//! * Lookups ([`LinkTrace::segment_at`], [`FaultPlan::next_available`])
//!   never draw randomness.
//! * Per-transfer draws ([`LinkTrace::transfer_time_at`],
//!   [`LinkTrace::attempt_at`]) consume the caller's RNG in a documented
//!   order (loss check first, jitter only on success for `attempt_at`), so
//!   a run replays bit-identically under a fixed seed.
//! * A constant identity trace is bit-identical to the static link:
//!   `LinkTrace::constant().transfer_time_at(&link, bytes, t, rng)` equals
//!   `link.transfer_time(bytes, rng)` for every `t` (pinned by the simnet
//!   property suite).

use crate::link::LinkModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// The observable state of a (possibly traced) link at one virtual instant:
/// what an adaptive offload policy gets to see before deciding a frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkState {
    /// Effective usable bandwidth, bits per second (0 during an outage).
    pub bandwidth_bps: f64,
    /// Effective round-trip time in seconds.
    pub rtt_s: f64,
    /// Effective loss probability in `[0, 1]` (1 during an outage).
    pub loss_prob: f64,
}

impl LinkState {
    /// `true` when no transfer can succeed at this state.
    pub fn is_outage(&self) -> bool {
        self.bandwidth_bps <= 0.0 || self.loss_prob >= 1.0
    }

    /// Jitter-free transfer estimate for a payload at this state
    /// (`f64::INFINITY` during an outage) — the number an adaptive policy
    /// compares against its latency budget.
    pub fn nominal_transfer_time(&self, bytes: usize) -> f64 {
        if self.is_outage() {
            return f64::INFINITY;
        }
        self.rtt_s + bytes as f64 * 8.0 / self.bandwidth_bps
    }
}

/// One piece of a [`LinkTrace`]: the link's condition from `start_s` until
/// the next segment begins (the last segment extends forever).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSegment {
    /// Virtual time at which this segment takes effect, seconds.
    pub start_s: f64,
    /// Multiplier on the base link's bandwidth (`0` = outage).
    pub bandwidth_scale: f64,
    /// Multiplier on the base link's RTT.
    pub rtt_scale: f64,
    /// Loss probability override in `[0, 1]`; `None` inherits the base
    /// link's loss. `1.0` means a total outage (no transfer succeeds).
    pub loss_prob: Option<f64>,
}

impl TraceSegment {
    /// An identity segment starting at `start_s` (base link unchanged).
    pub fn identity(start_s: f64) -> Self {
        TraceSegment {
            start_s,
            bandwidth_scale: 1.0,
            rtt_scale: 1.0,
            loss_prob: None,
        }
    }

    /// A total-outage segment starting at `start_s`.
    pub fn outage(start_s: f64) -> Self {
        TraceSegment {
            start_s,
            bandwidth_scale: 0.0,
            rtt_scale: 1.0,
            loss_prob: Some(1.0),
        }
    }
}

/// A piecewise bandwidth/RTT/loss schedule over virtual time, applied on
/// top of a base [`LinkModel`].
///
/// Traces are *relative* (scales plus a loss override), so one scenario —
/// "a 30 s outage two minutes in", "tidal bandwidth", "bursty cellular
/// loss" — composes with any base link. Segment starts are strictly
/// increasing and the first segment starts at `0.0`, so every virtual
/// instant maps to exactly one segment.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use simnet::{LinkModel, LinkTrace};
///
/// let wlan = LinkModel::wlan();
/// let trace = LinkTrace::step_outage(10.0, 5.0);
/// let mut rng = StdRng::seed_from_u64(1);
/// assert!(trace.transfer_time_at(&wlan, 60_000, 2.0, &mut rng).is_some());
/// assert!(trace.transfer_time_at(&wlan, 60_000, 12.0, &mut rng).is_none());
/// assert!(trace.transfer_time_at(&wlan, 60_000, 15.0, &mut rng).is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkTrace {
    name: String,
    segments: Vec<TraceSegment>,
}

impl LinkTrace {
    /// Creates a trace from explicit segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, the first segment does not start at
    /// `0.0`, starts are not strictly increasing, a scale is negative or
    /// non-finite, or a loss override is outside `[0, 1]`.
    pub fn new(name: &str, segments: Vec<TraceSegment>) -> Self {
        assert!(!segments.is_empty(), "a trace needs at least one segment");
        assert!(
            segments[0].start_s == 0.0,
            "the first segment must start at virtual time 0"
        );
        for pair in segments.windows(2) {
            assert!(
                pair[0].start_s < pair[1].start_s,
                "segment starts must be strictly increasing"
            );
        }
        for seg in &segments {
            assert!(
                seg.bandwidth_scale.is_finite() && seg.bandwidth_scale >= 0.0,
                "bandwidth scale must be finite and non-negative"
            );
            assert!(
                seg.rtt_scale.is_finite() && seg.rtt_scale >= 0.0,
                "rtt scale must be finite and non-negative"
            );
            if let Some(loss) = seg.loss_prob {
                assert!((0.0..=1.0).contains(&loss), "loss override in [0, 1]");
            }
        }
        LinkTrace {
            name: name.to_string(),
            segments,
        }
    }

    /// The identity trace: the base link, unchanged, forever. Bit-identical
    /// to the static link (the zero-trace fast path's semantic anchor).
    pub fn constant() -> Self {
        LinkTrace::new("constant", vec![TraceSegment::identity(0.0)])
    }

    /// A single total outage: the link is healthy, goes completely dark at
    /// `start_s` for `duration_s` seconds, then recovers.
    ///
    /// # Panics
    ///
    /// Panics if `start_s` is negative or `duration_s` is non-positive.
    pub fn step_outage(start_s: f64, duration_s: f64) -> Self {
        assert!(start_s >= 0.0, "outage start must be non-negative");
        assert!(duration_s > 0.0, "outage duration must be positive");
        let mut segments = Vec::new();
        if start_s > 0.0 {
            segments.push(TraceSegment::identity(0.0));
        }
        segments.push(TraceSegment::outage(start_s));
        segments.push(TraceSegment::identity(start_s + duration_s));
        LinkTrace::new("step-outage", segments)
    }

    /// A total outage covering all of virtual time (the "cable cut"
    /// scenario: every upload must fall back to the edge).
    pub fn total_outage() -> Self {
        LinkTrace::new("total-outage", vec![TraceSegment::outage(0.0)])
    }

    /// A diurnal-style bandwidth ramp: capacity swings between
    /// `floor_scale` and `1.0` on a raised cosine of period `period_s`,
    /// sampled into `steps_per_period` piecewise-constant segments,
    /// repeated for `periods` cycles (full capacity afterwards).
    ///
    /// # Panics
    ///
    /// Panics if the period is non-positive, the floor is outside `(0, 1]`,
    /// or a count is zero.
    pub fn diurnal_ramp(
        period_s: f64,
        floor_scale: f64,
        steps_per_period: usize,
        periods: usize,
    ) -> Self {
        assert!(period_s > 0.0, "period must be positive");
        assert!(
            floor_scale > 0.0 && floor_scale <= 1.0,
            "floor scale in (0, 1]"
        );
        assert!(
            steps_per_period > 0 && periods > 0,
            "counts must be positive"
        );
        let mut segments = Vec::new();
        for cycle in 0..periods {
            for step in 0..steps_per_period {
                let start_s =
                    (cycle * steps_per_period + step) as f64 * period_s / steps_per_period as f64;
                // Raised cosine: full capacity at the period boundaries,
                // `floor_scale` mid-period.
                let phase = step as f64 / steps_per_period as f64;
                let depth = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                let scale = 1.0 - (1.0 - floor_scale) * depth;
                segments.push(TraceSegment {
                    start_s,
                    bandwidth_scale: scale,
                    rtt_scale: 1.0,
                    loss_prob: None,
                });
            }
        }
        segments.push(TraceSegment::identity(periods as f64 * period_s));
        LinkTrace::new("diurnal-ramp", segments)
    }

    /// Gilbert–Elliott-style bursty loss: the link alternates between a
    /// *good* state (base link unchanged) and a *bad* state (loss forced to
    /// `bad_loss`), with exponentially distributed sojourn times of mean
    /// `mean_good_s` / `mean_bad_s`, expanded from `seed` until
    /// `horizon_s` (good forever afterwards).
    ///
    /// # Panics
    ///
    /// Panics if a mean or the horizon is non-positive, or `bad_loss` is
    /// outside `[0, 1]`.
    pub fn bursty(
        seed: u64,
        horizon_s: f64,
        mean_good_s: f64,
        mean_bad_s: f64,
        bad_loss: f64,
    ) -> Self {
        assert!(horizon_s > 0.0, "horizon must be positive");
        assert!(
            mean_good_s > 0.0 && mean_bad_s > 0.0,
            "state sojourn means must be positive"
        );
        assert!((0.0..=1.0).contains(&bad_loss), "bad-state loss in [0, 1]");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6e57_b1a5);
        let mut segments = Vec::new();
        let mut t = 0.0f64;
        let mut good = true;
        while t < horizon_s {
            segments.push(if good {
                TraceSegment::identity(t)
            } else {
                TraceSegment {
                    start_s: t,
                    bandwidth_scale: 1.0,
                    rtt_scale: 1.0,
                    loss_prob: Some(bad_loss),
                }
            });
            // Inverse-CDF exponential sojourn; the epsilon keeps starts
            // strictly increasing even for extreme draws.
            let mean = if good { mean_good_s } else { mean_bad_s };
            let sojourn = (-mean * (1.0 - rng.gen::<f64>()).ln()).max(1e-6);
            t += sojourn;
            good = !good;
        }
        segments.push(TraceSegment::identity(t.max(horizon_s)));
        LinkTrace::new("bursty", segments)
    }

    /// A seeded geometric random walk on bandwidth: every `step_s` the
    /// capacity scale is multiplied by `exp(sigma · z)` (`z` standard
    /// normal) and clamped to `[floor_scale, ceil_scale]`, until
    /// `horizon_s` (last value holds afterwards).
    ///
    /// # Panics
    ///
    /// Panics if a duration is non-positive, `sigma` is negative, or the
    /// clamp range is empty or non-positive.
    pub fn random_walk(
        seed: u64,
        horizon_s: f64,
        step_s: f64,
        sigma: f64,
        floor_scale: f64,
        ceil_scale: f64,
    ) -> Self {
        assert!(
            horizon_s > 0.0 && step_s > 0.0,
            "durations must be positive"
        );
        assert!(sigma >= 0.0, "sigma must be non-negative");
        assert!(
            floor_scale > 0.0 && floor_scale <= ceil_scale,
            "need 0 < floor_scale <= ceil_scale"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7a1c_0de5);
        let normal = Normal::new(0.0, 1.0).expect("unit normal");
        let mut segments = Vec::new();
        let mut scale = 1.0f64.clamp(floor_scale, ceil_scale);
        let mut t = 0.0f64;
        while t < horizon_s {
            segments.push(TraceSegment {
                start_s: t,
                bandwidth_scale: scale,
                rtt_scale: 1.0,
                loss_prob: None,
            });
            scale =
                (scale * (sigma * normal.sample(&mut rng)).exp()).clamp(floor_scale, ceil_scale);
            t += step_s;
        }
        LinkTrace::new("random-walk", segments)
    }

    /// Trace name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace's segments, sorted by start time.
    pub fn segments(&self) -> &[TraceSegment] {
        &self.segments
    }

    /// The segment in effect at virtual time `t` (times before the first
    /// segment use the first; times past the last use the last).
    pub fn segment_at(&self, t: f64) -> &TraceSegment {
        let idx = self.segments.partition_point(|s| s.start_s <= t);
        &self.segments[idx.saturating_sub(1)]
    }

    /// The bandwidth scale in effect at virtual time `t` (piecewise
    /// constant; clamps like [`segment_at`](Self::segment_at)).
    pub fn scale_at(&self, t: f64) -> f64 {
        self.segment_at(t).bandwidth_scale
    }

    /// The integral of the bandwidth scale over `[0, t]`.
    ///
    /// Monotone non-decreasing in `t` (strictly increasing wherever the
    /// scale is positive), so it doubles as an *unnormalised arrival CDF*
    /// when a population layer uses "capacity over the day" as its arrival
    /// intensity. Negative `t` integrates to `0`.
    pub fn cumulative_scale(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.start_s >= t {
                break;
            }
            let end = match self.segments.get(i + 1) {
                Some(next) => next.start_s.min(t),
                None => t,
            };
            acc += (end - seg.start_s.max(0.0)).max(0.0) * seg.bandwidth_scale;
        }
        acc
    }

    /// The inverse of [`cumulative_scale`](Self::cumulative_scale): the
    /// earliest time `t` with `cumulative_scale(t) >= target`.
    ///
    /// Zero-scale segments contribute no mass, so no inverse value lands
    /// strictly inside an outage — arrivals scheduled through this function
    /// skip dark windows entirely. Targets past the trace's total mass
    /// extrapolate through the final (infinite) segment; if that segment
    /// has zero scale the result is `f64::INFINITY`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is negative or non-finite.
    pub fn time_at_cumulative_scale(&self, target: f64) -> f64 {
        assert!(
            target.is_finite() && target >= 0.0,
            "target mass must be finite and non-negative"
        );
        if target == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, seg) in self.segments.iter().enumerate() {
            let end = self.segments.get(i + 1).map(|next| next.start_s);
            let width = match end {
                Some(end) => end - seg.start_s,
                None => f64::INFINITY,
            };
            let mass = width * seg.bandwidth_scale;
            if acc + mass >= target || end.is_none() {
                if seg.bandwidth_scale <= 0.0 {
                    // Final segment is an outage: the target is unreachable.
                    return f64::INFINITY;
                }
                return seg.start_s + (target - acc) / seg.bandwidth_scale;
            }
            acc += mass;
        }
        unreachable!("the last segment extends to infinity");
    }

    /// The effective [`LinkState`] of `base` under this trace at time `t`.
    pub fn state_of(&self, base: &LinkModel, t: f64) -> LinkState {
        let seg = self.segment_at(t);
        LinkState {
            bandwidth_bps: base.bandwidth_bps() * seg.bandwidth_scale,
            rtt_s: base.rtt_s() * seg.rtt_scale,
            loss_prob: seg.loss_prob.unwrap_or(base.loss_prob()),
        }
    }

    /// `true` when no transfer can succeed at time `t` (zero bandwidth or
    /// certain loss).
    pub fn is_outage_at(&self, base: &LinkModel, t: f64) -> bool {
        self.state_of(base, t).is_outage()
    }

    /// Closed-form transfer time through the trace at time `t` (the
    /// single-call analogue of [`LinkModel::transfer_time`], including the
    /// static model's jitter and geometric retransmissions), or `None` if
    /// the link is in outage at `t`.
    ///
    /// For a constant identity trace this is **bit-identical** to
    /// `base.transfer_time(bytes, rng)` — the property the zero-trace fast
    /// path is pinned against.
    pub fn transfer_time_at<R: Rng + ?Sized>(
        &self,
        base: &LinkModel,
        bytes: usize,
        t: f64,
        rng: &mut R,
    ) -> Option<f64> {
        let seg = self.segment_at(t);
        let loss = seg.loss_prob.unwrap_or(base.loss_prob());
        if seg.bandwidth_scale <= 0.0 || loss >= 1.0 {
            return None;
        }
        Some(base.transfer_time_scaled(bytes, seg.bandwidth_scale, seg.rtt_scale, loss, rng))
    }

    /// One event-level transmission attempt at time `t` — the primitive the
    /// session layer retries with backoff against its virtual clock.
    ///
    /// Unlike [`transfer_time_at`](Self::transfer_time_at) (which folds
    /// loss into the closed-form geometric model), an attempt can *fail*:
    /// in an outage no randomness is drawn and the attempt is
    /// [`LinkAttempt::Outage`]; otherwise one loss draw decides
    /// [`LinkAttempt::Lost`], and only a successful attempt draws jitter
    /// and yields [`LinkAttempt::Sent`] with the transfer duration.
    pub fn attempt_at<R: Rng + ?Sized>(
        &self,
        base: &LinkModel,
        bytes: usize,
        t: f64,
        rng: &mut R,
    ) -> LinkAttempt {
        let seg = self.segment_at(t);
        let loss = seg.loss_prob.unwrap_or(base.loss_prob());
        if seg.bandwidth_scale <= 0.0 || loss >= 1.0 {
            return LinkAttempt::Outage;
        }
        if loss > 0.0 && rng.gen::<f64>() < loss {
            return LinkAttempt::Lost;
        }
        let rtt = base.rtt_s() * seg.rtt_scale;
        let nominal = rtt + bytes as f64 * 8.0 / (base.bandwidth_bps() * seg.bandwidth_scale);
        LinkAttempt::Sent(nominal * base.jitter_draw(rng))
    }
}

/// Outcome of one [`LinkTrace::attempt_at`] transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkAttempt {
    /// The link is in total outage; nothing was transmitted (no RNG drawn).
    Outage,
    /// The attempt was lost in flight (one loss draw).
    Lost,
    /// The attempt succeeded; the payload takes this many seconds.
    Sent(f64),
}

/// Exponential-backoff schedule for traced retransmissions.
///
/// After failed attempt `k` (1-based) the session waits
/// `base_s · multiplier^(k-1)` of virtual time and retransmits — up to
/// `max_retries` retransmissions, so up to `max_retries + 1` transmission
/// attempts in total. When the last retransmission also fails, the frame
/// falls back to the edge-only answer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// First backoff interval, seconds.
    pub base_s: f64,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
    /// Retransmissions (backoff waits) taken before giving up; the initial
    /// attempt is not counted, so the link is tried `max_retries + 1` times.
    pub max_retries: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            base_s: 0.05,
            multiplier: 2.0,
            max_retries: 6,
        }
    }
}

impl RetryConfig {
    /// The wait before retry `attempt` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `attempt` is zero.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        assert!(attempt >= 1, "attempts are 1-based");
        self.base_s * self.multiplier.powi(attempt as i32 - 1)
    }

    /// Total virtual time spent backing off before giving up.
    pub fn total_backoff_s(&self) -> f64 {
        (1..=self.max_retries).map(|a| self.backoff_s(a)).sum()
    }
}

/// A half-open window `[start_s, end_s)` of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// Window start, seconds.
    pub start_s: f64,
    /// Window end (exclusive), seconds.
    pub end_s: f64,
}

impl TimeWindow {
    /// Creates a window from a start and a duration.
    ///
    /// # Panics
    ///
    /// Panics if the start is negative or the duration non-positive.
    pub fn new(start_s: f64, duration_s: f64) -> Self {
        assert!(start_s >= 0.0, "window start must be non-negative");
        assert!(duration_s > 0.0, "window duration must be positive");
        TimeWindow {
            start_s,
            end_s: start_s + duration_s,
        }
    }

    /// `true` when `t` falls inside the window.
    pub fn contains(&self, t: f64) -> bool {
        self.start_s <= t && t < self.end_s
    }
}

/// Scheduled infrastructure faults: cloud-server stalls and per-session
/// drop windows, all in virtual time.
///
/// * A **stall** makes the cloud scheduler unavailable for a window — a
///   batch that would start inside it is deferred to the window's end
///   (modelling GC pauses, preemption, failover).
/// * A **drop window** blackholes one session's transmissions: any traced
///   attempt the session makes inside the window is lost deterministically
///   (no RNG drawn) and retransmits with backoff like an outage.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    stalls: Vec<TimeWindow>,
    drops: Vec<(u64, TimeWindow)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.stalls.is_empty() && self.drops.is_empty()
    }

    /// Adds a cloud-server stall window.
    pub fn with_stall(mut self, start_s: f64, duration_s: f64) -> Self {
        self.stalls.push(TimeWindow::new(start_s, duration_s));
        self
    }

    /// Adds a drop window for one session id.
    pub fn with_session_drop(mut self, session: u64, start_s: f64, duration_s: f64) -> Self {
        self.drops
            .push((session, TimeWindow::new(start_s, duration_s)));
        self
    }

    /// The scheduled cloud stalls.
    pub fn stalls(&self) -> &[TimeWindow] {
        &self.stalls
    }

    /// The drop windows scheduled for one session.
    pub fn drops_for(&self, session: u64) -> Vec<TimeWindow> {
        self.drops
            .iter()
            .filter(|(s, _)| *s == session)
            .map(|(_, w)| *w)
            .collect()
    }

    /// `true` when `t` falls inside a scheduled stall window — the signal a
    /// cloud-side autoscaler reads to park workers while the server cannot
    /// start batches anyway (see [`next_available`](Self::next_available)
    /// for the deferred start itself).
    pub fn is_stalled(&self, t: f64) -> bool {
        self.stalls.iter().any(|w| w.contains(t))
    }

    /// The earliest time `>= t` at which the cloud server is not stalled.
    /// Windows may overlap and be unsorted; the fixpoint loop handles both.
    pub fn next_available(&self, t: f64) -> f64 {
        let mut t = t;
        loop {
            let mut moved = false;
            for w in &self.stalls {
                if w.contains(t) {
                    t = w.end_s;
                    moved = true;
                }
            }
            if !moved {
                return t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn segment_lookup_is_piecewise() {
        let trace = LinkTrace::step_outage(10.0, 5.0);
        assert_eq!(trace.segment_at(0.0).bandwidth_scale, 1.0);
        assert_eq!(trace.segment_at(9.999).bandwidth_scale, 1.0);
        assert_eq!(trace.segment_at(10.0).bandwidth_scale, 0.0);
        assert_eq!(trace.segment_at(14.999).bandwidth_scale, 0.0);
        assert_eq!(trace.segment_at(15.0).bandwidth_scale, 1.0);
        assert_eq!(trace.segment_at(-1.0).bandwidth_scale, 1.0);
        assert_eq!(trace.segment_at(1e9).bandwidth_scale, 1.0);
    }

    #[test]
    fn outage_attempts_draw_no_randomness() {
        let wlan = LinkModel::wlan();
        let trace = LinkTrace::total_outage();
        let mut a = StdRng::seed_from_u64(3);
        let b = StdRng::seed_from_u64(3);
        assert_eq!(
            trace.attempt_at(&wlan, 60_000, 1.0, &mut a),
            LinkAttempt::Outage
        );
        // RNG untouched: both streams still produce the same next draw.
        let mut b = b;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn bursty_bad_state_raises_loss() {
        let trace = LinkTrace::bursty(7, 120.0, 5.0, 2.0, 0.9);
        assert!(trace.segments().iter().any(|s| s.loss_prob == Some(0.9)));
        assert!(trace.segments().iter().any(|s| s.loss_prob.is_none()));
        // Healthy forever after the horizon.
        assert_eq!(trace.segment_at(1e9).loss_prob, None);
    }

    #[test]
    fn diurnal_ramp_dips_mid_period() {
        let trace = LinkTrace::diurnal_ramp(100.0, 0.2, 10, 2);
        let mid = trace.segment_at(50.0).bandwidth_scale;
        let edge = trace.segment_at(1.0).bandwidth_scale;
        assert!(mid < edge, "mid-period {mid} vs boundary {edge}");
        assert!(mid >= 0.2 - 1e-12);
        assert_eq!(trace.segment_at(250.0).bandwidth_scale, 1.0);
    }

    #[test]
    fn cumulative_scale_integrates_piecewise() {
        // 10 s at full capacity, 5 s dark, then full capacity forever.
        let trace = LinkTrace::step_outage(10.0, 5.0);
        assert_eq!(trace.cumulative_scale(-1.0), 0.0);
        assert!((trace.cumulative_scale(10.0) - 10.0).abs() < 1e-12);
        assert!((trace.cumulative_scale(15.0) - 10.0).abs() < 1e-12);
        assert!((trace.cumulative_scale(18.0) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_cumulative_scale_skips_outages() {
        let trace = LinkTrace::step_outage(10.0, 5.0);
        assert_eq!(trace.time_at_cumulative_scale(0.0), 0.0);
        assert!((trace.time_at_cumulative_scale(5.0) - 5.0).abs() < 1e-12);
        // Mass just past the outage boundary lands after it, never inside.
        assert!((trace.time_at_cumulative_scale(10.5) - 15.5).abs() < 1e-12);
        // Round trip through a diurnal curve.
        let ramp = LinkTrace::diurnal_ramp(100.0, 0.2, 8, 1);
        for &t in &[3.0, 40.0, 77.0, 150.0] {
            let mass = ramp.cumulative_scale(t);
            assert!((ramp.time_at_cumulative_scale(mass) - t).abs() < 1e-9);
        }
        // Unreachable mass under a permanent outage.
        assert_eq!(
            LinkTrace::total_outage().time_at_cumulative_scale(1.0),
            f64::INFINITY
        );
    }

    #[test]
    fn retry_backoff_grows_geometrically() {
        let retry = RetryConfig::default();
        assert!((retry.backoff_s(1) - 0.05).abs() < 1e-12);
        assert!((retry.backoff_s(3) - 0.2).abs() < 1e-12);
        assert!((retry.total_backoff_s() - 3.15).abs() < 1e-9);
    }

    #[test]
    fn fault_plan_defers_past_overlapping_stalls() {
        let plan = FaultPlan::new().with_stall(10.0, 5.0).with_stall(14.0, 6.0);
        assert_eq!(plan.next_available(9.0), 9.0);
        assert_eq!(plan.next_available(10.0), 20.0);
        assert_eq!(plan.next_available(14.5), 20.0);
        assert_eq!(plan.next_available(20.0), 20.0);
        assert_eq!(plan.drops_for(0), vec![]);
    }

    #[test]
    fn stalled_instants_match_the_windows() {
        let plan = FaultPlan::new().with_stall(10.0, 5.0).with_stall(14.0, 6.0);
        assert!(!plan.is_stalled(9.999));
        assert!(plan.is_stalled(10.0));
        assert!(plan.is_stalled(14.5));
        assert!(plan.is_stalled(19.999));
        assert!(!plan.is_stalled(20.0));
        assert!(!FaultPlan::new().is_stalled(0.0));
    }

    #[test]
    fn drop_windows_are_per_session() {
        let plan = FaultPlan::new().with_session_drop(3, 1.0, 2.0);
        assert_eq!(plan.drops_for(3).len(), 1);
        assert!(plan.drops_for(3)[0].contains(1.5));
        assert!(plan.drops_for(2).is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_segments() {
        let _ = LinkTrace::new(
            "bad",
            vec![TraceSegment::identity(0.0), TraceSegment::identity(0.0)],
        );
    }

    #[test]
    #[should_panic(expected = "start at virtual time 0")]
    fn rejects_late_first_segment() {
        let _ = LinkTrace::new("bad", vec![TraceSegment::identity(1.0)]);
    }
}
