//! # simnet — edge-cloud infrastructure simulation
//!
//! Device and network models for the smallbig reproduction's Table XI
//! ("real-world edge-cloud" HELMET experiment) and the runtime examples:
//!
//! * [`DeviceModel`] — sustained-throughput inference timing
//!   (Jetson Nano edge device, RTX3060 cloud server),
//! * [`LinkModel`] — bandwidth/RTT/jitter/loss transfer times
//!   (the paper's shared WLAN plus faster/slower ablation links),
//! * [`LatencyBreakdown`] / [`LatencyStats`] — where each image's end-to-end
//!   time went.
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use simnet::{DeviceModel, LinkModel};
//!
//! let nano = DeviceModel::jetson_nano();
//! let wlan = LinkModel::wlan();
//! let mut rng = StdRng::seed_from_u64(1);
//! let edge = nano.inference_time(5_430_000_000);
//! let upload = wlan.transfer_time(60_000, &mut rng);
//! println!("edge {edge:.3}s + upload {upload:.3}s");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod latency;
mod link;

pub use device::DeviceModel;
pub use latency::{LatencyBreakdown, LatencyStats};
pub use link::LinkModel;
