//! # simnet — edge-cloud infrastructure simulation
//!
//! Device and network models for the smallbig reproduction's Table XI
//! ("real-world edge-cloud" HELMET experiment) and the runtime examples:
//!
//! * [`DeviceModel`] — sustained-throughput inference timing
//!   (Jetson Nano edge device, RTX3060 cloud server),
//! * [`LinkModel`] — bandwidth/RTT/jitter/loss transfer times
//!   (the paper's shared WLAN plus faster/slower ablation links),
//! * [`LinkTrace`] — piecewise bandwidth/RTT/loss schedules over virtual
//!   time that turn a static link dynamic: step outages
//!   ([`LinkTrace::step_outage`], [`LinkTrace::total_outage`]), diurnal
//!   capacity ramps ([`LinkTrace::diurnal_ramp`]), Gilbert–Elliott bursty
//!   loss ([`LinkTrace::bursty`]) and seeded random walks
//!   ([`LinkTrace::random_walk`]),
//! * [`FaultPlan`] — scheduled cloud-server stalls and per-session drop
//!   windows; [`RetryConfig`] — the exponential backoff traced
//!   retransmissions use; [`LinkState`] — what an adaptive offload policy
//!   observes,
//! * [`LatencyBreakdown`] / [`LatencyStats`] — where each image's end-to-end
//!   time went (including time lost to retransmissions).
//!
//! # Scenario catalogue
//!
//! | scenario | constructor | models |
//! |---|---|---|
//! | constant | [`LinkTrace::constant`] | the static link (bit-identical) |
//! | step outage | [`LinkTrace::step_outage`] | a dead link window; retransmits back off until it ends |
//! | total outage | [`LinkTrace::total_outage`] | a cut cable; every upload falls back to the edge |
//! | diurnal ramp | [`LinkTrace::diurnal_ramp`] | tidal shared-medium capacity |
//! | bursty loss | [`LinkTrace::bursty`] | Gilbert–Elliott good/bad cellular loss |
//! | random walk | [`LinkTrace::random_walk`] | slow capacity drift |
//!
//! # Determinism contract
//!
//! All time is *virtual*. Stochastic trace constructors expand their whole
//! schedule at construction from their own seeded RNG stream; per-transfer
//! draws consume the caller's RNG in a documented order; outage attempts
//! draw nothing. Two runs with the same seeds replay bit-identically, and a
//! constant identity trace reproduces the static [`LinkModel`] draws
//! bit-for-bit (pinned by this crate's property suite).
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use simnet::{DeviceModel, LinkModel, LinkTrace};
//!
//! let nano = DeviceModel::jetson_nano();
//! let wlan = LinkModel::wlan();
//! let trace = LinkTrace::step_outage(30.0, 10.0);
//! let mut rng = StdRng::seed_from_u64(1);
//! let edge = nano.inference_time(5_430_000_000);
//! let upload = trace
//!     .transfer_time_at(&wlan, 60_000, 0.0, &mut rng)
//!     .expect("link healthy at t=0");
//! assert!(trace.transfer_time_at(&wlan, 60_000, 35.0, &mut rng).is_none());
//! println!("edge {edge:.3}s + upload {upload:.3}s");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod latency;
mod link;
mod trace;

pub use device::DeviceModel;
pub use latency::{LatencyBreakdown, LatencyStats};
pub use link::LinkModel;
pub use trace::{
    FaultPlan, LinkAttempt, LinkState, LinkTrace, RetryConfig, TimeWindow, TraceSegment,
};
