//! Compute-device models: how long a forward pass takes on a given machine.

use serde::{Deserialize, Serialize};

/// A compute device executing neural-network inference.
///
/// Inference time is modelled as `overhead + flops / effective_throughput`,
/// where the effective throughput is the *sustained* detector throughput
/// (well below datasheet peak — memory-bound layers, pre/post-processing).
///
/// # Examples
///
/// ```
/// use simnet::DeviceModel;
///
/// let nano = DeviceModel::jetson_nano();
/// let server = DeviceModel::gpu_server();
/// let flops = 5_430_000_000; // VGG-Lite small model
/// assert!(nano.inference_time(flops) > server.inference_time(flops));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    name: String,
    /// Sustained throughput in FLOP/s.
    effective_flops: f64,
    /// Fixed per-inference overhead in seconds (launch, pre/post-processing).
    overhead_s: f64,
}

impl DeviceModel {
    /// Creates a device model.
    ///
    /// # Panics
    ///
    /// Panics if `effective_flops <= 0` or `overhead_s < 0`.
    pub fn new(name: &str, effective_flops: f64, overhead_s: f64) -> Self {
        assert!(effective_flops > 0.0, "throughput must be positive");
        assert!(overhead_s >= 0.0, "overhead must be non-negative");
        DeviceModel {
            name: name.to_string(),
            effective_flops,
            overhead_s,
        }
    }

    /// The paper's edge device: NVIDIA Jetson Nano.
    ///
    /// Calibrated so the small model 1 (≈ 5.4 GFLOPs) takes ≈ 95 ms per
    /// frame, which reproduces the paper's Table XI edge-only total
    /// (47.13 s for the HELMET test footage).
    pub fn jetson_nano() -> Self {
        DeviceModel::new("jetson-nano", 62.0e9, 0.008)
    }

    /// The paper's cloud side: a workstation with an RTX3060 GPU.
    ///
    /// SSD300-VGG16 (≈ 63 GFLOPs) runs in ≈ 28 ms.
    pub fn gpu_server() -> Self {
        DeviceModel::new("rtx3060-server", 2.6e12, 0.004)
    }

    /// Device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sustained throughput in FLOP/s.
    pub fn effective_flops(&self) -> f64 {
        self.effective_flops
    }

    /// Time for one forward pass of a `flops`-sized model, in seconds.
    pub fn inference_time(&self, flops: u64) -> f64 {
        self.overhead_s + flops as f64 / self.effective_flops
    }

    /// Time for one *batched* forward pass over `n` frames, in seconds.
    ///
    /// Batching pays the launch overhead once and improves sustained
    /// throughput as kernels saturate the device: per-frame compute shrinks
    /// toward 75 % of the unbatched cost for large batches. `n = 1` is
    /// exactly [`DeviceModel::inference_time`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn batch_inference_time(&self, flops: u64, n: usize) -> f64 {
        assert!(n > 0, "batch needs at least one frame");
        let n_f = n as f64;
        self.overhead_s + (n_f * flops as f64 / self.effective_flops) * (0.75 + 0.25 / n_f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_time_scales_with_flops() {
        let d = DeviceModel::new("d", 1e9, 0.0);
        assert!((d.inference_time(1_000_000_000) - 1.0).abs() < 1e-12);
        assert!((d.inference_time(500_000_000) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overhead_adds() {
        let d = DeviceModel::new("d", 1e9, 0.01);
        assert!((d.inference_time(0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn jetson_runs_small_model_near_100ms() {
        let t = DeviceModel::jetson_nano().inference_time(5_430_000_000);
        assert!((0.07..0.13).contains(&t), "jetson small-model time {t}");
    }

    #[test]
    fn server_runs_ssd_in_tens_of_ms() {
        let t = DeviceModel::gpu_server().inference_time(62_760_000_000);
        assert!((0.015..0.06).contains(&t), "server SSD time {t}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_throughput() {
        let _ = DeviceModel::new("bad", 0.0, 0.0);
    }

    #[test]
    fn batch_of_one_is_exactly_single_inference() {
        let d = DeviceModel::gpu_server();
        let flops = 62_760_000_000;
        assert_eq!(d.batch_inference_time(flops, 1), d.inference_time(flops));
    }

    #[test]
    fn batching_beats_sequential_but_not_free() {
        let d = DeviceModel::gpu_server();
        let flops = 62_760_000_000;
        for n in [2usize, 4, 16] {
            let batched = d.batch_inference_time(flops, n);
            let sequential = d.inference_time(flops) * n as f64;
            assert!(batched < sequential, "batch {n} should amortize");
            // Still more than one pass and more than pure 75 % throughput.
            assert!(batched > d.inference_time(flops));
            assert!(batched > 0.75 * (sequential - d.overhead_s * n as f64));
        }
    }
}
