//! Per-image latency breakdowns for the edge-cloud pipeline.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Where one image's end-to-end time went.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Small-model inference on the edge device.
    pub edge_infer_s: f64,
    /// Difficult-case discriminator execution (tiny, but accounted).
    pub discriminator_s: f64,
    /// Image upload to the cloud (zero for easy cases).
    pub uplink_s: f64,
    /// Big-model inference in the cloud (zero for easy cases).
    pub cloud_infer_s: f64,
    /// Result download back to the edge (zero for easy cases).
    pub downlink_s: f64,
    /// Virtual time lost to failed traced transmissions — backoff waits
    /// before a successful retransmit, or until the edge gave up and fell
    /// back to its local answer. Always zero on a static (zero-trace) link.
    pub retransmit_s: f64,
}

impl LatencyBreakdown {
    /// Total end-to-end latency for this image.
    pub fn total(&self) -> f64 {
        self.edge_infer_s
            + self.discriminator_s
            + self.uplink_s
            + self.cloud_infer_s
            + self.downlink_s
            + self.retransmit_s
    }

    /// Whether the image involved the cloud at all.
    pub fn used_cloud(&self) -> bool {
        self.uplink_s > 0.0 || self.cloud_infer_s > 0.0
    }
}

impl AddAssign for LatencyBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.edge_infer_s += rhs.edge_infer_s;
        self.discriminator_s += rhs.discriminator_s;
        self.uplink_s += rhs.uplink_s;
        self.cloud_infer_s += rhs.cloud_infer_s;
        self.downlink_s += rhs.downlink_s;
        self.retransmit_s += rhs.retransmit_s;
    }
}

/// Aggregated latency over a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Sum of all per-image breakdowns.
    pub total: LatencyBreakdown,
    /// Number of images accumulated.
    pub images: usize,
    /// Number of images that used the cloud.
    pub cloud_images: usize,
    /// The largest single-image total seen.
    pub max_image_s: f64,
}

impl LatencyStats {
    /// Creates empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one image's breakdown.
    pub fn add(&mut self, b: LatencyBreakdown) {
        self.total += b;
        self.images += 1;
        if b.used_cloud() {
            self.cloud_images += 1;
        }
        if b.total() > self.max_image_s {
            self.max_image_s = b.total();
        }
    }

    /// Total wall time of the (sequential) run, seconds.
    pub fn total_s(&self) -> f64 {
        self.total.total()
    }

    /// Mean per-image latency, seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.images == 0 {
            0.0
        } else {
            self.total_s() / self.images as f64
        }
    }

    /// Fraction of images that went to the cloud.
    pub fn upload_ratio(&self) -> f64 {
        if self.images == 0 {
            0.0
        } else {
            self.cloud_images as f64 / self.images as f64
        }
    }
}

impl Extend<LatencyBreakdown> for LatencyStats {
    fn extend<T: IntoIterator<Item = LatencyBreakdown>>(&mut self, iter: T) {
        for b in iter {
            self.add(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_only(t: f64) -> LatencyBreakdown {
        LatencyBreakdown {
            edge_infer_s: t,
            discriminator_s: 0.001,
            ..Default::default()
        }
    }

    fn cloud(t_up: f64, t_infer: f64) -> LatencyBreakdown {
        LatencyBreakdown {
            edge_infer_s: 0.09,
            discriminator_s: 0.001,
            uplink_s: t_up,
            cloud_infer_s: t_infer,
            downlink_s: 0.03,
            retransmit_s: 0.0,
        }
    }

    #[test]
    fn totals_sum_components() {
        let b = cloud(0.4, 0.03);
        assert!((b.total() - (0.09 + 0.001 + 0.4 + 0.03 + 0.03)).abs() < 1e-12);
        assert!(b.used_cloud());
        assert!(!edge_only(0.09).used_cloud());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = LatencyStats::new();
        s.add(edge_only(0.1));
        s.add(cloud(0.5, 0.03));
        assert_eq!(s.images, 2);
        assert_eq!(s.cloud_images, 1);
        assert!((s.upload_ratio() - 0.5).abs() < 1e-12);
        assert!(s.max_image_s > 0.6);
        assert!(s.mean_s() > 0.0);
    }

    #[test]
    fn extend_works() {
        let mut s = LatencyStats::new();
        s.extend(vec![edge_only(0.1); 10]);
        assert_eq!(s.images, 10);
        assert_eq!(s.upload_ratio(), 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.mean_s(), 0.0);
        assert_eq!(s.upload_ratio(), 0.0);
        assert_eq!(s.total_s(), 0.0);
    }
}
