//! Property tests for the dynamic-network layer: trace invariants,
//! constructor determinism, and the constant-trace ≡ static-link anchor.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{FaultPlan, LinkAttempt, LinkModel, LinkTrace, RetryConfig};

/// Every constructor must satisfy the trace invariants: non-negative
/// scales, loss overrides in `[0, 1]`, strictly monotone virtual time
/// starting at zero.
fn assert_invariants(trace: &LinkTrace) {
    let segments = trace.segments();
    assert!(!segments.is_empty(), "{}: empty trace", trace.name());
    assert_eq!(segments[0].start_s, 0.0, "{}: first start", trace.name());
    for pair in segments.windows(2) {
        assert!(
            pair[0].start_s < pair[1].start_s,
            "{}: starts not strictly increasing",
            trace.name()
        );
    }
    for seg in segments {
        assert!(
            seg.bandwidth_scale.is_finite() && seg.bandwidth_scale >= 0.0,
            "{}: bandwidth scale {}",
            trace.name(),
            seg.bandwidth_scale
        );
        assert!(
            seg.rtt_scale.is_finite() && seg.rtt_scale >= 0.0,
            "{}: rtt scale {}",
            trace.name(),
            seg.rtt_scale
        );
        if let Some(loss) = seg.loss_prob {
            assert!(
                (0.0..=1.0).contains(&loss),
                "{}: loss {}",
                trace.name(),
                loss
            );
        }
    }
}

proptest! {
    /// The stochastic and parameterised constructors all uphold the
    /// segment invariants, whatever their arguments.
    #[test]
    fn constructors_satisfy_invariants(
        seed in any::<u64>(),
        start in 0.0f64..500.0,
        duration in 0.1f64..500.0,
        period in 1.0f64..500.0,
        floor in 0.05f64..1.0,
        steps in 1usize..40,
        periods in 1usize..5,
        horizon in 1.0f64..300.0,
        mean_good in 0.1f64..60.0,
        mean_bad in 0.1f64..60.0,
        bad_loss in 0.0f64..=1.0,
        step_s in 0.1f64..30.0,
        sigma in 0.0f64..1.0,
    ) {
        assert_invariants(&LinkTrace::constant());
        assert_invariants(&LinkTrace::total_outage());
        assert_invariants(&LinkTrace::step_outage(start, duration));
        assert_invariants(&LinkTrace::diurnal_ramp(period, floor, steps, periods));
        assert_invariants(&LinkTrace::bursty(seed, horizon, mean_good, mean_bad, bad_loss));
        assert_invariants(&LinkTrace::random_walk(seed, horizon, step_s, sigma, floor, 2.0));
    }

    /// The constant identity trace reproduces the static link's
    /// `transfer_time` bit-for-bit — same value, same RNG consumption —
    /// at every virtual time, for arbitrary links and payloads. This is
    /// the semantic anchor of the session layer's zero-trace fast path.
    #[test]
    fn constant_trace_is_bit_identical_to_static_link(
        bandwidth in 1e4f64..1e9,
        rtt in 0.0f64..0.5,
        jitter in 0.0f64..1.0,
        loss in 0.0f64..0.99,
        bytes in 1usize..5_000_000,
        rng_seed in any::<u64>(),
        t in -10.0f64..1e6,
    ) {
        let link = LinkModel::new("p", bandwidth, rtt, jitter, loss);
        let trace = LinkTrace::constant();
        let mut static_rng = StdRng::seed_from_u64(rng_seed);
        let mut traced_rng = StdRng::seed_from_u64(rng_seed);
        let expect = link.transfer_time(bytes, &mut static_rng);
        let got = trace
            .transfer_time_at(&link, bytes, t, &mut traced_rng)
            .expect("identity trace is never in outage");
        prop_assert_eq!(expect.to_bits(), got.to_bits());
        // Both paths consumed the same number of draws.
        prop_assert_eq!(static_rng.gen::<u64>(), traced_rng.gen::<u64>());
    }

    /// Seeded constructors are deterministic: the same arguments expand to
    /// the same segment schedule.
    #[test]
    fn seeded_constructors_are_deterministic(seed in any::<u64>()) {
        prop_assert_eq!(
            LinkTrace::bursty(seed, 100.0, 5.0, 2.0, 0.8),
            LinkTrace::bursty(seed, 100.0, 5.0, 2.0, 0.8)
        );
        prop_assert_eq!(
            LinkTrace::random_walk(seed, 100.0, 1.0, 0.2, 0.1, 3.0),
            LinkTrace::random_walk(seed, 100.0, 1.0, 0.2, 0.1, 3.0)
        );
    }

    /// `segment_at` returns the segment with the greatest start not past
    /// `t`, and `state_of` scales the base link by exactly that segment.
    #[test]
    fn segment_lookup_matches_linear_scan(
        seed in any::<u64>(),
        t in -5.0f64..400.0,
    ) {
        let link = LinkModel::wlan();
        let trace = LinkTrace::random_walk(seed, 300.0, 7.0, 0.3, 0.1, 2.0);
        let by_scan = trace
            .segments()
            .iter()
            .rev()
            .find(|s| s.start_s <= t)
            .unwrap_or(&trace.segments()[0]);
        let seg = trace.segment_at(t);
        prop_assert_eq!(seg, by_scan);
        let state = trace.state_of(&link, t);
        prop_assert_eq!(state.bandwidth_bps, link.bandwidth_bps() * seg.bandwidth_scale);
        prop_assert_eq!(state.rtt_s, link.rtt_s() * seg.rtt_scale);
        prop_assert_eq!(state.loss_prob, seg.loss_prob.unwrap_or(link.loss_prob()));
    }

    /// During an outage window every attempt fails without consuming
    /// randomness; outside it, attempts on a loss-free link always send.
    #[test]
    fn outage_attempts_fail_deterministically(
        start in 0.0f64..100.0,
        duration in 0.5f64..100.0,
        bytes in 1usize..1_000_000,
        rng_seed in any::<u64>(),
    ) {
        let link = LinkModel::new("clean", 8e6, 0.02, 0.0, 0.0);
        let trace = LinkTrace::step_outage(start, duration);
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let inside = start + duration * 0.5;
        prop_assert_eq!(
            trace.attempt_at(&link, bytes, inside, &mut rng),
            LinkAttempt::Outage
        );
        prop_assert!(trace.is_outage_at(&link, inside));
        let after = start + duration + 1.0;
        match trace.attempt_at(&link, bytes, after, &mut rng) {
            LinkAttempt::Sent(d) => prop_assert!(d > 0.0),
            other => prop_assert!(false, "expected Sent, got {other:?}"),
        }
        prop_assert!(!trace.is_outage_at(&link, after));
    }

    /// `next_available` lands outside every stall window and never moves
    /// time backwards; the retry schedule is positive and monotone.
    #[test]
    fn fault_plan_and_retry_invariants(
        starts in prop::collection::vec((0.0f64..200.0, 0.1f64..30.0), 0..6),
        t in 0.0f64..300.0,
        base in 0.001f64..1.0,
        multiplier in 1.0f64..4.0,
        max_retries in 1u32..10,
    ) {
        let mut plan = FaultPlan::new();
        for (s, d) in &starts {
            plan = plan.with_stall(*s, *d);
        }
        let avail = plan.next_available(t);
        prop_assert!(avail >= t);
        prop_assert!(plan.stalls().iter().all(|w| !w.contains(avail)));

        let retry = RetryConfig { base_s: base, multiplier, max_retries };
        let mut prev = 0.0;
        for attempt in 1..=max_retries {
            let b = retry.backoff_s(attempt);
            prop_assert!(b > 0.0);
            prop_assert!(b >= prev);
            prev = b;
        }
        prop_assert!(retry.total_backoff_s() >= retry.backoff_s(max_retries));
    }
}
