//! Table-regeneration bench: `cargo bench --bench tables` re-runs **every**
//! paper table and figure and prints them, so a single `cargo bench
//! --workspace | tee bench_output.txt` captures the full reproduction.
//!
//! Scale defaults to 20% of the published split sizes to keep the run to a
//! couple of minutes; set `SMALLBIG_BENCH_SCALE=1.0` for full scale.

use eval::{run_experiment, ExpConfig};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::var("SMALLBIG_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(0.2);
    let cfg = ExpConfig {
        scale,
        render_size: (128, 96),
    };
    println!("# smallbig table bench — scale {scale:.2} (SMALLBIG_BENCH_SCALE to override)\n");

    let started = Instant::now();
    for id in eval::ALL_EXPERIMENTS {
        let t0 = Instant::now();
        match run_experiment(id, &cfg) {
            Ok(reports) => {
                for r in reports {
                    println!("{r}");
                }
                println!("  [{id} regenerated in {:.2?}]\n", t0.elapsed());
            }
            Err(e) => {
                eprintln!("error running {id}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "# all {} experiments regenerated in {:.2?}",
        eval::ALL_EXPERIMENTS.len(),
        started.elapsed()
    );
}
