//! Criterion microbenchmarks for the performance-critical kernels.
//!
//! The edge device must run the discriminator and the small model's
//! post-processing per frame, so their costs matter; the harness-side
//! costs (mAP evaluation, dataset generation, rendering) bound experiment
//! turnaround.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datagen::{Dataset, DatasetProfile, Scene, SplitId};
use detcore::{
    count_detected, nms, ApProtocol, BBox, ClassId, CountingConfig, Detection, ImageDetections,
    MapEvaluator, NmsConfig,
};
use imaging::{brenner_gradient, encoded_size_bytes, gaussian_blur, render};
use modelzoo::{Detector, ModelKind, SimDetector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::LinkModel;
use smallbig_core::wire::{decode_frame, encode_frame};
use smallbig_core::{DifficultCaseDiscriminator, SemanticFeatures};

fn random_detections(n: usize, seed: u64) -> ImageDetections {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x0: f64 = rng.gen_range(0.0..0.8);
            let y0: f64 = rng.gen_range(0.0..0.8);
            Detection::new(
                ClassId(rng.gen_range(0..20)),
                rng.gen_range(0.01..1.0),
                BBox::new(
                    x0,
                    y0,
                    x0 + rng.gen_range(0.05..0.2),
                    y0 + rng.gen_range(0.05..0.2),
                )
                .unwrap(),
            )
        })
        .collect()
}

fn bench_geometry(c: &mut Criterion) {
    let a = BBox::new(0.1, 0.1, 0.6, 0.6).unwrap();
    let b = BBox::new(0.3, 0.2, 0.8, 0.7).unwrap();
    c.bench_function("bbox_iou", |bench| {
        bench.iter(|| black_box(a).iou(black_box(&b)))
    });

    let dets = random_detections(200, 1);
    let cfg = NmsConfig::default();
    c.bench_function("nms_200_boxes", |bench| {
        bench.iter(|| nms(black_box(&dets), black_box(&cfg)))
    });
}

fn bench_discriminator(c: &mut Criterion) {
    let dets = random_detections(40, 2);
    let disc = DifficultCaseDiscriminator::default();
    c.bench_function("discriminator_classify", |bench| {
        bench.iter(|| disc.classify(black_box(&dets)))
    });
    c.bench_function("semantic_features_extract", |bench| {
        bench.iter(|| SemanticFeatures::extract(black_box(&dets), 0.2))
    });
}

fn bench_detector(c: &mut Criterion) {
    let profile = DatasetProfile::voc();
    let scenes: Vec<Scene> = (0..64).map(|i| Scene::sample(&profile, 5, i)).collect();
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
    let mut i = 0usize;
    c.bench_function("sim_detect_small", |bench| {
        bench.iter(|| {
            i = (i + 1) % scenes.len();
            small.detect(black_box(&scenes[i]))
        })
    });
    c.bench_function("sim_detect_big", |bench| {
        bench.iter(|| {
            i = (i + 1) % scenes.len();
            big.detect(black_box(&scenes[i]))
        })
    });
}

fn bench_map_eval(c: &mut Criterion) {
    let profile = DatasetProfile::voc();
    let ds = Dataset::generate("bench", &profile, 100, 3);
    let det = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
    let results: Vec<ImageDetections> = ds.iter().map(|s| det.detect(s)).collect();
    c.bench_function("map_eval_100_images", |bench| {
        bench.iter(|| {
            let mut ev = MapEvaluator::new(20, ApProtocol::Voc07ElevenPoint);
            for (scene, dets) in ds.iter().zip(&results) {
                ev.add_image(black_box(dets), &scene.ground_truths());
            }
            ev.evaluate().map
        })
    });
    let cfg = CountingConfig::default();
    c.bench_function("count_detected_per_image", |bench| {
        let gts = ds.scenes()[0].ground_truths();
        bench.iter(|| count_detected(black_box(&results[0]), &gts, &cfg))
    });
}

fn bench_imaging(c: &mut Criterion) {
    let scene = Scene::sample(&DatasetProfile::helmet(), 11, 0);
    let spec = scene.render_spec(160, 120);
    c.bench_function("render_160x120", |bench| {
        bench.iter(|| render(black_box(&spec)))
    });
    let frame = render(&spec);
    c.bench_function("gaussian_blur_sigma2", |bench| {
        bench.iter(|| gaussian_blur(black_box(&frame), 2.0))
    });
    c.bench_function("brenner_gradient", |bench| {
        bench.iter(|| brenner_gradient(black_box(&frame)))
    });
    c.bench_function("encoded_size_bytes", |bench| {
        bench.iter(|| encoded_size_bytes(black_box(&frame)))
    });
}

fn bench_infra(c: &mut Criterion) {
    let wlan = LinkModel::wlan();
    let mut rng = StdRng::seed_from_u64(9);
    c.bench_function("wlan_transfer_time", |bench| {
        bench.iter(|| wlan.transfer_time(black_box(60_000), &mut rng))
    });
    let dets = random_detections(30, 4);
    c.bench_function("wire_encode_decode", |bench| {
        bench.iter(|| {
            let frame = encode_frame(black_box(&dets));
            let back: ImageDetections = decode_frame(&frame).unwrap();
            back
        })
    });
    let profile = DatasetProfile::coco18();
    c.bench_function("scene_sample", |bench| {
        let mut id = 0u64;
        bench.iter(|| {
            id += 1;
            Scene::sample(black_box(&profile), 3, id)
        })
    });
}

criterion_group!(
    benches,
    bench_geometry,
    bench_discriminator,
    bench_detector,
    bench_map_eval,
    bench_imaging,
    bench_infra
);
criterion_main!(benches);
