//! Byte-budget probe for one bench scene: where do the JSON and binary
//! codec bytes go? (Analysis aid for the wire-size work; not a benchmark.)

use datagen::{Dataset, DatasetProfile};
use serde::Serialize;

fn main() {
    let data = Dataset::generate("bench-transport", &DatasetProfile::helmet(), 5, 23);
    for scene in data.iter().take(2) {
        let json = serde_json::to_string(scene).unwrap();
        let bin = serde_json::to_vec_binary(scene).unwrap();
        let mut seeded = Vec::new();
        serde_json::to_vec_binary_into_with_dict(
            &mut seeded,
            scene,
            smallbig_core::wire::BINARY_STATIC_KEYS,
        )
        .unwrap();
        println!(
            "json {} bytes, binary {} bytes, binary+static-dict {} bytes",
            json.len(),
            bin.len(),
            seeded.len()
        );
        println!("{json}");
        // Count floats in the tree.
        let v = scene.to_value();
        let (mut floats, mut strings, mut ints) = (0usize, 0usize, 0usize);
        walk(&v, &mut floats, &mut strings, &mut ints);
        println!("floats={floats} strings={strings} ints={ints}");
    }
}

fn walk(v: &serde::Value, f: &mut usize, s: &mut usize, i: &mut usize) {
    match v {
        serde::Value::F64(_) => *f += 1,
        serde::Value::String(_) => *s += 1,
        serde::Value::U64(_) | serde::Value::I64(_) => *i += 1,
        serde::Value::Array(items) => items.iter().for_each(|x| walk(x, f, s, i)),
        serde::Value::Object(map) => map.values().for_each(|x| walk(x, f, s, i)),
        _ => {}
    }
}
