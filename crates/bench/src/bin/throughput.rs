//! Throughput harness: measures kernel ns/op and end-to-end eval harness
//! frames/sec against the pre-refactor reference implementations, and
//! writes the perf-trajectory JSON (`BENCH_PR<N>.json` at the repo root).
//!
//! ```bash
//! # Full run; writes target/throughput.json so the committed baseline is
//! # never overwritten by accident:
//! cargo run --release -p bench --bin throughput
//! # CI smoke:
//! cargo run --release -p bench --bin throughput -- --quick
//! # Regenerate a committed baseline, explicitly:
//! cargo run --release -p bench --bin throughput -- --json-out BENCH_PR3.json
//! ```
//!
//! Methodology (see PERFORMANCE.md): every timing is the **minimum** over
//! several repeats after a warmup pass — the minimum is the least noisy
//! statistic on shared machines — and every before/after pair is verified
//! to produce identical results in-process before it is timed, so a kernel
//! that drifts from its reference fails the run instead of reporting a
//! meaningless speedup.

use datagen::{Dataset, DatasetProfile, Scene, SplitId};
use detcore::{
    count_detected_with, nms, nms_into, soft_nms, soft_nms_into, ApProtocol, BBox, ClassId,
    CountScratch, CountingConfig, Detection, GroundTruth, ImageDetections, MapEvaluator,
    MatchScratch, NmsConfig, NmsScratch,
};
use modelzoo::{Detector, ModelKind, SimDetector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use smallbig_core::{
    calibrate, detect_all, discriminator_stats_on, evaluate, evaluate_detections, transport, wire,
    DifficultCaseDiscriminator, EvalConfig, FifoBatcher, Policy, QueuedFrame, Scheduler,
    Thresholds,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The pre-refactor implementations, transcribed from the seed so the
/// "before" numbers are measured in the same binary under the same
/// conditions as the "after" numbers.
mod reference {
    use super::*;
    use rand_distr::{Distribution, Normal};
    use std::collections::BTreeMap;

    /// splitmix64 mixer (transcribed from the detector module).
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn unit(h: u64) -> f64 {
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The seed's standard normal (Box–Muller, first component only) —
    /// unchanged in the library, transcribed so the seed Beta below is
    /// self-contained.
    fn standard_normal<R: rand::RngCore + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// The seed's `Gamma(shape, 1)` via Marsaglia–Tsang: `d` and `c` are
    /// recomputed on **every draw** (the library now caches them per
    /// distribution construction).
    fn seed_gamma_draw<R: rand::RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        if shape < 1.0 {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            return seed_gamma_draw(shape + 1.0, rng) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }

    /// The seed's `Beta`: validation-only construction, per-draw gamma
    /// constant recomputation.
    struct SeedBeta {
        alpha: f64,
        beta: f64,
    }

    impl SeedBeta {
        fn new(alpha: f64, beta: f64) -> Self {
            assert!(alpha > 0.0 && beta > 0.0, "beta shapes must be positive");
            SeedBeta { alpha, beta }
        }

        fn sample<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            let x = seed_gamma_draw(self.alpha, rng);
            let y = seed_gamma_draw(self.beta, rng);
            x / (x + y)
        }
    }

    /// The seed's `poisson_draw`: re-exponentiates the rate on every call.
    fn poisson_draw(u: f64, rate: f64) -> usize {
        if rate <= 0.0 {
            return 0;
        }
        let mut k = 0usize;
        let mut acc = (-rate).exp();
        let mut cum = acc;
        while u > cum && k < 8 {
            k += 1;
            acc *= rate / k as f64;
            cum += acc;
        }
        k
    }

    /// The seed/PR 2-era `SimDetector`: per-object `Beta::new`/`Normal::new`
    /// constructions, a full `p_detect` (two `ln`s and the clutter `exp`) per
    /// object, and a fresh output allocation per call. The PR 3 sampler
    /// cache must reproduce it bit-for-bit — the harness asserts that over
    /// the whole dataset for every `ModelKind` before timing.
    pub struct SeedDetector {
        kind: ModelKind,
        capability: modelzoo::Capability,
        num_classes: usize,
        flops: u64,
        size_bytes: u64,
    }

    impl SeedDetector {
        pub fn new(kind: ModelKind, split: SplitId, num_classes: usize) -> Self {
            let net = kind.network(num_classes);
            SeedDetector {
                kind,
                capability: modelzoo::Capability::profile(kind, split),
                num_classes,
                flops: net.total_flops(),
                size_bytes: net.total_params() * 4,
            }
        }

        fn object_draw(scene: &Scene, index: usize) -> f64 {
            unit(mix(
                scene.seed ^ (index as u64 + 1).wrapping_mul(0xd6e8_feb8_6659_fd93)
            ))
        }
    }

    impl Detector for SeedDetector {
        fn name(&self) -> &'static str {
            self.kind.label()
        }

        fn detect(&self, scene: &Scene) -> ImageDetections {
            let cap = &self.capability;
            let mut rng = StdRng::seed_from_u64(mix(scene.seed ^ self.kind.seed_tag()));
            let mut out = ImageDetections::with_capacity(scene.num_objects() + 4);
            let n = scene.num_objects();

            for (i, obj) in scene.objects.iter().enumerate() {
                let p = cap.p_detect(obj.area_ratio(), n, obj.difficulty, scene.camera_blur);
                let u = Self::object_draw(scene, i);
                if u < p {
                    let beta = SeedBeta::new(cap.score_conc, 1.6);
                    let score = 0.5 + 0.5 * beta.sample(&mut rng);
                    let jitter = Normal::new(0.0, cap.loc_jitter).expect("valid normal");
                    let w = obj.bbox.width();
                    let h = obj.bbox.height();
                    let bbox = BBox::from_corners(
                        obj.bbox.x_min() + jitter.sample(&mut rng) * w,
                        obj.bbox.y_min() + jitter.sample(&mut rng) * h,
                        obj.bbox.x_max() + jitter.sample(&mut rng) * w,
                        obj.bbox.y_max() + jitter.sample(&mut rng) * h,
                    )
                    .clamp_unit();
                    let class = if rng.gen::<f64>() < cap.misclass_prob {
                        ClassId(rng.gen_range(0..self.num_classes) as u16)
                    } else {
                        obj.class
                    };
                    if !bbox.is_empty() {
                        out.push(Detection::new(class, score.min(0.9999), bbox));
                    }
                } else {
                    let emit_prob = if p > 0.02 {
                        cap.sub_box_prob
                    } else {
                        cap.sub_box_prob * 0.3
                    };
                    if rng.gen::<f64>() < emit_prob {
                        let score = rng.gen_range(0.16..0.48);
                        let jitter = Normal::new(0.0, cap.loc_jitter * 2.0).expect("valid normal");
                        let w = obj.bbox.width();
                        let h = obj.bbox.height();
                        let bbox = BBox::from_corners(
                            obj.bbox.x_min() + jitter.sample(&mut rng) * w,
                            obj.bbox.y_min() + jitter.sample(&mut rng) * h,
                            obj.bbox.x_max() + jitter.sample(&mut rng) * w,
                            obj.bbox.y_max() + jitter.sample(&mut rng) * h,
                        )
                        .clamp_unit();
                        if !bbox.is_empty() {
                            out.push(Detection::new(obj.class, score, bbox));
                        }
                    }
                }
            }

            let fp_draw = unit(mix(scene.seed ^ 0xfa15_e905));
            let n_fps = poisson_draw(fp_draw, cap.fp_rate);
            for _ in 0..n_fps {
                let beta = SeedBeta::new(2.0, 4.0);
                let score = 0.5 + 0.45 * beta.sample(&mut rng);
                let bbox = if !scene.objects.is_empty() && rng.gen::<f64>() < 0.7 {
                    let obj = &scene.objects[rng.gen_range(0..scene.objects.len())];
                    let (cx, cy) = obj.bbox.center();
                    let w = obj.bbox.width() * rng.gen_range(0.5..1.6);
                    let h = obj.bbox.height() * rng.gen_range(0.5..1.6);
                    BBox::from_center(
                        cx + rng.gen_range(-0.5..0.5) * w,
                        cy + rng.gen_range(-0.5..0.5) * h,
                        w,
                        h,
                    )
                    .clamp_unit()
                } else {
                    BBox::from_center(
                        rng.gen_range(0.15..0.85),
                        rng.gen_range(0.15..0.85),
                        rng.gen_range(0.05..0.4),
                        rng.gen_range(0.05..0.4),
                    )
                    .clamp_unit()
                };
                let class = ClassId(rng.gen_range(0..self.num_classes) as u16);
                if !bbox.is_empty() {
                    out.push(Detection::new(class, score, bbox));
                }
            }

            let noise_boxes = poisson_draw(rng.gen(), cap.noise_rate);
            for _ in 0..noise_boxes {
                let score = 0.02 + 0.33 * rng.gen::<f64>().powf(1.5);
                let cx = rng.gen_range(0.1..0.9);
                let cy = rng.gen_range(0.1..0.9);
                let w = rng.gen_range(0.03..0.35);
                let h = rng.gen_range(0.03..0.35);
                let bbox = BBox::from_center(cx, cy, w, h).clamp_unit();
                let class = ClassId(rng.gen_range(0..self.num_classes) as u16);
                out.push(Detection::new(class, score, bbox));
            }
            out
        }

        fn flops(&self) -> u64 {
            self.flops
        }

        fn model_size_bytes(&self) -> u64 {
            self.size_bytes
        }
    }

    /// The seed serializer: render a full `serde::Value` tree, then walk it
    /// to text with one `to_string` allocation per number (transcribed from
    /// `vendor/serde_json`'s pre-streaming `to_string`), framed with the
    /// same length prefix as `wire::encode_frame_into`.
    pub fn encode_frame_into<T: serde::Serialize>(
        buf: &mut Vec<u8>,
        payload: &mut String,
        value: &T,
    ) {
        payload.clear();
        write_value(payload, &value.to_value());
        buf.clear();
        buf.reserve(4 + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(payload.as_bytes());
    }

    fn write_value(out: &mut String, v: &serde::Value) {
        use serde::Value;
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => {
                assert!(x.is_finite(), "frame payloads are finite");
                out.push_str(&x.to_string());
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(out, item);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, item)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    write_value(out, item);
                }
                out.push('}');
            }
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn group_by_class(dets: &ImageDetections, floor: f64) -> BTreeMap<ClassId, Vec<Detection>> {
        let mut groups: BTreeMap<ClassId, Vec<Detection>> = BTreeMap::new();
        for d in dets.iter().filter(|d| d.score() >= floor) {
            groups.entry(d.class()).or_default().push(*d);
        }
        for group in groups.values_mut() {
            group.sort_by(|a, b| b.score().partial_cmp(&a.score()).expect("finite scores"));
        }
        groups
    }

    pub fn nms(dets: &ImageDetections, config: &NmsConfig) -> ImageDetections {
        let groups = group_by_class(dets, config.score_floor);
        let mut kept: Vec<Detection> = Vec::new();
        for (_, group) in groups {
            let mut class_kept: Vec<Detection> = Vec::new();
            for d in group {
                if class_kept.len() >= config.max_per_class {
                    break;
                }
                let suppressed = class_kept
                    .iter()
                    .any(|k| k.bbox().iou(&d.bbox()) > config.iou_threshold);
                if !suppressed {
                    class_kept.push(d);
                }
            }
            kept.extend(class_kept);
        }
        kept.sort_by(|a, b| b.score().partial_cmp(&a.score()).expect("finite scores"));
        ImageDetections::from_vec(kept)
    }

    pub fn soft_nms(dets: &ImageDetections, config: &NmsConfig, sigma: f64) -> ImageDetections {
        assert!(sigma > 0.0, "soft-nms sigma must be positive");
        let groups = group_by_class(dets, config.score_floor);
        let mut kept: Vec<Detection> = Vec::new();
        for (_, group) in groups {
            let mut pool = group;
            let mut class_kept: Vec<Detection> = Vec::new();
            while !pool.is_empty() && class_kept.len() < config.max_per_class {
                let (best_idx, _) = pool
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        a.score().partial_cmp(&b.score()).expect("finite scores")
                    })
                    .expect("pool is non-empty");
                let best = pool.swap_remove(best_idx);
                pool = pool
                    .into_iter()
                    .filter_map(|d| {
                        let iou = best.bbox().iou(&d.bbox());
                        let decayed = d.score() * (-iou * iou / sigma).exp();
                        if decayed >= config.score_floor {
                            Some(d.with_score(decayed))
                        } else {
                            None
                        }
                    })
                    .collect();
                class_kept.push(best);
            }
            kept.extend(class_kept);
        }
        kept.sort_by(|a, b| b.score().partial_cmp(&a.score()).expect("finite scores"));
        ImageDetections::from_vec(kept)
    }

    pub fn match_greedy(
        dets: &[Detection],
        gts: &[GroundTruth],
        iou_threshold: f64,
    ) -> detcore::ImageMatch {
        let mut order: Vec<usize> = (0..dets.len()).collect();
        order.sort_by(|&a, &b| {
            dets[b]
                .score()
                .partial_cmp(&dets[a].score())
                .expect("finite scores")
        });
        let mut claimed = vec![false; gts.len()];
        let mut outcomes = vec![detcore::MatchOutcome::FalsePositive; dets.len()];
        for &di in &order {
            let det = &dets[di];
            let mut best: Option<(usize, f64)> = None;
            for (gi, gt) in gts.iter().enumerate() {
                let iou = det.bbox().iou(&gt.bbox());
                if iou >= iou_threshold {
                    match best {
                        Some((_, biou)) if biou >= iou => {}
                        _ => best = Some((gi, iou)),
                    }
                }
            }
            outcomes[di] = match best {
                Some((gi, iou)) => {
                    if gts[gi].is_difficult() {
                        detcore::MatchOutcome::IgnoredDifficult
                    } else if !claimed[gi] {
                        claimed[gi] = true;
                        detcore::MatchOutcome::TruePositive { gt_index: gi, iou }
                    } else {
                        detcore::MatchOutcome::FalsePositive
                    }
                }
                None => detcore::MatchOutcome::FalsePositive,
            };
        }
        let num_gt = gts.iter().filter(|g| !g.is_difficult()).count();
        let missed_gt = gts
            .iter()
            .enumerate()
            .filter(|(gi, gt)| !gt.is_difficult() && !claimed[*gi])
            .map(|(gi, _)| gi)
            .collect();
        detcore::ImageMatch {
            outcomes,
            num_gt,
            missed_gt,
        }
    }

    /// The seed's `MapEvaluator` (per-image `Vec<Vec<_>>` grouping, clone +
    /// re-sort per `pr_curve`).
    pub struct MapEvaluator {
        iou_threshold: f64,
        records: Vec<Vec<(f64, bool)>>,
        gt_counts: Vec<usize>,
    }

    impl MapEvaluator {
        pub fn new(num_classes: usize) -> Self {
            MapEvaluator {
                iou_threshold: 0.5,
                records: vec![Vec::new(); num_classes],
                gt_counts: vec![0; num_classes],
            }
        }

        pub fn add_image(&mut self, dets: &ImageDetections, gts: &[GroundTruth]) {
            let n = self.records.len();
            let mut dets_by_class: Vec<Vec<Detection>> = vec![Vec::new(); n];
            for d in dets.iter() {
                if d.class().index() < n {
                    dets_by_class[d.class().index()].push(*d);
                }
            }
            let mut gts_by_class: Vec<Vec<GroundTruth>> = vec![Vec::new(); n];
            for g in gts {
                if g.class().index() < n {
                    gts_by_class[g.class().index()].push(*g);
                }
            }
            for c in 0..n {
                let class_dets = &dets_by_class[c];
                let class_gts = &gts_by_class[c];
                self.gt_counts[c] += class_gts.iter().filter(|g| !g.is_difficult()).count();
                if class_dets.is_empty() {
                    continue;
                }
                let m = match_greedy(class_dets, class_gts, self.iou_threshold);
                for (d, outcome) in class_dets.iter().zip(&m.outcomes) {
                    match outcome {
                        detcore::MatchOutcome::TruePositive { .. } => {
                            self.records[c].push((d.score(), true));
                        }
                        detcore::MatchOutcome::FalsePositive => {
                            self.records[c].push((d.score(), false));
                        }
                        detcore::MatchOutcome::IgnoredDifficult => {}
                    }
                }
            }
        }

        fn class_ap(&self, c: usize) -> f64 {
            let num_gt = self.gt_counts[c];
            let mut recs = self.records[c].clone();
            recs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
            let mut tp = 0usize;
            let mut fp = 0usize;
            let mut points: Vec<(f64, f64)> = Vec::with_capacity(recs.len());
            for (_, is_tp) in recs {
                if is_tp {
                    tp += 1;
                } else {
                    fp += 1;
                }
                let precision = tp as f64 / (tp + fp) as f64;
                let recall = if num_gt == 0 {
                    0.0
                } else {
                    tp as f64 / num_gt as f64
                };
                points.push((recall, precision));
            }
            let mut ap = 0.0;
            for i in 0..=10 {
                let r = i as f64 / 10.0;
                let p_max = points
                    .iter()
                    .filter(|p| p.0 >= r - 1e-12)
                    .map(|p| p.1)
                    .fold(0.0, f64::max);
                ap += p_max;
            }
            ap / 11.0
        }

        pub fn map(&self) -> f64 {
            let mut sum = 0.0;
            let mut counted = 0usize;
            for c in 0..self.records.len() {
                if self.gt_counts[c] > 0 {
                    sum += self.class_ap(c);
                    counted += 1;
                }
            }
            if counted == 0 {
                0.0
            } else {
                sum / counted as f64
            }
        }
    }

    pub fn count_detected(
        dets: &ImageDetections,
        gts: &[GroundTruth],
        config: &CountingConfig,
    ) -> detcore::ImageCount {
        let num_gt = gts.iter().filter(|g| !g.is_difficult()).count();
        let mut classes: std::collections::BTreeSet<u16> = std::collections::BTreeSet::new();
        for d in dets.iter() {
            classes.insert(d.class().0);
        }
        for g in gts {
            classes.insert(g.class().0);
        }
        let mut detected = 0usize;
        let mut false_positives = 0usize;
        for c in classes {
            let class_dets: Vec<Detection> = dets
                .iter()
                .copied()
                .filter(|d| d.class().0 == c && d.score() >= config.score_threshold)
                .collect();
            let class_gts: Vec<GroundTruth> =
                gts.iter().copied().filter(|g| g.class().0 == c).collect();
            if class_dets.is_empty() {
                continue;
            }
            let m = match_greedy(&class_dets, &class_gts, config.iou_threshold);
            for o in &m.outcomes {
                if o.is_tp() {
                    detected += 1;
                } else if o.is_fp() {
                    false_positives += 1;
                }
            }
        }
        detcore::ImageCount {
            num_gt,
            detected,
            false_positives,
        }
    }

    /// The seed's experiment-driver flow: confidence-threshold scan
    /// (detects the train set), difficulty labelling (detects the train set
    /// again, both models), discriminator test stats (detects the test
    /// set), then [`evaluate_e2e`] (detects the test set again) — exactly
    /// the redundant passes `pair_run` used to make.
    pub fn pair_flow(
        train: &Dataset,
        test: &Dataset,
        small: &SeedDetector,
        big: &SeedDetector,
        counting: &CountingConfig,
    ) -> ((f64, usize, f64), smallbig_core::BinaryStats, Thresholds) {
        use smallbig_core::{BinaryStats, LabeledExample, SemanticFeatures, PREDICTION_THRESHOLD};

        // The seed's naive 186-cell grid scan (re-classifies every example
        // per cell); the optimized library version reads cells off prefix
        // sums.
        fn calibrate_count_area(examples: &[LabeledExample]) -> (usize, f64, BinaryStats) {
            let mut best: Option<(usize, f64, BinaryStats)> = None;
            for count in 1..=6usize {
                let mut area = 0.01;
                while area <= 0.61 {
                    let disc = DifficultCaseDiscriminator::new(Thresholds {
                        conf: 0.2,
                        count,
                        area,
                    });
                    let stats = BinaryStats::from_pairs(examples.iter().map(|e| {
                        (
                            disc.classify_true_features(e.true_count, e.true_min_area),
                            e.label,
                        )
                    }));
                    let better = match &best {
                        None => true,
                        Some((_, _, b)) => stats.accuracy > b.accuracy,
                    };
                    if better {
                        best = Some((count, area, stats));
                    }
                    area += 0.02;
                }
            }
            best.expect("grid is non-empty")
        }

        let label_one = |scene: &datagen::Scene, t_conf: f64| {
            let small_dets = small.detect(scene);
            let big_dets = big.detect(scene);
            let label = if big_dets.count_above(PREDICTION_THRESHOLD)
                > small_dets.count_above(PREDICTION_THRESHOLD)
            {
                smallbig_core::CaseKind::Difficult
            } else {
                smallbig_core::CaseKind::Easy
            };
            LabeledExample {
                scene_id: scene.id,
                true_count: scene.num_objects(),
                true_min_area: scene.min_area_ratio(),
                features: SemanticFeatures::extract(&small_dets, t_conf),
                label,
            }
        };

        // Confidence threshold: small model over the train set.
        let per_image: Vec<(Vec<f64>, usize)> = train
            .iter()
            .map(|scene| {
                let dets = small.detect(scene);
                let mut scores: Vec<f64> = dets.iter().map(|d| d.score()).collect();
                scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
                (scores, scene.num_objects())
            })
            .collect();
        let mut best = (0.20, u64::MAX);
        let mut t = 0.05;
        while t <= 0.451 {
            let mut loss = 0u64;
            for (scores, n_true) in &per_image {
                let idx = scores.partition_point(|&s| s < t);
                loss += (scores.len() - idx).abs_diff(*n_true) as u64;
            }
            if loss < best.1 {
                best = (t, loss);
            }
            t += 0.01;
        }
        let conf = best.0;

        // Difficulty labels: both models over the train set (again).
        let examples: Vec<LabeledExample> =
            train.iter().map(|scene| label_one(scene, conf)).collect();
        let (count, area, _train_stats) = calibrate_count_area(&examples);
        let thresholds = Thresholds { conf, count, area };
        let disc = DifficultCaseDiscriminator::new(thresholds);

        // Test-set stats: both models over the test set.
        let stats = BinaryStats::from_pairs(test.iter().map(|scene| {
            let ex = label_one(scene, conf);
            (disc.classify_features(&ex.features), ex.label)
        }));

        // Evaluation: both models over the test set (again).
        let outcome = evaluate_e2e(test, small, big, &Policy::DifficultCase(disc), counting);
        (outcome, stats, thresholds)
    }

    /// The seed's batch `evaluate` (sequential detect loops, three full
    /// mAP/count accumulations) over the reference kernels above.
    pub fn evaluate_e2e(
        test: &Dataset,
        small: &SeedDetector,
        big: &SeedDetector,
        policy: &Policy,
        counting: &CountingConfig,
    ) -> (f64, usize, f64) {
        use smallbig_core::{CaseKind, PolicyInput, PREDICTION_THRESHOLD};
        let num_classes = test.taxonomy().len();
        let small_results: Vec<ImageDetections> = test.iter().map(|s| small.detect(s)).collect();
        let big_results: Vec<ImageDetections> = test.iter().map(|s| big.detect(s)).collect();
        let labels: Vec<CaseKind> = small_results
            .iter()
            .zip(&big_results)
            .map(|(s, b)| {
                if b.count_above(PREDICTION_THRESHOLD) > s.count_above(PREDICTION_THRESHOLD) {
                    CaseKind::Difficult
                } else {
                    CaseKind::Easy
                }
            })
            .collect();
        let inputs: Vec<PolicyInput<'_>> = test
            .iter()
            .zip(&small_results)
            .zip(&labels)
            .map(|((scene, small_dets), label)| PolicyInput {
                scene,
                small_dets,
                label: Some(*label),
                num_classes,
                link: None,
                cloud_queue: None,
            })
            .collect();
        let decisions = policy.decide_all(&inputs);

        let mut small_map = MapEvaluator::new(num_classes);
        let mut big_map = MapEvaluator::new(num_classes);
        let mut e2e_map = MapEvaluator::new(num_classes);
        let mut e2e_detected = 0usize;
        let mut uploads = 0usize;
        for (((scene, small_dets), big_dets), decision) in test
            .iter()
            .zip(&small_results)
            .zip(&big_results)
            .zip(&decisions)
        {
            let gts = scene.ground_truths();
            small_map.add_image(small_dets, &gts);
            big_map.add_image(big_dets, &gts);
            let _ = count_detected(small_dets, &gts, counting);
            let _ = count_detected(big_dets, &gts, counting);
            let final_dets = if decision.is_upload() {
                uploads += 1;
                big_dets
            } else {
                small_dets
            };
            e2e_map.add_image(final_dets, &gts);
            e2e_detected += count_detected(final_dets, &gts, counting).detected;
        }
        let _ = small_map.map();
        let _ = big_map.map();
        (
            e2e_map.map() * 100.0,
            e2e_detected,
            uploads as f64 / test.len() as f64,
        )
    }
}

/// The pre-refactor inline batching loop (PR 1–4's `cloud_scheduler`
/// queue logic, transcribed): arrivals append to a `Vec`; when the queue
/// reaches `max_batch` the whole queue drains as one batch; periodic
/// flushes drain whatever is queued. Returns a `(batches, checksum)`
/// fingerprint of the exact service order, folded frame by frame, so the
/// trait-based `FifoBatcher` can be asserted identical before timing.
fn inline_fifo_drive(pool: &[QueuedFrame], max_batch: usize, flush_every: usize) -> (usize, u64) {
    let mut queue: Vec<QueuedFrame> = Vec::new();
    let mut batches = 0usize;
    let mut checksum = 0u64;
    let serve = |queue: &mut Vec<QueuedFrame>, batches: &mut usize, checksum: &mut u64| {
        if queue.is_empty() {
            return;
        }
        for q in queue.drain(..) {
            *checksum = checksum.wrapping_mul(31).wrapping_add(q.ticket());
        }
        *checksum = checksum.rotate_left(7); // batch boundary marker
        *batches += 1;
    };
    for (i, frame) in pool.iter().enumerate() {
        queue.push(frame.clone());
        if queue.len() >= max_batch {
            serve(&mut queue, &mut batches, &mut checksum);
        }
        if (i + 1) % flush_every == 0 {
            serve(&mut queue, &mut batches, &mut checksum);
        }
    }
    serve(&mut queue, &mut batches, &mut checksum);
    (batches, checksum)
}

/// The same drive through the `Scheduler` seam, exactly as the cloud
/// worker runs it (push → dispatch while ready; flush drains). Generic
/// over the scheduler so one body measures both dispatch shapes the
/// cloud now contains: `S = dyn Scheduler` is the boxed custom-scheduler
/// path, `S = FifoBatcher` monomorphizes to the static-dispatch fast
/// path the default configuration takes through `SchedulerSlot`.
fn fifo_drive<S: Scheduler + ?Sized>(
    sched: &mut S,
    batch_scratch: &mut Vec<QueuedFrame>,
    pool: &[QueuedFrame],
    max_batch: usize,
    flush_every: usize,
) -> (usize, u64) {
    let mut batches = 0usize;
    let mut checksum = 0u64;
    // Mirrors `dispatch_ready` / `drain_all` in the cloud worker: the
    // ready check gates eager dispatch, flushes drain until empty, and an
    // empty take stops the round.
    let serve =
        |batch_scratch: &mut Vec<QueuedFrame>, batches: &mut usize, checksum: &mut u64| -> bool {
            if batch_scratch.is_empty() {
                return false;
            }
            for q in batch_scratch.drain(..) {
                *checksum = checksum.wrapping_mul(31).wrapping_add(q.ticket());
            }
            *checksum = checksum.rotate_left(7);
            *batches += 1;
            true
        };
    for (i, frame) in pool.iter().enumerate() {
        sched.push(frame.clone());
        while sched.ready(max_batch) {
            sched.take_batch(max_batch, batch_scratch);
            if !serve(batch_scratch, &mut batches, &mut checksum) {
                break;
            }
        }
        if (i + 1) % flush_every == 0 {
            while !sched.is_empty() {
                sched.take_batch(max_batch, batch_scratch);
                if !serve(batch_scratch, &mut batches, &mut checksum) {
                    break;
                }
            }
        }
    }
    while !sched.is_empty() {
        sched.take_batch(max_batch, batch_scratch);
        if !serve(batch_scratch, &mut batches, &mut checksum) {
            break;
        }
    }
    (batches, checksum)
}

// ---------------------------------------------------------------------------

fn random_detections(n: usize, seed: u64) -> ImageDetections {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x0: f64 = rng.gen_range(0.0..0.8);
            let y0: f64 = rng.gen_range(0.0..0.8);
            Detection::new(
                ClassId(rng.gen_range(0..20)),
                rng.gen_range(0.01..1.0),
                BBox::new(
                    x0,
                    y0,
                    x0 + rng.gen_range(0.05..0.2),
                    y0 + rng.gen_range(0.05..0.2),
                )
                .unwrap(),
            )
        })
        .collect()
}

/// Generic result sink so the optimizer cannot discard benchmarked work.
fn sink<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Minimum wall-clock per variant over `repeats` rounds, with the variants
/// **interleaved** within every round (after one warmup pass each).
///
/// Background load on shared hosts drifts over seconds; timing all of
/// "before" and then all of "after" would let that drift masquerade as a
/// speedup (or hide one). Interleaving makes every round sample the same
/// load profile for each variant, and the per-variant minimum then discards
/// the noisy rounds.
fn best_of_each(repeats: usize, variants: &mut [&mut dyn FnMut()]) -> Vec<Duration> {
    for f in variants.iter_mut() {
        f();
    }
    let mut best = vec![Duration::MAX; variants.len()];
    for _ in 0..repeats {
        for (f, best) in variants.iter_mut().zip(best.iter_mut()) {
            let t = Instant::now();
            f();
            *best = (*best).min(t.elapsed());
        }
    }
    best
}

#[derive(Debug, Serialize)]
struct KernelRow {
    before_ns_per_op: f64,
    after_ns_per_op: f64,
    /// The `*_into` / scratch form where one exists (reused buffers).
    after_scratch_ns_per_op: Option<f64>,
    speedup: f64,
}

impl KernelRow {
    fn new(before: Duration, after: Duration, scratch: Option<Duration>, ops: u64) -> Self {
        let per = |d: Duration| d.as_nanos() as f64 / ops as f64;
        let best_after = scratch.map(|s| s.min(after)).unwrap_or(after);
        KernelRow {
            before_ns_per_op: per(before),
            after_ns_per_op: per(after),
            after_scratch_ns_per_op: scratch.map(per),
            speedup: per(before) / per(best_after),
        }
    }
}

#[derive(Debug, Serialize)]
struct HarnessRow {
    images: usize,
    before_fps: f64,
    after_fps_single_worker: f64,
    after_fps_parallel: f64,
    /// Single-core speedup: data-oriented kernels only, no thread help.
    speedup_single_worker: f64,
    /// Speedup with the parallel fan-out enabled (equals the single-worker
    /// number on a 1-CPU host).
    speedup_parallel: f64,
}

#[derive(Debug, Serialize)]
struct Harness {
    /// `evaluate()` alone: one policy over a test set (detect + metrics).
    evaluate_only: HarnessRow,
    /// The experiment-driver flow behind every table: calibrate on a train
    /// set, discriminator test stats, policy evaluation. The "before" runs
    /// the seed's redundant detection passes; the "after" detects each
    /// (model, scene) once and shares the results.
    experiment_driver: HarnessRow,
}

#[derive(Debug, Serialize)]
struct SessionRow {
    images: usize,
    /// Frames/sec of the zero-trace (static link) fast path — the number
    /// this section exists to watch: adding the dynamic-network layer must
    /// not tax sessions that don't use it.
    static_fps: f64,
    /// Frames/sec with a constant identity trace (full trace machinery,
    /// identity schedule).
    constant_trace_fps: f64,
    /// Frames/sec under a bursty-loss trace (retransmissions in play).
    bursty_trace_fps: f64,
    /// `static_fps / constant_trace_fps` (equivalently constant-trace
    /// wall-clock over static wall-clock): the cost of the trace machinery
    /// itself at identity. ≈1.0 expected; **above** 1.0 means the traced
    /// path got slower than the zero-trace fast path.
    static_over_constant: f64,
}

#[derive(Debug, Serialize)]
struct UpdateRow {
    images: usize,
    /// Frames/sec with the update loop disabled (`updates: None`, the
    /// default every other section runs under).
    disabled_fps: f64,
    /// Frames/sec with an epoch cadence that actually refits and rolls
    /// artifacts out to the session.
    enabled_fps: f64,
    /// Refits the enabled run published (sanity: ≥ 1 or the row is
    /// vacuous — asserted before timing).
    updates_published: u64,
    /// enabled wall-clock over disabled wall-clock: the cost of the
    /// pseudo-label accumulation + refit + rollout machinery where it
    /// fires. The disabled path is separately asserted bit-identical to a
    /// starved loop, so `updates: None` stays free.
    enabled_over_disabled: f64,
}

#[derive(Debug, Serialize)]
struct Sessions {
    /// `run_system` end-to-end: one blocking edge session against one cloud
    /// worker, with and without a link trace.
    runtime_session: SessionRow,
    /// The model-update loop on the same session shape: disabled vs an
    /// epoch cadence that refits, bit-identity-gated before timing.
    update_loop: UpdateRow,
}

#[derive(Debug, Serialize)]
struct TransportRow {
    frames: usize,
    /// Mean length-prefixed wire size of one scene frame — the dominant
    /// payload a cloud-only session ships per image — encoded as JSON
    /// (the protocol default; PR 6 reported this unlabeled as
    /// `scene_frame_bytes_avg`).
    scene_frame_bytes_avg_json: f64,
    /// The same frames through the binary codec.
    scene_frame_bytes_avg_binary: f64,
    /// binary / JSON bytes per frame (the PR 7 target is ≤ 0.45).
    binary_over_json_bytes: f64,
    /// The historical in-process channel path (`CloudServer::connect`).
    channel_fps: f64,
    /// The same session bridged over the in-memory transport
    /// (`RemoteCloud` + `serve`), handshake and frame codec included.
    memory_transport_fps: f64,
    /// The same session over real loopback TCP (JSON codec).
    tcp_loopback_fps: f64,
    /// The same session over loopback TCP with the binary codec
    /// negotiated in the handshake.
    tcp_loopback_binary_fps: f64,
    /// channel time / memory-transport time (≤ 1.0 means the transport
    /// bridge costs throughput; reports are asserted bit-identical first).
    memory_over_channel: f64,
    /// channel time / loopback-TCP time, JSON codec.
    tcp_over_channel: f64,
    /// channel time / loopback-TCP time, binary codec.
    tcp_binary_over_channel: f64,
}

#[derive(Debug, Serialize)]
struct MuxRow {
    sessions: usize,
    frames_per_session: usize,
    /// All sessions driven over the historical in-process channel path.
    channel_fps: f64,
    /// One loopback-TCP connection **per session** (the pre-mux shape),
    /// binary codec.
    tcp_per_connection_fps: f64,
    /// Every session multiplexed over **one** loopback-TCP connection,
    /// binary codec, submits interleaved across sessions.
    tcp_mux_fps: f64,
    /// channel time / mux time (the PR 7 bar is ≥ 0.95).
    mux_over_channel: f64,
    /// per-connection time / mux time (> 1.0 means multiplexing beats
    /// dialing one connection per device).
    mux_over_per_connection: f64,
}

#[derive(Debug, Serialize)]
struct TransportBench {
    /// One cloud-only edge session end to end on each substrate and codec.
    remote_session: TransportRow,
    /// A device fleet's sessions over one multiplexed connection vs one
    /// connection each vs the channel path — reports asserted
    /// bit-identical across all three before timing.
    mux_fleet: MuxRow,
}

#[derive(Debug, Serialize)]
struct Report {
    pr: u32,
    title: String,
    command: String,
    quick: bool,
    host_parallelism: usize,
    kernels: Kernels,
    serializer: Serializer,
    scheduler: SchedulerBench,
    harness: Harness,
    sessions: Sessions,
    transport: TransportBench,
    cloud_pool: CloudPool,
    fleet: FleetBench,
}

#[derive(Debug, Serialize)]
struct Kernels {
    nms_200_boxes: KernelRow,
    soft_nms_200_boxes: KernelRow,
    match_greedy_40x10: KernelRow,
    map_accumulate_per_image: KernelRow,
    count_detected_per_image: KernelRow,
    /// Both models over one scene: seed detector (per-object distribution
    /// constructions, per-call `p_detect` invariants, fresh output) vs the
    /// PR 3 sampler-cache fast path; the scratch column reuses one
    /// `detect_into` buffer per model across the dataset.
    detect_per_image: KernelRow,
}

#[derive(Debug, Serialize)]
struct Serializer {
    /// One length-prefixed wire frame per image of big-model detections:
    /// serialize-via-`Value`-tree (seed) vs the streaming serializer, both
    /// into reused buffers; the scratch column is `encode_frame_into`
    /// (streaming **and** reusing the frame buffer — the session path).
    encode_frame: KernelRow,
}

#[derive(Debug, Serialize)]
struct SchedulerRow {
    frames: usize,
    max_batch: usize,
    /// The pre-refactor inline `Vec` batching loop, transcribed.
    inline_ns_per_frame: f64,
    /// The same drive through the object-safe `Scheduler` seam
    /// (`FifoBatcher` behind a `Box<dyn Scheduler>`).
    fifo_trait_ns_per_frame: f64,
    /// trait / inline — the cost of the control-plane seam. ≈1.0
    /// expected; the service order itself is asserted identical (batch
    /// partition checksum) before any timing happens.
    overhead_ratio: f64,
    /// The monomorphized fast path the *default* configuration now takes:
    /// `SchedulerSlot::Fifo` calls `FifoBatcher` by value (static
    /// dispatch, inlinable), only custom schedulers pay the box. Measured
    /// by instantiating the same drive directly over `FifoBatcher`.
    fifo_mono_ns_per_frame: f64,
    /// mono / inline — the PR 8 bar: the default path should be
    /// indistinguishable from the hard-coded loop it replaced (≈1.0,
    /// closing the ~29% seam tax BENCH_PR5 recorded for the boxed drive).
    mono_over_inline: f64,
}

#[derive(Debug, Serialize)]
struct SchedulerBench {
    /// Push/dispatch/flush cycle over synthetic queued frames: the
    /// `Scheduler`-trait FIFO vs the inline loop it replaced.
    fifo_vs_inline: SchedulerRow,
}

#[derive(Debug, Serialize)]
struct CloudPoolRow {
    sessions: usize,
    frames_per_session: usize,
    max_batch: usize,
    /// Inference-pool sizes swept (`CloudConfig::workers`).
    workers: Vec<usize>,
    /// Wall-clock frames/sec at each pool size (same order as `workers`).
    fps: Vec<f64>,
    /// time(workers = 1) / time(workers = w): > 1.0 means the pool pays
    /// on this host, ≈ 1.0 means the simulated inference is too cheap for
    /// fan-out to beat its handoff cost. Reports are asserted
    /// bit-identical across all pool sizes first — virtual time must not
    /// move.
    speedup_vs_single: Vec<f64>,
}

#[derive(Debug, Serialize)]
struct CloudPool {
    /// One shared cloud server, several concurrent cloud-only sessions
    /// with interleaved submits (so batches actually form), swept over
    /// `workers` — the measurement PERFORMANCE.md's multi-core caveat
    /// said was missing.
    workers_sweep: CloudPoolRow,
}

#[derive(Debug, Serialize)]
struct FleetRow {
    sessions: usize,
    shards: usize,
    frames: u64,
    upload_ratio: f64,
    wall_s: f64,
    /// Whole-population throughput: sessions retired per wall second.
    sessions_per_sec: f64,
    frames_per_sec: f64,
    /// Mean uplink bytes each session shipped (admission shedding pulls
    /// this down at scales where the cloud saturates).
    bytes_per_session: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    /// Fraction of frames that would miss a 500 ms deadline (one point of
    /// the report's miss curve).
    miss_at_500ms: f64,
    /// Frames the admission controller shed to the edge-local answer.
    admission_fallbacks: u64,
}

#[derive(Debug, Serialize)]
struct FleetThreadsRow {
    sessions: usize,
    shards: usize,
    /// Drive-thread counts swept (`FleetSpec::threads`; one worker per
    /// shard group).
    threads: Vec<usize>,
    /// Wall-clock frames/sec at each thread count (same order as
    /// `threads`). The `FleetReport` is asserted bit-identical across all
    /// thread counts before any timing happens.
    fps: Vec<f64>,
    /// time(threads = 1) / time(threads = t): > 1.0 means the parallel
    /// drive pays on this host, ≈ 1.0 means the host has no spare cores
    /// to fan the shard groups out over.
    speedup_vs_single: Vec<f64>,
}

#[derive(Debug, Serialize)]
struct FleetRssRow {
    sessions: usize,
    frames: u64,
    /// Peak RSS (VmHWM) of a fresh subprocess running the fleet with the
    /// full per-session evaluators (`MetricsMode::Full`) — the PR 8
    /// memory shape.
    full_peak_rss_mb: f64,
    /// Peak RSS of the same fleet with the compact frame-metrics
    /// accumulator (`MetricsMode::Compact`, the `run_fleet` default).
    compact_peak_rss_mb: f64,
    /// full / compact — the PR 9 memory bar (≥ 5× at 10⁶ sessions).
    reduction_x: f64,
    full_wall_s: f64,
    compact_wall_s: f64,
}

#[derive(Debug, Serialize)]
struct FleetBench {
    /// Sessions in the conformance fleet: the event-driven core is
    /// asserted bit-identical (per-session reports and per-shard cloud
    /// stats) to the thread-per-session reference deployment before any
    /// timing happens.
    conformance_sessions: usize,
    /// `run_fleet` over `FleetSpec::new(n)` at increasing population
    /// scale; the last full-mode row is the 10⁶-session smoke run.
    scale: Vec<FleetRow>,
    /// The PR 9 shard-parallel drive swept over thread counts, reports
    /// asserted bit-identical first.
    threads_sweep: FleetThreadsRow,
    /// Full vs compact metrics peak RSS, each measured in its own
    /// subprocess (VmHWM is a process-lifetime high-water mark, so
    /// in-process before/after would pollute each other).
    rss: Vec<FleetRssRow>,
}

/// Peak resident set size (VmHWM) of this process, from
/// `/proc/self/status`. `None` off Linux — the RSS rows are then skipped.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Child mode behind the hidden `--fleet-rss` flag: run one fleet in this
/// fresh process and print its own peak RSS. Parent parses the line.
fn fleet_rss_child(sessions: usize, mode: smallbig_core::fleet::MetricsMode) {
    let spec = smallbig_core::fleet::FleetSpec::new(sessions);
    let t = Instant::now();
    let r = smallbig_core::fleet::run_fleet_with(&spec, mode).expect("healthy drive");
    let wall = t.elapsed().as_secs_f64();
    let peak_kb = peak_rss_kb().unwrap_or(0);
    println!("frames={} peak_kb={peak_kb} wall_s={wall:.3}", r.frames);
}

/// Re-exec this binary to measure one fleet configuration's peak RSS in an
/// unpolluted process. Returns (frames, peak_kb, wall_s).
fn fleet_rss_probe(sessions: usize, mode: &str) -> (u64, u64, f64) {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .args(["--fleet-rss", &sessions.to_string(), mode])
        .output()
        .expect("spawn fleet RSS probe");
    assert!(
        out.status.success(),
        "fleet RSS probe ({sessions} sessions, {mode}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let (mut frames, mut peak_kb, mut wall) = (0u64, 0u64, 0f64);
    for tok in text.split_whitespace() {
        if let Some(v) = tok.strip_prefix("frames=") {
            frames = v.parse().expect("frames field");
        } else if let Some(v) = tok.strip_prefix("peak_kb=") {
            peak_kb = v.parse().expect("peak_kb field");
        } else if let Some(v) = tok.strip_prefix("wall_s=") {
            wall = v.parse().expect("wall_s field");
        }
    }
    assert!(
        frames > 0 && peak_kb > 0,
        "probe printed no measurement: {text}"
    );
    (frames, peak_kb, wall)
}

fn main() {
    let mut quick = false;
    // The default lands in target/ so a casual regeneration can never
    // clobber a committed BENCH_PR<N>.json baseline; committing a new
    // baseline is an explicit `--json-out BENCH_PR<N>.json`.
    let mut out_path = "target/throughput.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--json-out" | "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("{arg} needs a path");
                    std::process::exit(2);
                })
            }
            // Hidden: child mode for the RSS rows. Runs one fleet in this
            // fresh process, prints its own VmHWM, exits.
            "--fleet-rss" => {
                let sessions: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--fleet-rss SESSIONS full|compact");
                let mode = match args.next().as_deref() {
                    Some("full") => smallbig_core::fleet::MetricsMode::Full,
                    Some("compact") => smallbig_core::fleet::MetricsMode::Compact,
                    other => panic!("--fleet-rss mode must be full|compact, got {other:?}"),
                };
                fleet_rss_child(sessions, mode);
                return;
            }
            "--help" | "-h" => {
                println!("usage: throughput [--quick] [--json-out PATH]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // Min-over-repeats converges with more repeats; the full run spends
    // the extra passes to keep the committed numbers stable on shared
    // hosts.
    let (repeats, kernel_iters, images) = if quick { (2, 50, 100) } else { (9, 1000, 2000) };
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "# throughput bench — quick={quick}, repeats={repeats}, images={images}, cpus={host_parallelism}"
    );

    // ---- Kernel fixtures --------------------------------------------------
    let dets200 = random_detections(200, 1);
    let nms_cfg = NmsConfig::default();
    let single_class: Vec<Detection> = random_detections(40, 2)
        .into_iter()
        .map(|d| Detection::new(ClassId(0), d.score(), d.bbox()))
        .collect();
    let single_gts: Vec<GroundTruth> = random_detections(10, 3)
        .iter()
        .map(|d| GroundTruth::new(ClassId(0), d.bbox()))
        .collect();
    let dataset = Dataset::generate("bench-e2e", &DatasetProfile::voc(), images, 17);
    let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
    let big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
    let seed_small = reference::SeedDetector::new(ModelKind::VggLiteSsd, SplitId::Voc07, 20);
    let seed_big = reference::SeedDetector::new(ModelKind::SsdVgg16, SplitId::Voc07, 20);
    let big_results: Vec<ImageDetections> = dataset.iter().map(|s| big.detect(s)).collect();
    let gts: Vec<Vec<GroundTruth>> = dataset.iter().map(|s| s.ground_truths()).collect();
    let counting = CountingConfig::default();
    let policy = Policy::DifficultCase(DifficultCaseDiscriminator::new(Thresholds::paper()));

    // ---- Self-check: before/after must agree before timing ---------------
    // Detector fast path: the sampler cache must reproduce the seed detector
    // bit-for-bit, for every model kind, including through a dirty reused
    // `detect_into` buffer.
    {
        let mut reused = ImageDetections::new();
        for kind in ModelKind::ALL {
            let lib = SimDetector::new(kind, SplitId::Voc07, 20);
            let seed = reference::SeedDetector::new(kind, SplitId::Voc07, 20);
            for scene in dataset.iter().take(if quick { 50 } else { 400 }) {
                let fast = lib.detect(scene);
                assert_eq!(fast, seed.detect(scene), "detector drift for {kind:?}");
                lib.detect_into(scene, &mut reused);
                assert_eq!(fast, reused, "detect_into drift for {kind:?}");
            }
        }
    }
    // Streaming serializer: every answer frame must match the Value-tree
    // reference byte-for-byte.
    {
        let mut ref_buf = Vec::new();
        let mut ref_payload = String::new();
        let mut new_buf = Vec::new();
        for dets in &big_results {
            reference::encode_frame_into(&mut ref_buf, &mut ref_payload, dets);
            wire::encode_frame_into(&mut new_buf, dets);
            assert_eq!(ref_buf, new_buf, "serializer drift on a detections frame");
        }
    }
    eprintln!("# self-check passed: detector fast path and streaming serializer are bit-identical");
    assert_eq!(reference::nms(&dets200, &nms_cfg), nms(&dets200, &nms_cfg));
    assert_eq!(
        reference::soft_nms(&dets200, &nms_cfg, 0.5),
        soft_nms(&dets200, &nms_cfg, 0.5)
    );
    assert_eq!(
        reference::match_greedy(&single_class, &single_gts, 0.5),
        detcore::match_greedy(&single_class, &single_gts, 0.5)
    );
    {
        let mut reference_map = reference::MapEvaluator::new(20);
        let mut new_map = MapEvaluator::new(20, ApProtocol::Voc07ElevenPoint);
        for (d, g) in big_results.iter().zip(&gts) {
            reference_map.add_image(d, g);
            new_map.add_image(d, g);
        }
        assert_eq!(
            reference_map.map().to_bits(),
            new_map.evaluate().map.to_bits()
        );
        let mut cs = CountScratch::new();
        for (d, g) in big_results.iter().zip(&gts) {
            assert_eq!(
                reference::count_detected(d, g, &counting),
                count_detected_with(d, g, &counting, &mut cs)
            );
        }
    }
    let reference_outcome =
        reference::evaluate_e2e(&dataset, &seed_small, &seed_big, &policy, &counting);
    let cfg = EvalConfig::default();
    let outcome = evaluate(&dataset, &small, &big, &policy, &cfg);
    assert_eq!(reference_outcome.0.to_bits(), outcome.e2e_map_pct.to_bits());
    assert_eq!(reference_outcome.1, outcome.e2e_detected);
    assert_eq!(
        reference_outcome.2.to_bits(),
        outcome.upload_ratio.to_bits()
    );
    eprintln!("# self-check passed: reference and optimized paths agree bit-for-bit");

    // ---- Kernels ----------------------------------------------------------
    let mut nms_scratch = NmsScratch::new();
    let mut nms_out = ImageDetections::new();
    let nms_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                for _ in 0..kernel_iters {
                    sink(reference::nms(&dets200, &nms_cfg));
                }
            },
            &mut || {
                for _ in 0..kernel_iters {
                    sink(nms(&dets200, &nms_cfg));
                }
            },
            &mut || {
                for _ in 0..kernel_iters {
                    nms_into(&dets200, &nms_cfg, &mut nms_scratch, &mut nms_out);
                    sink(&nms_out);
                }
            },
        ],
    );
    let nms_row = KernelRow::new(nms_times[0], nms_times[1], Some(nms_times[2]), kernel_iters);
    eprintln!("nms_200_boxes: {nms_row:?}");

    let soft_iters = kernel_iters / 2 + 1;
    let mut soft_scratch = NmsScratch::new();
    let mut soft_out = ImageDetections::new();
    let soft_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                for _ in 0..soft_iters {
                    sink(reference::soft_nms(&dets200, &nms_cfg, 0.5));
                }
            },
            &mut || {
                for _ in 0..soft_iters {
                    sink(soft_nms(&dets200, &nms_cfg, 0.5));
                }
            },
            &mut || {
                for _ in 0..soft_iters {
                    soft_nms_into(&dets200, &nms_cfg, 0.5, &mut soft_scratch, &mut soft_out);
                    sink(&soft_out);
                }
            },
        ],
    );
    let soft_row = KernelRow::new(
        soft_times[0],
        soft_times[1],
        Some(soft_times[2]),
        soft_iters,
    );
    eprintln!("soft_nms_200_boxes: {soft_row:?}");

    let match_iters = kernel_iters * 20;
    let mut match_scratch = MatchScratch::new();
    let mut match_out = detcore::ImageMatch::default();
    let match_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                for _ in 0..match_iters {
                    sink(reference::match_greedy(&single_class, &single_gts, 0.5));
                }
            },
            &mut || {
                for _ in 0..match_iters {
                    detcore::match_greedy_into(
                        &single_class,
                        &single_gts,
                        0.5,
                        &mut match_scratch,
                        &mut match_out,
                    );
                    sink(&match_out);
                }
            },
        ],
    );
    let match_row = KernelRow::new(match_times[0], match_times[1], None, match_iters);
    eprintln!("match_greedy_40x10: {match_row:?}");

    let map_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                let mut ev = reference::MapEvaluator::new(20);
                for (d, g) in big_results.iter().zip(&gts) {
                    ev.add_image(d, g);
                }
                sink(ev.map());
            },
            &mut || {
                let mut ev = MapEvaluator::new(20, ApProtocol::Voc07ElevenPoint);
                for (d, g) in big_results.iter().zip(&gts) {
                    ev.add_image(d, g);
                }
                sink(ev.evaluate().map);
            },
        ],
    );
    let map_row = KernelRow::new(map_times[0], map_times[1], None, images as u64);
    eprintln!("map_accumulate_per_image: {map_row:?}");

    let mut count_scratch = CountScratch::new();
    let count_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                for (d, g) in big_results.iter().zip(&gts) {
                    sink(reference::count_detected(d, g, &counting));
                }
            },
            &mut || {
                for (d, g) in big_results.iter().zip(&gts) {
                    sink(count_detected_with(d, g, &counting, &mut count_scratch));
                }
            },
        ],
    );
    let count_row = KernelRow::new(count_times[0], count_times[1], None, images as u64);
    eprintln!("count_detected_per_image: {count_row:?}");

    // ---- Detector: both models over every scene ---------------------------
    // This is the ~60 % of `evaluate()` the ROADMAP named. The scratch
    // variant reuses one output buffer per model, which is what a streaming
    // session (results consumed per frame) gets to do.
    let mut small_scratch = ImageDetections::new();
    let mut big_scratch = ImageDetections::new();
    let detect_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                for scene in dataset.iter() {
                    sink(seed_small.detect(scene));
                    sink(seed_big.detect(scene));
                }
            },
            &mut || {
                for scene in dataset.iter() {
                    sink(small.detect(scene));
                    sink(big.detect(scene));
                }
            },
            &mut || {
                for scene in dataset.iter() {
                    small.detect_into(scene, &mut small_scratch);
                    sink(&small_scratch);
                    big.detect_into(scene, &mut big_scratch);
                    sink(&big_scratch);
                }
            },
        ],
    );
    let detect_row = KernelRow::new(
        detect_times[0],
        detect_times[1],
        Some(detect_times[2]),
        images as u64,
    );
    eprintln!("detect_per_image: {detect_row:?}");

    // ---- Serializer: one detections wire frame per image -------------------
    let mut ref_frame_buf = Vec::new();
    let mut ref_payload = String::new();
    let mut frame_buf = Vec::new();
    let encode_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                for dets in &big_results {
                    reference::encode_frame_into(&mut ref_frame_buf, &mut ref_payload, dets);
                    sink(&ref_frame_buf);
                }
            },
            &mut || {
                for dets in &big_results {
                    sink(wire::encode_frame(dets));
                }
            },
            &mut || {
                for dets in &big_results {
                    wire::encode_frame_into(&mut frame_buf, dets);
                    sink(&frame_buf);
                }
            },
        ],
    );
    let encode_row = KernelRow::new(
        encode_times[0],
        encode_times[1],
        Some(encode_times[2]),
        images as u64,
    );
    eprintln!("serializer/encode_frame: {encode_row:?}");

    // ---- Scheduler seam: FIFO trait vs the inline loop it replaced --------
    // The control plane must be pay-for-what-you-use: routing every frame
    // through `Box<dyn Scheduler>` instead of the hard-coded Vec loop may
    // not tax the cloud worker. Self-check first: both drives must form
    // the same batches in the same order (checksummed) — a semantic drift
    // would make the timing meaningless.
    // One drive over 50k frames is ~1.6 ms — timer-noise territory (the
    // BENCH_PR5/7 ratios bounced 0.95–1.29 run to run). Growing the pool
    // instead would change the regime (a 500k pool overflows the LLC and
    // memory stalls swamp the dispatch cost being measured), so each
    // timed pass drives the *same* 50k pool `sched_iters` times: ~16 ms
    // per pass, working set unchanged from the PR 5 measurement.
    let sched_frames = if quick { 2_000 } else { 50_000 };
    let sched_iters = if quick { 1 } else { 10 };
    let sched_max_batch = 4;
    let sched_flush_every = 37;
    let sched_pool: Vec<QueuedFrame> = (0..sched_frames as u64)
        .map(|i| QueuedFrame::synthetic(i % 7, i, i as f64 * 1e-3, 0.0, None))
        .collect();
    {
        let mut fifo = FifoBatcher::new();
        let mut scratch = Vec::new();
        let inline = inline_fifo_drive(&sched_pool, sched_max_batch, sched_flush_every);
        let traited = fifo_drive(
            &mut fifo as &mut dyn Scheduler,
            &mut scratch,
            &sched_pool,
            sched_max_batch,
            sched_flush_every,
        );
        let mut mono = FifoBatcher::new();
        let monoed = fifo_drive(
            &mut mono,
            &mut scratch,
            &sched_pool,
            sched_max_batch,
            sched_flush_every,
        );
        assert_eq!(
            inline, traited,
            "FifoBatcher must form the inline loop's exact batches"
        );
        assert_eq!(
            inline, monoed,
            "the monomorphized FIFO fast path must form the same batches too"
        );
    }
    eprintln!(
        "# scheduler self-check passed: inline loop, boxed trait and monomorphized FIFO form identical batches"
    );
    let mut sched_fifo = FifoBatcher::new();
    let mut sched_mono = FifoBatcher::new();
    let mut sched_scratch = Vec::new();
    let mut mono_scratch = Vec::new();
    let sched_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                for _ in 0..sched_iters {
                    sink(inline_fifo_drive(
                        &sched_pool,
                        sched_max_batch,
                        sched_flush_every,
                    ));
                }
            },
            &mut || {
                for _ in 0..sched_iters {
                    sink(fifo_drive(
                        &mut sched_fifo as &mut dyn Scheduler,
                        &mut sched_scratch,
                        &sched_pool,
                        sched_max_batch,
                        sched_flush_every,
                    ));
                }
            },
            &mut || {
                for _ in 0..sched_iters {
                    sink(fifo_drive(
                        &mut sched_mono,
                        &mut mono_scratch,
                        &sched_pool,
                        sched_max_batch,
                        sched_flush_every,
                    ));
                }
            },
        ],
    );
    let per_frame = |d: Duration| d.as_nanos() as f64 / (sched_frames * sched_iters) as f64;
    let scheduler = SchedulerBench {
        fifo_vs_inline: SchedulerRow {
            frames: sched_frames,
            max_batch: sched_max_batch,
            inline_ns_per_frame: per_frame(sched_times[0]),
            fifo_trait_ns_per_frame: per_frame(sched_times[1]),
            overhead_ratio: per_frame(sched_times[1]) / per_frame(sched_times[0]),
            fifo_mono_ns_per_frame: per_frame(sched_times[2]),
            mono_over_inline: per_frame(sched_times[2]) / per_frame(sched_times[0]),
        },
    };
    eprintln!("scheduler/fifo_vs_inline: {:?}", scheduler.fifo_vs_inline);

    // ---- End-to-end harness: evaluate() alone ----------------------------
    // The single-worker variant pins the harness to its sequential path via
    // the env var; toggling happens on the main thread while no harness
    // threads are alive.
    let e2e_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                sink(reference::evaluate_e2e(
                    &dataset,
                    &seed_small,
                    &seed_big,
                    &policy,
                    &counting,
                ));
            },
            &mut || {
                std::env::set_var("SMALLBIG_HARNESS_WORKERS", "1");
                sink(evaluate(&dataset, &small, &big, &policy, &cfg));
                std::env::remove_var("SMALLBIG_HARNESS_WORKERS");
            },
            &mut || {
                sink(evaluate(&dataset, &small, &big, &policy, &cfg));
            },
        ],
    );
    let fps = |n: usize, d: Duration| n as f64 / d.as_secs_f64();
    let evaluate_only = HarnessRow {
        images,
        before_fps: fps(images, e2e_times[0]),
        after_fps_single_worker: fps(images, e2e_times[1]),
        after_fps_parallel: fps(images, e2e_times[2]),
        speedup_single_worker: e2e_times[0].as_secs_f64() / e2e_times[1].as_secs_f64(),
        speedup_parallel: e2e_times[0].as_secs_f64() / e2e_times[2].as_secs_f64(),
    };
    eprintln!("harness/evaluate_only: {evaluate_only:?}");

    // ---- End-to-end harness: the experiment-driver flow -------------------
    let train = Dataset::generate("bench-train", &DatasetProfile::voc(), images, 41);
    let driver_after = || {
        let (cal, _examples) = calibrate(&train, &small, &big);
        let disc = DifficultCaseDiscriminator::new(cal.thresholds);
        let test_dets = detect_all(&dataset, &small, &big);
        let stats = discriminator_stats_on(&dataset, &test_dets, &disc);
        let outcome = evaluate_detections(&dataset, &test_dets, &Policy::DifficultCase(disc), &cfg);
        (outcome, stats, cal.thresholds)
    };

    // Self-check: the shared-detection driver reproduces the redundant
    // reference flow exactly.
    let (ref_outcome, ref_stats, ref_thresholds) =
        reference::pair_flow(&train, &dataset, &seed_small, &seed_big, &counting);
    let (new_outcome, new_stats, new_thresholds) = driver_after();
    assert_eq!(ref_thresholds, new_thresholds);
    assert_eq!(ref_stats, new_stats);
    assert_eq!(ref_outcome.0.to_bits(), new_outcome.e2e_map_pct.to_bits());
    assert_eq!(ref_outcome.1, new_outcome.e2e_detected);
    assert_eq!(ref_outcome.2.to_bits(), new_outcome.upload_ratio.to_bits());
    eprintln!("# driver self-check passed: shared-detection flow is bit-identical");

    let driver_images = 2 * images; // train + test
    let driver_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                sink(reference::pair_flow(
                    &train,
                    &dataset,
                    &seed_small,
                    &seed_big,
                    &counting,
                ));
            },
            &mut || {
                std::env::set_var("SMALLBIG_HARNESS_WORKERS", "1");
                sink(driver_after());
                std::env::remove_var("SMALLBIG_HARNESS_WORKERS");
            },
            &mut || {
                sink(driver_after());
            },
        ],
    );
    let experiment_driver = HarnessRow {
        images: driver_images,
        before_fps: fps(driver_images, driver_times[0]),
        after_fps_single_worker: fps(driver_images, driver_times[1]),
        after_fps_parallel: fps(driver_images, driver_times[2]),
        speedup_single_worker: driver_times[0].as_secs_f64() / driver_times[1].as_secs_f64(),
        speedup_parallel: driver_times[0].as_secs_f64() / driver_times[2].as_secs_f64(),
    };
    eprintln!("harness/experiment_driver: {experiment_driver:?}");
    let harness = Harness {
        evaluate_only,
        experiment_driver,
    };

    // ---- Session layer: static fast path vs traced links -------------------
    // The degraded-network layer must be pay-for-what-you-use: a session
    // without a trace takes the zero-trace fast path, and this section
    // watches its throughput across PRs. The traced columns exercise the
    // dynamic layer end-to-end (constant identity + bursty retransmission).
    let session_images = if quick { 60 } else { 200 };
    let session_data = Dataset::generate(
        "bench-session",
        &DatasetProfile::helmet(),
        session_images,
        17,
    );
    let session_small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let session_big = SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2);
    let session_disc = DifficultCaseDiscriminator::new(Thresholds {
        conf: 0.21,
        count: 4,
        area: 0.03,
    });
    let session_run = |trace: Option<simnet::LinkTrace>| {
        smallbig_core::run_system(
            &session_data,
            &session_small,
            &session_big,
            &session_disc,
            smallbig_core::RuntimeMode::SmallBig,
            &smallbig_core::RuntimeConfig {
                frame_size: (96, 96),
                link_trace: trace,
                ..Default::default()
            },
        )
    };
    let bursty_trace = || Some(simnet::LinkTrace::bursty(11, 60.0, 3.0, 1.5, 0.9));
    // Self-check before timing: the static path replays bit-identically,
    // a constant identity trace preserves routing/quality exactly, and the
    // traced run is itself deterministic.
    {
        let static_a = session_run(None);
        let static_b = session_run(None);
        assert_eq!(
            static_a, static_b,
            "static session run must be deterministic"
        );
        let constant = session_run(Some(simnet::LinkTrace::constant()));
        assert_eq!(static_a.upload_ratio, constant.upload_ratio);
        assert_eq!(static_a.uplink_bytes, constant.uplink_bytes);
        assert_eq!(static_a.detected, constant.detected);
        assert_eq!(static_a.map_pct, constant.map_pct);
        assert_eq!(session_run(bursty_trace()), session_run(bursty_trace()));
    }
    eprintln!("# session self-check passed: zero-trace fast path and traces are deterministic");
    let session_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                sink(session_run(None));
            },
            &mut || {
                sink(session_run(Some(simnet::LinkTrace::constant())));
            },
            &mut || {
                sink(session_run(bursty_trace()));
            },
        ],
    );
    let runtime_session = SessionRow {
        images: session_images,
        static_fps: fps(session_images, session_times[0]),
        constant_trace_fps: fps(session_images, session_times[1]),
        bursty_trace_fps: fps(session_images, session_times[2]),
        static_over_constant: session_times[1].as_secs_f64() / session_times[0].as_secs_f64(),
    };
    eprintln!("sessions/runtime_session: {runtime_session:?}");

    // ---- Model-update loop: pay only where it fires ------------------------
    // Twice over, in fact: `updates: None` (the default every other
    // section runs under) is asserted bit-identical to an enabled loop
    // that never reaches `min_examples` — so the machinery costs nothing
    // until it fires — and the firing cadence is then timed against the
    // disabled path.
    let update_cfg = smallbig_core::UpdateConfig {
        epoch_s: 1.0,
        min_examples: 8,
        ..Default::default()
    };
    let update_run = |updates: Option<smallbig_core::UpdateConfig>| {
        let mut cloud = smallbig_core::CloudServer::spawn(
            smallbig_core::CloudConfig {
                updates,
                ..Default::default()
            },
            Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2)),
        );
        let mut sess = cloud.connect(
            smallbig_core::SessionConfig {
                frame_size: (96, 96),
                ..smallbig_core::SessionConfig::new(2)
            },
            &session_small,
            Box::new(Policy::DifficultCase(DifficultCaseDiscriminator::default())),
        );
        for scene in session_data.iter() {
            let ticket = sess.submit(scene);
            sess.poll(ticket).expect("frame resolves");
        }
        let report = sess.drain();
        drop(sess);
        (report, cloud.shutdown())
    };
    let update_published;
    {
        let (disabled, _) = update_run(None);
        let starved = smallbig_core::UpdateConfig {
            min_examples: usize::MAX,
            ..Default::default()
        };
        let (starved_report, starved_stats) = update_run(Some(starved));
        assert_eq!(
            disabled, starved_report,
            "an update loop that never fires must be bit-identical to `updates: None`"
        );
        assert_eq!(starved_stats.updates_published, 0);
        let (enabled_a, stats_a) = update_run(Some(update_cfg));
        let (enabled_b, stats_b) = update_run(Some(update_cfg));
        assert_eq!(
            enabled_a, enabled_b,
            "update-enabled session must be deterministic"
        );
        assert_eq!(stats_a.updates_published, stats_b.updates_published);
        assert!(
            stats_a.updates_published >= 1,
            "bench cadence must actually refit"
        );
        assert!(enabled_a.updates_applied >= 1);
        update_published = stats_a.updates_published;
    }
    eprintln!(
        "# update self-check passed: starved loop bit-identical to disabled, enabled run deterministic"
    );
    let update_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                sink(update_run(None).0);
            },
            &mut || {
                sink(update_run(Some(update_cfg)).0);
            },
        ],
    );
    let update_loop = UpdateRow {
        images: session_images,
        disabled_fps: fps(session_images, update_times[0]),
        enabled_fps: fps(session_images, update_times[1]),
        updates_published: update_published,
        enabled_over_disabled: update_times[1].as_secs_f64() / update_times[0].as_secs_f64(),
    };
    eprintln!("sessions/update_loop: {update_loop:?}");
    let sessions = Sessions {
        runtime_session,
        update_loop,
    };

    // ---- Transport layer: channel vs in-memory vs loopback TCP ------------
    // One cloud-only session (every frame crosses the wire) end to end on
    // each substrate. The three reports are asserted bit-identical before
    // anything is timed: the transports must change throughput only.
    let transport_images = if quick { 40 } else { 150 };
    let transport_data = Dataset::generate(
        "bench-transport",
        &DatasetProfile::helmet(),
        transport_images,
        23,
    );
    let transport_small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
    let transport_big = || -> Arc<dyn Detector + Send + Sync> {
        Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2))
    };
    let transport_cfg = || smallbig_core::SessionConfig {
        frame_size: (96, 96),
        ..smallbig_core::SessionConfig::new(2)
    };
    let drive = |sess: &mut smallbig_core::EdgeSession<'_>| {
        for scene in transport_data.iter() {
            let ticket = sess.submit(scene);
            sess.poll(ticket).expect("frame resolves");
        }
        sess.drain()
    };
    let channel_run = || {
        let mut cloud = smallbig_core::CloudServer::spawn(
            smallbig_core::CloudConfig::default(),
            transport_big(),
        );
        let mut sess = cloud.connect(
            transport_cfg(),
            &transport_small,
            Box::new(Policy::CloudOnly),
        );
        let report = drive(&mut sess);
        drop(sess);
        cloud.shutdown();
        report
    };
    let serve_one = |listener: &mut dyn transport::Listener| {
        let stop = std::sync::atomic::AtomicBool::new(false);
        let cfg = smallbig_core::CloudConfig::default();
        let big = transport_big();
        let opts = transport::ServeOptions {
            expect_sessions: Some(1),
            ..transport::ServeOptions::default()
        };
        transport::serve(listener, &cfg, &big, &opts, &stop)
    };
    let memory_run = || {
        let (mut listener, connector) = transport::memory_listener();
        std::thread::scope(|scope| {
            let server = scope.spawn(move || serve_one(&mut listener));
            let remote = transport::RemoteCloud::connect(
                Box::new(connector.connect().expect("listener alive")),
                0,
                transport::ConnectOptions::default(),
            )
            .expect("in-memory handshake");
            let mut sess = remote.attach(
                transport_cfg(),
                &transport_small,
                Box::new(Policy::CloudOnly),
            );
            let report = drive(&mut sess);
            drop(sess);
            remote.close();
            server.join().expect("serve thread");
            report
        })
    };
    let tcp_run_as = |encoding: wire::Encoding| {
        let mut listener = transport::TcpWireListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = transport::Listener::local_addr(&listener);
        std::thread::scope(|scope| {
            let server = scope.spawn(move || serve_one(&mut listener));
            let remote = transport::RemoteCloud::connect_tcp_with(
                &addr,
                0,
                &simnet::RetryConfig::default(),
                encoding,
                false,
            )
            .expect("loopback handshake");
            let mut sess = remote.attach(
                transport_cfg(),
                &transport_small,
                Box::new(Policy::CloudOnly),
            );
            let report = drive(&mut sess);
            drop(sess);
            remote.close();
            server.join().expect("serve thread");
            report
        })
    };
    {
        let want = channel_run();
        assert_eq!(
            memory_run(),
            want,
            "in-memory transport session drifted from the channel path"
        );
        assert_eq!(
            tcp_run_as(wire::Encoding::Json),
            want,
            "loopback-TCP session drifted from the channel path"
        );
        assert_eq!(
            tcp_run_as(wire::Encoding::Binary),
            want,
            "binary-codec TCP session drifted from the channel path"
        );
    }
    eprintln!(
        "# transport self-check passed: channel, in-memory and TCP sessions (both codecs) are bit-identical"
    );
    let mut frame_buf = Vec::new();
    let frame_bytes_avg = |encoding: wire::Encoding, frame_buf: &mut Vec<u8>| {
        transport_data
            .iter()
            .map(|s| {
                wire::encode_frame_into_as(frame_buf, s, encoding);
                frame_buf.len()
            })
            .sum::<usize>() as f64
            / transport_images as f64
    };
    let scene_frame_bytes_avg_json = frame_bytes_avg(wire::Encoding::Json, &mut frame_buf);
    let scene_frame_bytes_avg_binary = frame_bytes_avg(wire::Encoding::Binary, &mut frame_buf);
    let transport_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                sink(channel_run());
            },
            &mut || {
                sink(memory_run());
            },
            &mut || {
                sink(tcp_run_as(wire::Encoding::Json));
            },
            &mut || {
                sink(tcp_run_as(wire::Encoding::Binary));
            },
        ],
    );
    let remote_session = TransportRow {
        frames: transport_images,
        scene_frame_bytes_avg_json,
        scene_frame_bytes_avg_binary,
        binary_over_json_bytes: scene_frame_bytes_avg_binary / scene_frame_bytes_avg_json,
        channel_fps: fps(transport_images, transport_times[0]),
        memory_transport_fps: fps(transport_images, transport_times[1]),
        tcp_loopback_fps: fps(transport_images, transport_times[2]),
        tcp_loopback_binary_fps: fps(transport_images, transport_times[3]),
        memory_over_channel: transport_times[0].as_secs_f64() / transport_times[1].as_secs_f64(),
        tcp_over_channel: transport_times[0].as_secs_f64() / transport_times[2].as_secs_f64(),
        tcp_binary_over_channel: transport_times[0].as_secs_f64()
            / transport_times[3].as_secs_f64(),
    };
    eprintln!("transport/remote_session: {remote_session:?}");

    // ---- Session multiplexing: a device fleet over one connection ----------
    // N cloud-only sessions, each with its own deterministic dataset, driven
    // three ways: the in-process channel path, one TCP connection per
    // session, and all sessions multiplexed over a single TCP connection
    // (binary codec, submits interleaved across sessions so their round
    // trips overlap). All three must produce bit-identical report vectors
    // before anything is timed.
    let mux_sessions = if quick { 3 } else { 4 };
    let mux_datasets: Vec<Dataset> = (0..mux_sessions)
        .map(|s| {
            Dataset::generate(
                "bench-mux",
                &DatasetProfile::helmet(),
                transport_images,
                29 + s as u64,
            )
        })
        .collect();
    let drive_data = |data: &Dataset, sess: &mut smallbig_core::EdgeSession<'_>| {
        for scene in data.iter() {
            let ticket = sess.submit(scene);
            sess.poll(ticket).expect("frame resolves");
        }
        sess.drain()
    };
    let serve_fleet = |listener: &mut dyn transport::Listener, expect: usize| {
        let stop = std::sync::atomic::AtomicBool::new(false);
        let cfg = smallbig_core::CloudConfig::default();
        let big = transport_big();
        let opts = transport::ServeOptions {
            expect_sessions: Some(expect),
            ..transport::ServeOptions::default()
        };
        transport::serve(listener, &cfg, &big, &opts, &stop)
    };
    // One fresh server per session: the transport paths give every session
    // its own cloud worker (fresh sim clock), so the channel reference must
    // too — a shared server would carry queue state across sessions.
    let mux_channel_run = || {
        mux_datasets
            .iter()
            .enumerate()
            .map(|(s, data)| {
                let mut cloud = smallbig_core::CloudServer::spawn(
                    smallbig_core::CloudConfig::default(),
                    transport_big(),
                );
                let mut sess = cloud.connect_as(
                    s as u64,
                    transport_cfg(),
                    &transport_small,
                    Box::new(Policy::CloudOnly),
                );
                let report = drive_data(data, &mut sess);
                drop(sess);
                cloud.shutdown();
                report
            })
            .collect::<Vec<_>>()
    };
    let mux_per_connection_run = || {
        let mut listener = transport::TcpWireListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = transport::Listener::local_addr(&listener);
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_fleet(&mut listener, mux_sessions));
            let reports: Vec<_> = mux_datasets
                .iter()
                .enumerate()
                .map(|(s, data)| {
                    let remote = transport::RemoteCloud::connect_tcp_with(
                        &addr,
                        s as u64,
                        &simnet::RetryConfig::default(),
                        wire::Encoding::Binary,
                        false,
                    )
                    .expect("loopback handshake");
                    let mut sess = remote.attach(
                        transport_cfg(),
                        &transport_small,
                        Box::new(Policy::CloudOnly),
                    );
                    let report = drive_data(data, &mut sess);
                    drop(sess);
                    remote.close();
                    report
                })
                .collect();
            server.join().expect("serve thread");
            reports
        })
    };
    let mux_run = || {
        let mut listener = transport::TcpWireListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = transport::Listener::local_addr(&listener);
        std::thread::scope(|scope| {
            let server = scope.spawn(|| serve_fleet(&mut listener, mux_sessions));
            let remote = transport::RemoteCloud::connect_tcp_with(
                &addr,
                0,
                &simnet::RetryConfig::default(),
                wire::Encoding::Binary,
                true,
            )
            .expect("mux handshake");
            let mut sessions: Vec<_> = (0..mux_sessions as u64)
                .map(|s| {
                    remote.attach_as(
                        s,
                        transport_cfg(),
                        &transport_small,
                        Box::new(Policy::CloudOnly),
                    )
                })
                .collect();
            // One frame in flight per session, submits batched before the
            // polls — the deepest pipelining that stays bit-identical to
            // the sequential paths: a session's virtual clock models an
            // edge that waits for each answer, so per-session lockstep is
            // part of the simulated semantics, not a driver choice.
            for f in 0..transport_images {
                let tickets: Vec<_> = sessions
                    .iter_mut()
                    .zip(&mux_datasets)
                    .map(|(sess, data)| sess.submit(&data.scenes()[f]))
                    .collect();
                for (sess, ticket) in sessions.iter_mut().zip(tickets) {
                    sess.poll(ticket).expect("frame resolves over mux");
                }
            }
            let reports: Vec<_> = sessions.iter_mut().map(|s| s.drain()).collect();
            drop(sessions);
            remote.close();
            server.join().expect("serve thread");
            reports
        })
    };
    {
        let want = mux_channel_run();
        assert_eq!(
            mux_per_connection_run(),
            want,
            "per-connection TCP fleet drifted from the channel path"
        );
        assert_eq!(
            mux_run(),
            want,
            "multiplexed fleet drifted from the channel path"
        );
    }
    eprintln!(
        "# mux self-check passed: channel, per-connection and multiplexed fleets are bit-identical"
    );
    let mux_frames_total = mux_sessions * transport_images;
    let mux_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                sink(mux_channel_run());
            },
            &mut || {
                sink(mux_per_connection_run());
            },
            &mut || {
                sink(mux_run());
            },
        ],
    );
    let mux_fleet = MuxRow {
        sessions: mux_sessions,
        frames_per_session: transport_images,
        channel_fps: fps(mux_frames_total, mux_times[0]),
        tcp_per_connection_fps: fps(mux_frames_total, mux_times[1]),
        tcp_mux_fps: fps(mux_frames_total, mux_times[2]),
        mux_over_channel: mux_times[0].as_secs_f64() / mux_times[2].as_secs_f64(),
        mux_over_per_connection: mux_times[1].as_secs_f64() / mux_times[2].as_secs_f64(),
    };
    eprintln!("transport/mux_fleet: {mux_fleet:?}");
    let transport_bench = TransportBench {
        remote_session,
        mux_fleet,
    };

    // ---- Cloud inference pool: workers sweep -------------------------------
    // One shared cloud server, several concurrent cloud-only sessions with
    // submits interleaved across sessions so the worker actually forms
    // batches, swept over `CloudConfig::workers`. Virtual time is
    // wall-clock-independent by construction, so every pool size must
    // produce bit-identical reports — asserted before timing. The fps
    // columns then answer the question PERFORMANCE.md's multi-core caveat
    // left open: does the pool pay at simulator inference costs?
    let pool_workers = [1usize, 2, 4];
    let pool_sessions = if quick { 3 } else { 4 };
    let pool_max_batch = 4;
    let pool_datasets: Vec<Dataset> = (0..pool_sessions)
        .map(|s| {
            Dataset::generate(
                "bench-pool",
                &DatasetProfile::helmet(),
                transport_images,
                47 + s as u64,
            )
        })
        .collect();
    let pool_run = |workers: usize| {
        let mut cloud = smallbig_core::CloudServer::spawn(
            smallbig_core::CloudConfig {
                workers,
                max_batch: pool_max_batch,
                ..smallbig_core::CloudConfig::default()
            },
            transport_big(),
        );
        let mut sessions: Vec<_> = (0..pool_sessions as u64)
            .map(|s| {
                cloud.connect_as(
                    s,
                    transport_cfg(),
                    &transport_small,
                    Box::new(Policy::CloudOnly),
                )
            })
            .collect();
        for f in 0..transport_images {
            let tickets: Vec<_> = sessions
                .iter_mut()
                .zip(&pool_datasets)
                .map(|(sess, data)| sess.submit(&data.scenes()[f]))
                .collect();
            for (sess, ticket) in sessions.iter_mut().zip(tickets) {
                sess.poll(ticket).expect("frame resolves");
            }
        }
        let reports: Vec<_> = sessions.iter_mut().map(|s| s.drain()).collect();
        drop(sessions);
        cloud.shutdown();
        reports
    };
    {
        let want = pool_run(1);
        for &w in &pool_workers[1..] {
            assert_eq!(
                pool_run(w),
                want,
                "a wall-clock inference pool of {w} workers moved virtual time"
            );
        }
    }
    eprintln!("# cloud-pool self-check passed: workers sweep is bit-identical at every pool size");
    let pool_times = best_of_each(
        repeats,
        &mut [
            &mut || {
                sink(pool_run(pool_workers[0]));
            },
            &mut || {
                sink(pool_run(pool_workers[1]));
            },
            &mut || {
                sink(pool_run(pool_workers[2]));
            },
        ],
    );
    let pool_frames_total = pool_sessions * transport_images;
    let workers_sweep = CloudPoolRow {
        sessions: pool_sessions,
        frames_per_session: transport_images,
        max_batch: pool_max_batch,
        workers: pool_workers.to_vec(),
        fps: pool_times
            .iter()
            .map(|t| fps(pool_frames_total, *t))
            .collect(),
        speedup_vs_single: pool_times
            .iter()
            .map(|t| pool_times[0].as_secs_f64() / t.as_secs_f64())
            .collect(),
    };
    eprintln!("cloud_pool/workers_sweep: {workers_sweep:?}");
    let cloud_pool = CloudPool { workers_sweep };

    // ---- Fleet engine: population scale ------------------------------------
    // Conformance before speed: the event-driven virtual-time core must
    // reproduce the thread-per-session reference deployment bit for bit on
    // a heterogeneous population (traced links, all three policy
    // archetypes, mixed deadlines, admission control, sharded cloud) —
    // only then are its throughput numbers meaningful.
    let conformance_sessions = 1_000;
    {
        let spec = smallbig_core::fleet::FleetSpec::new(conformance_sessions);
        let (core_reports, core_stats) =
            smallbig_core::fleet::run_fleet_sessions(&spec).expect("healthy drive");
        let (ref_reports, ref_stats) = smallbig_core::fleet::run_fleet_reference(&spec);
        assert_eq!(
            core_reports, ref_reports,
            "fleet event core drifted from the thread-per-session reference"
        );
        assert_eq!(
            core_stats, ref_stats,
            "fleet event core cloud stats drifted from the reference"
        );
        assert_eq!(core_reports.len(), conformance_sessions);
    }
    eprintln!(
        "# fleet self-check passed: event core is bit-identical to the thread-per-session reference ({conformance_sessions} sessions)"
    );
    let fleet_scales: &[usize] = if quick {
        &[1_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let fleet_rows: Vec<FleetRow> = fleet_scales
        .iter()
        .map(|&n| {
            let spec = smallbig_core::fleet::FleetSpec::new(n);
            // Small fleets get min-over-repeats like every other section;
            // the big ones are single-pass (a 10⁶-session run is minutes
            // of wall-clock — the smoke bar is that it completes in one
            // process, not nanosecond-stable timing).
            let passes = if n <= 10_000 { repeats.min(3) } else { 1 };
            let mut best = Duration::MAX;
            let mut report = None;
            for _ in 0..passes {
                let t = Instant::now();
                let r = smallbig_core::fleet::run_fleet(&spec).expect("healthy drive");
                best = best.min(t.elapsed());
                report = Some(r);
            }
            let r = report.expect("at least one pass");
            let miss_at_500ms = r
                .miss_curve
                .iter()
                .find(|p| (p.deadline_s - 0.5).abs() < 1e-9)
                .map(|p| p.miss_fraction)
                .unwrap_or(f64::NAN);
            let row = FleetRow {
                sessions: n,
                shards: spec.shards,
                frames: r.frames,
                upload_ratio: r.upload_ratio,
                wall_s: best.as_secs_f64(),
                sessions_per_sec: n as f64 / best.as_secs_f64(),
                frames_per_sec: r.frames as f64 / best.as_secs_f64(),
                bytes_per_session: r.uplink_bytes as f64 / n as f64,
                p50_ms: r.latency.p50_s * 1e3,
                p99_ms: r.latency.p99_s * 1e3,
                p999_ms: r.latency.p999_s * 1e3,
                miss_at_500ms,
                admission_fallbacks: r.admission_fallbacks,
            };
            eprintln!("fleet/scale[{n}]: {row:?}");
            row
        })
        .collect();
    // ---- Fleet engine: shard-parallel drive --------------------------------
    // Bit-identity before speed: the FleetReport must not change by a byte
    // across thread counts — only then is the fps column a pure wall-clock
    // comparison.
    let sweep_sessions = if quick { 2_000 } else { 100_000 };
    let sweep_threads = vec![1usize, 2, 4];
    let sweep_spec = |threads: usize| smallbig_core::fleet::FleetSpec {
        threads,
        ..smallbig_core::fleet::FleetSpec::new(sweep_sessions)
    };
    let baseline_report = smallbig_core::fleet::run_fleet(&sweep_spec(1)).expect("healthy drive");
    let mut sweep_walls = Vec::with_capacity(sweep_threads.len());
    let mut sweep_fps = Vec::with_capacity(sweep_threads.len());
    for &threads in &sweep_threads {
        let spec = sweep_spec(threads);
        let passes = if sweep_sessions <= 10_000 {
            repeats.min(3)
        } else {
            1
        };
        let mut best = Duration::MAX;
        for _ in 0..passes {
            let t = Instant::now();
            let r = smallbig_core::fleet::run_fleet(&spec).expect("healthy drive");
            best = best.min(t.elapsed());
            assert_eq!(
                r, baseline_report,
                "parallel drive drifted from the single-thread report on {threads} thread(s)"
            );
        }
        sweep_walls.push(best.as_secs_f64());
        sweep_fps.push(baseline_report.frames as f64 / best.as_secs_f64());
    }
    eprintln!(
        "# fleet thread-sweep self-check passed: FleetReport bit-identical on {sweep_threads:?} thread(s)"
    );
    let threads_sweep = FleetThreadsRow {
        sessions: sweep_sessions,
        shards: sweep_spec(1).shards,
        speedup_vs_single: sweep_walls.iter().map(|&w| sweep_walls[0] / w).collect(),
        threads: sweep_threads,
        fps: sweep_fps,
    };
    eprintln!("fleet/threads_sweep: {threads_sweep:?}");

    // ---- Fleet engine: compact-metrics memory ------------------------------
    // Each (scale, mode) pair runs in its own subprocess so VmHWM — a
    // process-lifetime high-water mark — measures exactly one fleet.
    let rss_scales: &[usize] = if quick { &[50_000] } else { &[1_000_000] };
    let rss_rows: Vec<FleetRssRow> = rss_scales
        .iter()
        .map(|&n| {
            let (frames_full, full_kb, full_wall) = fleet_rss_probe(n, "full");
            let (frames_compact, compact_kb, compact_wall) = fleet_rss_probe(n, "compact");
            assert_eq!(
                frames_full, frames_compact,
                "metrics mode must not change the frame count"
            );
            let row = FleetRssRow {
                sessions: n,
                frames: frames_full,
                full_peak_rss_mb: full_kb as f64 / 1024.0,
                compact_peak_rss_mb: compact_kb as f64 / 1024.0,
                reduction_x: full_kb as f64 / compact_kb as f64,
                full_wall_s: full_wall,
                compact_wall_s: compact_wall,
            };
            eprintln!("fleet/rss[{n}]: {row:?}");
            row
        })
        .collect();

    let fleet_bench = FleetBench {
        conformance_sessions,
        scale: fleet_rows,
        threads_sweep,
        rss: rss_rows,
    };

    let report = Report {
        pr: 9,
        title:
            "Shard-parallel fleet drive and compact metrics accumulator for million-session runs"
                .to_string(),
        command: "cargo run --release -p bench --bin throughput -- --json-out BENCH_PR9.json"
            .to_string(),
        quick,
        host_parallelism,
        kernels: Kernels {
            nms_200_boxes: nms_row,
            soft_nms_200_boxes: soft_row,
            match_greedy_40x10: match_row,
            map_accumulate_per_image: map_row,
            count_detected_per_image: count_row,
            detect_per_image: detect_row,
        },
        serializer: Serializer {
            encode_frame: encode_row,
        },
        scheduler,
        harness,
        sessions,
        transport: transport_bench,
        cloud_pool,
        fleet: fleet_bench,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // The default path nests under target/, which may not exist relative to
    // the cwd (e.g. when the binary runs outside the workspace root) — a
    // missing parent must not discard a minute of measurements.
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create bench report directory");
        }
    }
    std::fs::write(&out_path, json + "\n").expect("write bench report");
    eprintln!("# wrote {out_path}");
}
