//! The bench crate holds benchmarks only; see `benches/`.
