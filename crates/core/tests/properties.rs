//! Property-based tests for the discriminator and policies.

use detcore::{BBox, ClassId, Detection, ImageDetections};
use proptest::prelude::*;
use smallbig_core::{
    CaseKind, DifficultCaseDiscriminator, SemanticFeatures, Thresholds, PREDICTION_THRESHOLD,
};

fn arb_detection() -> impl Strategy<Value = Detection> {
    (
        0u16..20,
        0.01f64..1.0,
        0.0f64..0.8,
        0.0f64..0.8,
        0.05f64..0.2,
        0.05f64..0.2,
    )
        .prop_map(|(c, s, x, y, w, h)| {
            Detection::new(
                ClassId(c),
                s,
                BBox::new(x, y, (x + w).min(1.0), (y + h).min(1.0)).unwrap(),
            )
        })
}

fn arb_dets(max: usize) -> impl Strategy<Value = ImageDetections> {
    prop::collection::vec(arb_detection(), 0..max).prop_map(ImageDetections::from_vec)
}

fn arb_thresholds() -> impl Strategy<Value = Thresholds> {
    (0.05f64..0.5, 1usize..6, 0.0f64..0.6).prop_map(|(conf, count, area)| Thresholds {
        conf,
        count,
        area,
    })
}

proptest! {
    #[test]
    fn features_are_consistent(dets in arb_dets(30), t_conf in 0.05f64..0.5) {
        let f = SemanticFeatures::extract(&dets, t_conf);
        // The estimated count can never be below the predicted count
        // (t_conf <= 0.5 admits at least every predicted box).
        prop_assert!(f.estimated_count >= f.predicted_count);
        prop_assert_eq!(f.predicted_count, dets.count_above(PREDICTION_THRESHOLD));
        if f.estimated_count > 0 {
            prop_assert!(f.estimated_min_area.is_some());
            let a = f.estimated_min_area.unwrap();
            prop_assert!(a > 0.0 && a <= 1.0);
        } else {
            prop_assert!(f.estimated_min_area.is_none());
        }
    }

    #[test]
    fn classification_is_deterministic(dets in arb_dets(25), th in arb_thresholds()) {
        let disc = DifficultCaseDiscriminator::new(th);
        prop_assert_eq!(disc.classify(&dets), disc.classify(&dets));
    }

    #[test]
    fn adding_uncertain_boxes_never_flips_difficult_to_easy(
        dets in arb_dets(15),
        th in arb_thresholds(),
        extra_score in 0.0f64..0.49,
        extra_side in 0.01f64..0.3,
    ) {
        // An extra sub-prediction-threshold box can reveal uncertainty
        // (easy -> difficult) but must never hide it (difficult -> easy),
        // because it cannot restore predicted==estimated equality, cannot
        // lower the estimated count, and can only shrink the minimum area.
        prop_assume!(extra_score >= th.conf); // inside the counted window
        let disc = DifficultCaseDiscriminator::new(th);
        let before = disc.classify(&dets);
        let mut more = dets.clone();
        more.push(Detection::new(
            ClassId(0),
            extra_score,
            BBox::new(0.1, 0.1, 0.1 + extra_side, 0.1 + extra_side).unwrap(),
        ));
        let after = disc.classify(&more);
        if before == CaseKind::Difficult {
            prop_assert_eq!(after, CaseKind::Difficult);
        }
    }

    #[test]
    fn raising_count_threshold_never_creates_difficult(
        dets in arb_dets(25),
        conf in 0.05f64..0.5,
        area in 0.0f64..0.5,
        count_lo in 1usize..4,
        extra in 1usize..4,
    ) {
        // A more permissive count threshold can only classify fewer images
        // as difficult (for fixed conf/area).
        let lo = DifficultCaseDiscriminator::new(Thresholds { conf, count: count_lo, area });
        let hi = DifficultCaseDiscriminator::new(Thresholds {
            conf,
            count: count_lo + extra,
            area,
        });
        if lo.classify(&dets) == CaseKind::Easy {
            prop_assert_eq!(hi.classify(&dets), CaseKind::Easy);
        }
    }

    #[test]
    fn raising_area_threshold_never_creates_easy(
        dets in arb_dets(25),
        conf in 0.05f64..0.5,
        count in 1usize..5,
        area_lo in 0.0f64..0.3,
        bump in 0.0f64..0.3,
    ) {
        // A larger area threshold flags more images as difficult.
        let lo = DifficultCaseDiscriminator::new(Thresholds { conf, count, area: area_lo });
        let hi = DifficultCaseDiscriminator::new(Thresholds {
            conf,
            count,
            area: area_lo + bump,
        });
        if lo.classify(&dets) == CaseKind::Difficult {
            prop_assert_eq!(hi.classify(&dets), CaseKind::Difficult);
        }
    }

    #[test]
    fn true_feature_rule_matches_or_semantics(
        n in 0usize..20,
        area in prop::option::of(1e-4f64..1.0),
        th in arb_thresholds(),
    ) {
        let disc = DifficultCaseDiscriminator::new(th);
        let verdict = disc.classify_true_features(n, area);
        let expect = n > th.count || area.map(|a| a < th.area).unwrap_or(false);
        prop_assert_eq!(verdict.is_difficult(), expect);
    }
}

/// Builds a scene whose id is `id` (the streaming Random policy hashes it).
fn scene_with_id(id: u64) -> datagen::Scene {
    datagen::Scene::sample(&datagen::DatasetProfile::voc(), 77, id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Policy as OffloadPolicy` must agree with `Policy::decide_all` for
    /// every variant whose semantics are defined one frame at a time.
    #[test]
    fn streaming_policy_matches_batch_decisions(
        n in 2usize..30,
        conf in 0.05f64..0.5,
        count in 1usize..5,
        area in 0.0f64..0.3,
    ) {
        use smallbig_core::{Decision, OffloadPolicy, Policy, PolicyInput};

        let scenes: Vec<datagen::Scene> = (0..n as u64).map(scene_with_id).collect();
        let small = modelzoo::SimDetector::new(
            modelzoo::ModelKind::VggLiteSsd,
            datagen::SplitId::Voc07,
            20,
        );
        let dets: Vec<ImageDetections> =
            scenes.iter().map(|s| modelzoo::Detector::detect(&small, s)).collect();
        let inputs: Vec<PolicyInput<'_>> = scenes
            .iter()
            .zip(&dets)
            .map(|(scene, small_dets)| PolicyInput {
                scene,
                small_dets,
                label: Some(if scene.num_objects() > 2 {
                    CaseKind::Difficult
                } else {
                    CaseKind::Easy
                }),
                num_classes: 20,
                link: None,
                cloud_queue: None,
            })
            .collect();

        let disc = DifficultCaseDiscriminator::new(Thresholds { conf, count, area });
        for policy in [
            Policy::DifficultCase(disc),
            Policy::CloudOnly,
            Policy::EdgeOnly,
            Policy::Oracle,
        ] {
            let batch = policy.decide_all(&inputs);
            let mut streaming = policy.clone();
            let stream: Vec<Decision> =
                inputs.iter().map(|ctx| streaming.decide(ctx)).collect();
            prop_assert_eq!(&stream, &batch, "{}", Policy::name(&policy));
        }
    }

    /// The streaming Random policy is deterministic, order-independent per
    /// scene, and converges on the requested fraction.
    #[test]
    fn streaming_random_is_per_scene_deterministic(
        seed in any::<u64>(),
        fraction in 0.2f64..0.8,
    ) {
        use smallbig_core::{OffloadPolicy, Policy, PolicyInput};

        let scenes: Vec<datagen::Scene> = (0..400u64).map(scene_with_id).collect();
        let small = modelzoo::SimDetector::new(
            modelzoo::ModelKind::VggLiteSsd,
            datagen::SplitId::Voc07,
            20,
        );
        let dets: Vec<ImageDetections> =
            scenes.iter().map(|s| modelzoo::Detector::detect(&small, s)).collect();
        let mut p1 = Policy::Random { upload_fraction: fraction, seed };
        let mut p2 = p1.clone();
        let mut uploads = 0usize;
        for (scene, small_dets) in scenes.iter().zip(&dets) {
            let ctx = PolicyInput {
                scene, small_dets, label: None, num_classes: 20, link: None, cloud_queue: None,
            };
            let a = p1.decide(&ctx);
            prop_assert_eq!(a, p2.decide(&ctx));
            if a.is_upload() {
                uploads += 1;
            }
        }
        let observed = uploads as f64 / scenes.len() as f64;
        prop_assert!(
            (observed - fraction).abs() < 0.15,
            "requested {fraction:.2}, observed {observed:.2}"
        );
    }
}

// ---------------------------------------------------------------------------
// Incremental frame reassembly (`wire::FrameReader`)
// ---------------------------------------------------------------------------

use smallbig_core::wire::{FrameReader, WireError};

proptest! {
    /// Any frame stream chopped at any byte boundaries reassembles into
    /// exactly the original payloads, in order, with nothing left over.
    #[test]
    fn frame_reader_reassembles_any_chunking(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..200), 1..6),
        chunk_sizes in prop::collection::vec(1usize..23, 1..40),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&(p.len() as u32).to_le_bytes());
            stream.extend_from_slice(p);
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        let (mut i, mut k) = (0, 0);
        while i < stream.len() {
            let n = chunk_sizes[k % chunk_sizes.len()].min(stream.len() - i);
            k += 1;
            reader.feed(&stream[i..i + n]);
            i += n;
            while let Some(frame) = reader.next_frame().unwrap() {
                got.push(frame.to_vec());
            }
        }
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(reader.pending_bytes(), 0);
    }

    /// A stream cut anywhere strictly before a frame's end never yields a
    /// partial frame; completing the stream yields the exact payload.
    #[test]
    fn frame_reader_never_yields_a_partial_frame(
        payload in prop::collection::vec(any::<u8>(), 1..300),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut stream = Vec::new();
        stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        stream.extend_from_slice(&payload);
        let cut = ((stream.len() - 1) as f64 * cut_frac) as usize;
        let mut reader = FrameReader::new();
        reader.feed(&stream[..cut]);
        prop_assert!(reader.next_frame().unwrap().is_none());
        prop_assert_eq!(reader.pending_bytes(), cut);
        reader.feed(&stream[cut..]);
        let frame = reader.next_frame().unwrap().expect("frame complete");
        prop_assert_eq!(&frame[..], &payload[..]);
        prop_assert_eq!(reader.pending_bytes(), 0);
    }

    /// A hostile length prefix beyond the limit is rejected as soon as the
    /// prefix is readable — before any payload byte is buffered — no
    /// matter how the prefix bytes trickle in.
    #[test]
    fn frame_reader_rejects_hostile_prefix_under_any_chunking(
        over in 1usize..10_000,
        chunk in 1usize..5,
    ) {
        let limit = 1024;
        let mut reader = FrameReader::with_limit(limit);
        let prefix = ((limit + over) as u32).to_le_bytes();
        for piece in prefix.chunks(chunk) {
            reader.feed(piece);
        }
        match reader.next_frame() {
            Err(WireError::Oversized(n)) => prop_assert_eq!(n, limit + over),
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }
}
