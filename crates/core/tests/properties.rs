//! Property-based tests for the discriminator and policies.

use detcore::{BBox, ClassId, Detection, ImageDetections};
use proptest::prelude::*;
use smallbig_core::{
    CaseKind, DifficultCaseDiscriminator, SemanticFeatures, Thresholds, PREDICTION_THRESHOLD,
};

fn arb_detection() -> impl Strategy<Value = Detection> {
    (0u16..20, 0.01f64..1.0, 0.0f64..0.8, 0.0f64..0.8, 0.05f64..0.2, 0.05f64..0.2).prop_map(
        |(c, s, x, y, w, h)| {
            Detection::new(
                ClassId(c),
                s,
                BBox::new(x, y, (x + w).min(1.0), (y + h).min(1.0)).unwrap(),
            )
        },
    )
}

fn arb_dets(max: usize) -> impl Strategy<Value = ImageDetections> {
    prop::collection::vec(arb_detection(), 0..max).prop_map(ImageDetections::from_vec)
}

fn arb_thresholds() -> impl Strategy<Value = Thresholds> {
    (0.05f64..0.5, 1usize..6, 0.0f64..0.6)
        .prop_map(|(conf, count, area)| Thresholds { conf, count, area })
}

proptest! {
    #[test]
    fn features_are_consistent(dets in arb_dets(30), t_conf in 0.05f64..0.5) {
        let f = SemanticFeatures::extract(&dets, t_conf);
        // The estimated count can never be below the predicted count
        // (t_conf <= 0.5 admits at least every predicted box).
        prop_assert!(f.estimated_count >= f.predicted_count);
        prop_assert_eq!(f.predicted_count, dets.count_above(PREDICTION_THRESHOLD));
        if f.estimated_count > 0 {
            prop_assert!(f.estimated_min_area.is_some());
            let a = f.estimated_min_area.unwrap();
            prop_assert!(a > 0.0 && a <= 1.0);
        } else {
            prop_assert!(f.estimated_min_area.is_none());
        }
    }

    #[test]
    fn classification_is_deterministic(dets in arb_dets(25), th in arb_thresholds()) {
        let disc = DifficultCaseDiscriminator::new(th);
        prop_assert_eq!(disc.classify(&dets), disc.classify(&dets));
    }

    #[test]
    fn adding_uncertain_boxes_never_flips_difficult_to_easy(
        dets in arb_dets(15),
        th in arb_thresholds(),
        extra_score in 0.0f64..0.49,
        extra_side in 0.01f64..0.3,
    ) {
        // An extra sub-prediction-threshold box can reveal uncertainty
        // (easy -> difficult) but must never hide it (difficult -> easy),
        // because it cannot restore predicted==estimated equality, cannot
        // lower the estimated count, and can only shrink the minimum area.
        prop_assume!(extra_score >= th.conf); // inside the counted window
        let disc = DifficultCaseDiscriminator::new(th);
        let before = disc.classify(&dets);
        let mut more = dets.clone();
        more.push(Detection::new(
            ClassId(0),
            extra_score,
            BBox::new(0.1, 0.1, 0.1 + extra_side, 0.1 + extra_side).unwrap(),
        ));
        let after = disc.classify(&more);
        if before == CaseKind::Difficult {
            prop_assert_eq!(after, CaseKind::Difficult);
        }
    }

    #[test]
    fn raising_count_threshold_never_creates_difficult(
        dets in arb_dets(25),
        conf in 0.05f64..0.5,
        area in 0.0f64..0.5,
        count_lo in 1usize..4,
        extra in 1usize..4,
    ) {
        // A more permissive count threshold can only classify fewer images
        // as difficult (for fixed conf/area).
        let lo = DifficultCaseDiscriminator::new(Thresholds { conf, count: count_lo, area });
        let hi = DifficultCaseDiscriminator::new(Thresholds {
            conf,
            count: count_lo + extra,
            area,
        });
        if lo.classify(&dets) == CaseKind::Easy {
            prop_assert_eq!(hi.classify(&dets), CaseKind::Easy);
        }
    }

    #[test]
    fn raising_area_threshold_never_creates_easy(
        dets in arb_dets(25),
        conf in 0.05f64..0.5,
        count in 1usize..5,
        area_lo in 0.0f64..0.3,
        bump in 0.0f64..0.3,
    ) {
        // A larger area threshold flags more images as difficult.
        let lo = DifficultCaseDiscriminator::new(Thresholds { conf, count, area: area_lo });
        let hi = DifficultCaseDiscriminator::new(Thresholds {
            conf,
            count,
            area: area_lo + bump,
        });
        if lo.classify(&dets) == CaseKind::Difficult {
            prop_assert_eq!(hi.classify(&dets), CaseKind::Difficult);
        }
    }

    #[test]
    fn true_feature_rule_matches_or_semantics(
        n in 0usize..20,
        area in prop::option::of(1e-4f64..1.0),
        th in arb_thresholds(),
    ) {
        let disc = DifficultCaseDiscriminator::new(th);
        let verdict = disc.classify_true_features(n, area);
        let expect = n > th.count || area.map(|a| a < th.area).unwrap_or(false);
        prop_assert_eq!(verdict.is_difficult(), expect);
    }
}
