//! Calibration diagnostics: prints every intermediate statistic that the
//! paper's headline numbers depend on, for one (small, big, split) triple.
//!
//! Usage: `cargo run -p smallbig-core --release --example diagnose [scale]`

use datagen::{Split, SplitId};
use modelzoo::{ModelKind, SimDetector};
use smallbig_core::{
    calibrate, difficult_fraction, discriminator_test_stats, evaluate, DifficultCaseDiscriminator,
    EvalConfig, Policy,
};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let pairs = [
        (ModelKind::VggLiteSsd, ModelKind::SsdVgg16),
        (ModelKind::MobileNetV1Ssd, ModelKind::SsdVgg16),
        (ModelKind::MobileNetV2Ssd, ModelKind::SsdVgg16),
        (ModelKind::YoloMobileNetV1, ModelKind::YoloV4),
    ];
    let splits = [
        SplitId::Voc07,
        SplitId::Voc0712,
        SplitId::Voc0712pp,
        SplitId::Coco18,
        SplitId::Helmet,
    ];
    for (small_kind, big_kind) in pairs {
        println!("=== {} + {} ===", small_kind.label(), big_kind.label());
        for split_id in splits {
            // keep the run fast: YOLO only on the two splits the paper uses
            if big_kind == ModelKind::YoloV4
                && !matches!(split_id, SplitId::Voc07 | SplitId::Voc0712)
            {
                continue;
            }
            if small_kind != ModelKind::VggLiteSsd && split_id == SplitId::Helmet {
                continue;
            }
            let split = Split::load_scaled(split_id, scale);
            let nc = split.test.taxonomy().len();
            let small = SimDetector::new(small_kind, split_id, nc);
            let big = SimDetector::new(big_kind, split_id, nc);
            let (cal, examples) = calibrate(&split.train, &small, &big);
            let frac = difficult_fraction(&examples);
            let disc = DifficultCaseDiscriminator::new(cal.thresholds);
            let test_stats = discriminator_test_stats(&split.test, &small, &big, &disc);
            let cfg = EvalConfig::default();
            let ours = evaluate(
                &split.test,
                &small,
                &big,
                &Policy::DifficultCase(disc.clone()),
                &cfg,
            );
            let rand = evaluate(
                &split.test,
                &small,
                &big,
                &Policy::Random {
                    upload_fraction: ours.upload_ratio,
                    seed: 5,
                },
                &cfg,
            );
            println!(
                "  {:<7} thr=(conf {:.2}, n {}, a {:.2}) trainDiff {:.1}% trainAcc {:.1}% (P {:.1} R {:.1}) testAcc {:.1}% (P {:.1} R {:.1})",
                split_id.label(),
                cal.thresholds.conf,
                cal.thresholds.count,
                cal.thresholds.area,
                frac * 100.0,
                cal.train_stats.accuracy * 100.0,
                cal.train_stats.precision * 100.0,
                cal.train_stats.recall * 100.0,
                test_stats.accuracy * 100.0,
                test_stats.precision * 100.0,
                test_stats.recall * 100.0,
            );
            println!(
                "          big mAP {:>5.2}  small {:>5.2}  e2e {:>5.2} ({:.2}% of big)  upload {:>5.2}%  | dets: big {} small {} e2e {} ({:.2}%)  gt {}  | rand e2e mAP {:.2}",
                ours.big_map_pct,
                ours.small_map_pct,
                ours.e2e_map_pct,
                ours.e2e_map_vs_big_pct(),
                ours.upload_ratio * 100.0,
                ours.big_detected,
                ours.small_detected,
                ours.e2e_detected,
                ours.e2e_detected_vs_big_pct(),
                ours.total_gt,
                rand.e2e_map_pct,
            );
        }
    }
}
