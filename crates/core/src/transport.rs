//! Process-separated deployment: wire transports, handshake, and the
//! cloud-node / edge-node halves of a real distributed system.
//!
//! The streaming runtime ([`crate::CloudServer`] / [`crate::EdgeSession`])
//! runs edge and cloud in one process behind channels. This module carries
//! the *same* session layer over a real connection:
//!
//! * [`Transport`] / [`Listener`] — object-safe connection traits. Two
//!   implementations ship: an in-memory duplex ([`memory_listener`],
//!   [`memory_pair`]) for deterministic tests, and length-framed TCP over
//!   `std::net` ([`TcpTransport`], [`TcpWireListener`]) for real
//!   deployments.
//! * A versioned handshake — the edge opens with [`Hello`] (magic +
//!   [`PROTOCOL_VERSION`] + its session id), the cloud answers [`Welcome`]
//!   or [`Refused`]; failures surface as typed [`HandshakeError`]s. A
//!   hostile `Hello` cannot drive allocation: the cloud decodes it with
//!   [`crate::wire::decode_frame_with_limit`] under [`MAX_HELLO_BYTES`].
//! * [`RemoteCloud`] — the edge-side bridge. It speaks the session layer's
//!   own channel protocol, so [`RemoteCloud::attach`] returns a completely
//!   ordinary [`EdgeSession`]: the session code path is byte-for-byte the
//!   in-process one, which is what makes transport reports bit-identical
//!   to the channel path by construction.
//! * [`serve`] / [`serve_connection`] — the cloud side. **Each registered
//!   session gets its own dedicated cloud worker** (shared-nothing
//!   sharding): a session's results are then a pure function of its own
//!   frame stream, so a multi-process fleet is bit-identical to the same
//!   sessions run in-process — regardless of how the OS interleaves the
//!   processes. Per-worker [`CloudStats`] merge into a [`NodeStats`].
//! * Reconnect-with-backoff riding [`simnet::RetryConfig`]: give
//!   [`ConnectOptions::dialer`] a redial closure and a dropped connection
//!   is re-established with wall-clock backoff, the session re-registered
//!   and every unanswered frame replayed. Exhausted retries poison the
//!   connection so a waiting session fails loudly instead of hanging.
//!
//! ## Encodings and negotiation
//!
//! Frame payloads come in two encodings (see [`wire::Encoding`]): compact
//! JSON text — the protocol default — and a compact binary form that cuts
//! detection frames to well under half the JSON byte size. The choice is
//! per connection and negotiated in the handshake: the edge names its
//! preferred encoding in [`Hello::encoding`], the cloud echoes the agreed
//! choice in [`Welcome::encoding`], and an absent field on either side
//! means JSON. Handshake messages themselves are **always JSON**, so the
//! negotiation works against any protocol-version-1 peer:
//!
//! * old edge → new cloud: the hello carries no `encoding`, the cloud
//!   serves JSON;
//! * new edge → old cloud: the welcome carries no `encoding`, the edge
//!   falls back to JSON;
//! * an unparseable `encoding` is a typed failure, not a guess —
//!   [`RefuseReason::Encoding`] from the cloud,
//!   [`HandshakeError::Encoding`] at the edge.
//!
//! ## Session multiplexing
//!
//! A connection may carry **many sessions interleaved** (negotiated via
//! [`Hello::mux`] / [`Welcome::mux`]): an edge node drives its whole
//! device fleet over one TCP connection, and the cloud demuxes by session
//! id to one dedicated worker per registered session — the same
//! shared-nothing worker model as one-connection-per-session, so
//! determinism is preserved: each worker still sees exactly its own
//! session's frames in its own session's order. Answers on a multiplexed
//! connection travel with an explicit session id prefix (tickets are
//! per-session counters and would collide across sessions); non-mux
//! connections keep the legacy tags so old peers interoperate.
//!
//! ## Wire layout
//!
//! Every transport frame's payload is `[1 tag byte][standard wire frame]`,
//! where the inner frame is [`crate::wire`]'s length-prefixed encoding
//! (JSON or binary per the negotiated [`wire::Encoding`]). On multiplexed
//! connections, probe replies are
//! `[1 tag byte][8-byte LE session id][standard wire frame]` and answers
//! add the ticket:
//! `[1 tag byte][8-byte LE session id][8-byte LE ticket][standard wire
//! frame]` — routing lives entirely in the envelope, so the edge's shared
//! inbound pump demuxes answers to their sessions without parsing
//! payloads. Answers travel as the cloud worker's already-encoded response
//! frames, forwarded opaquely — the edge decodes exactly the bytes the
//! worker produced.
//! Worker answers are always JSON regardless of the negotiated encoding:
//! the uplink (scene submissions) is the byte budget this system
//! economizes, and transcoding the downlink would burn cloud CPU without
//! moving the metric.
//!
//! ## Backpressure
//!
//! Every queue between a session and a socket is **bounded**
//! ([`FRAME_QUEUE_CAP`]): the session→pump channel, the in-memory
//! transport's frame queues, and the cloud's per-session worker queues.
//! Answers take no queue at all — the worker writes them straight onto
//! the connection, so a blocked peer blocks the write (and with it the
//! worker and its bounded inbound queue). A slow reader therefore stalls
//! its writer — memory stays bounded end to end and the stall propagates
//! as backpressure (socket buffer fills → pump blocks → session blocks)
//! instead of an unbounded queue quietly absorbing the backlog.
//!
//! On the way out, the edge's send pump greedily drains its bounded queue
//! and delivers each run of frames as **one** coalesced write
//! ([`FrameTx::send_all`]) — a fleet's back-to-back submissions cost one
//! syscall and wake the cloud's reader once.

use crate::scheduler::SchedulerSlot;
use crate::server::{
    cloud_loop, AnswerTx, CloudMachine, ProbeReply, ProbeTx, SubmitRequest, SubmitResponse, ToCloud,
};
use crate::wire::{self, Encoding, FrameReader, WireError};
use crate::{CloudConfig, CloudStats, EdgeSession, OffloadPolicy, SessionConfig};
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use datagen::Scene;
use modelzoo::Detector;
use serde::{Deserialize, Serialize};
use simnet::{LinkModel, RetryConfig};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Version of the edge↔cloud wire protocol spoken by this build.
pub const PROTOCOL_VERSION: u16 = 1;

/// Maximum accepted [`Hello`] payload. A handshake message is tiny; this
/// bound lets the cloud reject an oversized (hostile) hello before its
/// payload is ever parsed.
pub const MAX_HELLO_BYTES: usize = 4096;

/// Magic number opening every [`Hello`] (`"SMBG"`).
pub const HELLO_MAGIC: u32 = 0x534d_4247;

/// How often the edge's inbound pump wakes to check connection liveness.
const IN_PUMP_TICK: Duration = Duration::from_millis(500);

/// Capacity of every bounded frame queue on the transport path (the
/// session→pump channel, in-memory transport queues, cloud worker
/// queues). A queue at capacity blocks its producer — see the module
/// docs' "Backpressure" section.
pub const FRAME_QUEUE_CAP: usize = 64;

mod tag {
    pub const HELLO: u8 = 1;
    pub const WELCOME: u8 = 2;
    pub const REFUSED: u8 = 3;
    pub const REGISTER: u8 = 4;
    pub const SUBMIT: u8 = 5;
    pub const PROBE: u8 = 6;
    pub const PROBE_REPLY: u8 = 7;
    pub const FLUSH: u8 = 8;
    pub const DEREGISTER: u8 = 9;
    pub const ANSWER: u8 = 10;
    pub const BYE: u8 = 11;
    /// `[tag][8-byte LE session][inner frame]` — answers on multiplexed
    /// connections, where per-session tickets would collide.
    pub const ANSWER_MUX: u8 = 12;
    /// `[tag][8-byte LE session][inner frame]` — probe replies on
    /// multiplexed connections.
    pub const PROBE_REPLY_MUX: u8 = 13;
    /// `[tag][8-byte LE session][inner frame]` — a pushed
    /// [`CalibrationUpdate`](crate::CalibrationUpdate) riding the answer
    /// path (reserved ticket [`crate::UPDATE_TICKET`]). Session-prefixed on
    /// mux *and* plain connections: update frames are not answers to a
    /// pending submit, so the edge routes them by session alone. Peers
    /// that predate the model-update loop ignore the tag.
    pub const UPDATE: u8 = 14;
}

// ---------------------------------------------------------------------------
// Handshake messages
// ---------------------------------------------------------------------------

/// The first message on every connection (edge → cloud).
///
/// The negotiation fields are `Option`s so the message stays
/// version-tolerant in both directions: an old peer's hello decodes with
/// them absent (meaning JSON, no mux), and an old cloud ignores them in a
/// new edge's hello.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hello {
    /// Must be [`HELLO_MAGIC`].
    pub magic: u32,
    /// Protocol version the edge speaks ([`PROTOCOL_VERSION`]).
    pub protocol: u16,
    /// Session id the edge proposes for itself — chosen by the deployment
    /// so reports are comparable across runs and transports.
    pub session: u64,
    /// Frame encoding the edge requests ([`wire::Encoding::name`]);
    /// absent means JSON.
    pub encoding: Option<String>,
    /// Whether the edge wants to multiplex many sessions over this
    /// connection; absent means no.
    pub mux: Option<bool>,
}

/// The cloud's acceptance reply to a [`Hello`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Welcome {
    /// Protocol version the cloud speaks (echoes the hello's on success).
    pub protocol: u16,
    /// Session id echoed back.
    pub session: u64,
    /// Whether this cloud runs admission control
    /// ([`CloudConfig::queue_limit`]) — the edge must probe before
    /// uploading when set.
    pub admission: bool,
    /// Frame encoding the cloud agreed to; absent (old cloud) means JSON.
    pub encoding: Option<String>,
    /// Whether the cloud agreed to multiplexing; absent (old cloud) means
    /// no — the edge must fall back to one connection per session.
    pub mux: Option<bool>,
}

/// Why a cloud refused a [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefuseReason {
    /// Protocol version mismatch.
    Version,
    /// The hello's magic number was wrong (not a smallbig peer).
    BadMagic,
    /// The hello exceeded [`MAX_HELLO_BYTES`].
    OversizedHello,
    /// The hello did not decode as a [`Hello`] frame.
    MalformedHello,
    /// The hello named an encoding this cloud does not recognize.
    Encoding,
}

/// The cloud's rejection reply to a [`Hello`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Refused {
    /// Protocol version the cloud speaks.
    pub server_protocol: u16,
    /// Machine-readable rejection reason.
    pub reason: RefuseReason,
    /// Human-readable detail.
    pub detail: String,
}

/// A handshake that did not produce a [`Welcome`].
#[derive(Debug)]
pub enum HandshakeError {
    /// The two peers speak different protocol versions.
    VersionMismatch {
        /// Version the cloud speaks.
        server: u16,
        /// Version this edge offered.
        client: u16,
    },
    /// The cloud refused the hello for a non-version reason.
    Refused {
        /// Machine-readable rejection reason.
        reason: RefuseReason,
        /// Human-readable detail from the cloud.
        detail: String,
    },
    /// No reply arrived within the handshake timeout.
    Timeout,
    /// The connection closed before any reply.
    Closed,
    /// The peer replied with something that is not a handshake message.
    Protocol(String),
    /// Encoding negotiation failed: the welcome named an encoding this
    /// edge does not recognize or did not offer (a corrupted or hostile
    /// negotiation field, surfaced typed instead of guessed around).
    Encoding {
        /// What the welcome carried and why it was rejected.
        detail: String,
    },
    /// The connection failed at the I/O layer.
    Io(io::Error),
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::VersionMismatch { server, client } => {
                write!(
                    f,
                    "protocol version mismatch: server v{server}, client v{client}"
                )
            }
            HandshakeError::Refused { reason, detail } => {
                write!(f, "cloud refused handshake ({reason:?}): {detail}")
            }
            HandshakeError::Timeout => write!(f, "handshake timed out"),
            HandshakeError::Closed => write!(f, "connection closed during handshake"),
            HandshakeError::Protocol(d) => write!(f, "handshake protocol error: {d}"),
            HandshakeError::Encoding { detail } => {
                write!(f, "encoding negotiation failed: {detail}")
            }
            HandshakeError::Io(e) => write!(f, "handshake I/O error: {e}"),
        }
    }
}

impl std::error::Error for HandshakeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HandshakeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Data-plane messages (private: the session layer never sees them)
// ---------------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct WireRegister {
    session: u64,
    link: LinkModel,
}

#[derive(Serialize, Deserialize)]
struct WireSubmit {
    header: SubmitRequest,
    scene: Scene,
}

/// Borrowed twin of [`WireSubmit`] for the encode side: the outbound pump
/// serializes straight from the session's `Arc<Scene>` without deep-copying
/// it. Must render the exact `Value` tree [`WireSubmit`]'s derive renders
/// (same keys, sorted order) so either peer decodes it as [`WireSubmit`].
struct WireSubmitRef<'a> {
    header: &'a SubmitRequest,
    scene: &'a Scene,
}

impl Serialize for WireSubmitRef<'_> {
    fn to_value(&self) -> serde::Value {
        let mut m = std::collections::BTreeMap::new();
        m.insert("header".to_string(), self.header.to_value());
        m.insert("scene".to_string(), self.scene.to_value());
        serde::Value::Object(m)
    }
}

#[derive(Serialize, Deserialize)]
struct WireProbe {
    session: u64,
    now: f64,
}

#[derive(Serialize, Deserialize)]
struct WireProbeReply {
    admitted: bool,
    queue_depth: usize,
}

#[derive(Serialize, Deserialize)]
struct WireDeregister {
    session: u64,
}

/// Body of a session-routed `FLUSH` on multiplexed connections. Legacy
/// (non-mux) connections send a body-less `FLUSH`, which old clouds expect
/// and new clouds treat as "flush every session on this connection" — safe
/// because a non-mux connection carries exactly one session.
#[derive(Serialize, Deserialize)]
struct WireFlush {
    session: u64,
}

fn msg<T: Serialize>(t: u8, body: &T, encoding: Encoding) -> Vec<u8> {
    let inner = wire::encode_frame_as(body, encoding);
    let mut payload = Vec::with_capacity(1 + inner.len());
    payload.push(t);
    payload.extend_from_slice(&inner);
    payload
}

fn msg_bare(t: u8) -> Vec<u8> {
    vec![t]
}

/// Builds a mux frame: `[tag][8-byte LE session][inner bytes]`.
fn msg_mux(t: u8, session: u64, inner: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9 + inner.len());
    payload.push(t);
    payload.extend_from_slice(&session.to_le_bytes());
    payload.extend_from_slice(inner);
    payload
}

/// Builds a mux answer frame:
/// `[ANSWER_MUX][8-byte LE session][8-byte LE ticket][inner bytes]`. The
/// ticket lives in the envelope so the edge's inbound pump routes the
/// answer by (session, ticket) alone — the payload is parsed exactly once,
/// by the session that owns it.
fn msg_mux_answer(session: u64, ticket: u64, inner: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(17 + inner.len());
    payload.push(tag::ANSWER_MUX);
    payload.extend_from_slice(&session.to_le_bytes());
    payload.extend_from_slice(&ticket.to_le_bytes());
    payload.extend_from_slice(inner);
    payload
}

fn split_msg(payload: &Bytes) -> Option<(u8, Bytes)> {
    if payload.is_empty() {
        return None;
    }
    Some((payload[0], payload.slice(1..)))
}

/// Splits a mux frame body into its session id prefix and inner bytes.
fn split_mux(inner: &Bytes) -> Option<(u64, Bytes)> {
    if inner.len() < 8 {
        return None;
    }
    let session = u64::from_le_bytes(inner[..8].try_into().expect("8 bytes checked"));
    Some((session, inner.slice(8..)))
}

/// Splits a mux answer body into (session, ticket, inner bytes) — the
/// counterpart of [`msg_mux_answer`].
fn split_mux_answer(inner: &Bytes) -> Option<(u64, u64, Bytes)> {
    if inner.len() < 16 {
        return None;
    }
    let session = u64::from_le_bytes(inner[..8].try_into().expect("8 bytes checked"));
    let ticket = u64::from_le_bytes(inner[8..16].try_into().expect("8 bytes checked"));
    Some((session, ticket, inner.slice(16..)))
}

// ---------------------------------------------------------------------------
// Transport traits
// ---------------------------------------------------------------------------

/// The sending half of a split [`Transport`]: ships one opaque payload as
/// one frame.
pub trait FrameTx: Send {
    /// Sends one frame; the peer's [`FrameRx::recv`] yields exactly
    /// `payload`.
    ///
    /// **Blocking semantics:** when the peer reads slowly, this call may
    /// block until the transport's bounded buffering (the in-memory pair's
    /// [`FRAME_QUEUE_CAP`] queue, a TCP socket's send buffer) has room —
    /// that stall is the backpressure described in the module docs, not a
    /// failure.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the connection is gone.
    fn send(&mut self, payload: &[u8]) -> io::Result<()>;

    /// Sends several frames back to back — behaviourally [`FrameTx::send`]
    /// in a loop (the default). Transports that pay a syscall per send
    /// (TCP) override this to issue **one** write for the whole run, which
    /// also lets the peer's reader drain the run in a single wakeup.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the connection is gone; a prefix of
    /// the frames may already have been delivered.
    fn send_all(&mut self, payloads: &[&[u8]]) -> io::Result<()> {
        for p in payloads {
            self.send(p)?;
        }
        Ok(())
    }
}

/// The receiving half of a split [`Transport`].
pub trait FrameRx: Send {
    /// Blocks for the next frame; `Ok(None)` is a clean end-of-stream.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] on connection failure or framing
    /// corruption.
    fn recv(&mut self) -> io::Result<Option<Bytes>>;

    /// Like [`FrameRx::recv`] but gives up after `timeout` with an error of
    /// kind [`io::ErrorKind::TimedOut`]. Partially received frames stay
    /// buffered for the next call.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] of kind [`io::ErrorKind::TimedOut`] on
    /// expiry, or any other kind on connection failure.
    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Bytes>>;
}

/// One bidirectional connection carrying opaque frames.
///
/// Object safe: the cloud accepts `Box<dyn Transport>` and never knows
/// whether frames cross a socket or a channel.
pub trait Transport: Send {
    /// Splits the connection into independently owned halves, so sending
    /// and receiving can run on different threads.
    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>);

    /// Human-readable peer name, for diagnostics.
    fn peer(&self) -> String;
}

/// Accepts inbound [`Transport`] connections (the cloud side).
pub trait Listener: Send {
    /// Blocks for the next inbound connection.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the listener can no longer accept.
    fn accept(&mut self) -> io::Result<Box<dyn Transport>>;

    /// The address peers dial, as a string (for TCP, `ip:port` with the
    /// real bound port).
    fn local_addr(&self) -> String;

    /// A handle that unblocks a pending [`Listener::accept`] by delivering
    /// a throwaway connection — how [`serve`] is shut down.
    fn waker(&self) -> Box<dyn Fn() + Send + Sync>;
}

// ---------------------------------------------------------------------------
// In-memory transport
// ---------------------------------------------------------------------------

/// One end of an in-memory duplex connection (see [`memory_pair`] and
/// [`memory_listener`]).
pub struct MemoryTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

/// Creates a connected pair of in-memory transports. Each direction
/// buffers at most [`FRAME_QUEUE_CAP`] frames — like a TCP socket's send
/// buffer, a full queue blocks the sender until the peer reads.
pub fn memory_pair() -> (MemoryTransport, MemoryTransport) {
    let (a_tx, b_rx) = channel::bounded(FRAME_QUEUE_CAP);
    let (b_tx, a_rx) = channel::bounded(FRAME_QUEUE_CAP);
    (
        MemoryTransport { tx: a_tx, rx: a_rx },
        MemoryTransport { tx: b_tx, rx: b_rx },
    )
}

struct MemoryTx {
    tx: Sender<Bytes>,
}

impl FrameTx for MemoryTx {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        self.tx
            .send(Bytes::copy_from_slice(payload))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }
}

struct MemoryRx {
    rx: Receiver<Bytes>,
}

impl FrameRx for MemoryRx {
    fn recv(&mut self) -> io::Result<Option<Bytes>> {
        match self.rx.recv() {
            Ok(b) => Ok(Some(b)),
            Err(_) => Ok(None),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Bytes>> {
        match self.rx.recv_timeout(timeout) {
            Ok(b) => Ok(Some(b)),
            Err(RecvTimeoutError::Timeout) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "frame read timed out",
            )),
            Err(RecvTimeoutError::Disconnected) => Ok(None),
        }
    }
}

impl Transport for MemoryTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>) {
        let this = *self;
        (
            Box::new(MemoryTx { tx: this.tx }),
            Box::new(MemoryRx { rx: this.rx }),
        )
    }

    fn peer(&self) -> String {
        "memory".to_string()
    }
}

/// The accepting side of an in-memory "network" (see [`memory_listener`]).
pub struct MemoryWireListener {
    rx: Receiver<MemoryTransport>,
    tx: Sender<MemoryTransport>,
}

/// Dials new connections into a [`MemoryWireListener`]; clone one per edge.
#[derive(Clone)]
pub struct MemoryConnector {
    tx: Sender<MemoryTransport>,
}

impl MemoryConnector {
    /// Opens a new in-memory connection to the listener.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::ConnectionRefused`] when the listener is
    /// gone.
    pub fn connect(&self) -> io::Result<MemoryTransport> {
        let (local, remote) = memory_pair();
        self.tx
            .send(remote)
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "listener dropped"))?;
        Ok(local)
    }
}

/// Creates an in-memory listener and a connector that dials it.
pub fn memory_listener() -> (MemoryWireListener, MemoryConnector) {
    let (tx, rx) = channel::unbounded();
    (
        MemoryWireListener { rx, tx: tx.clone() },
        MemoryConnector { tx },
    )
}

impl Listener for MemoryWireListener {
    fn accept(&mut self) -> io::Result<Box<dyn Transport>> {
        match self.rx.recv() {
            Ok(t) => Ok(Box::new(t)),
            Err(_) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "all connectors dropped",
            )),
        }
    }

    fn local_addr(&self) -> String {
        "memory".to_string()
    }

    fn waker(&self) -> Box<dyn Fn() + Send + Sync> {
        let tx = self.tx.clone();
        Box::new(move || {
            // Deliver a connection whose far end is already gone: a handler
            // that sees it reads immediate EOF and exits silently, and the
            // serve loop re-checks its stop flag.
            let (local, remote) = memory_pair();
            drop(local);
            let _ = tx.send(remote);
        })
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// A length-framed TCP connection (4-byte little-endian length prefix per
/// frame, decoded incrementally by [`FrameReader`]).
pub struct TcpTransport {
    stream: TcpStream,
    peer: String,
}

impl TcpTransport {
    /// Connects to `addr` (e.g. `"127.0.0.1:4820"`), with `TCP_NODELAY`.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn dial(addr: &str) -> io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            peer: addr.to_string(),
        })
    }

    /// Like [`TcpTransport::dial`], retrying with `retry`'s wall-clock
    /// backoff schedule (up to `max_retries` redials after the initial
    /// attempt) — lets an edge-node start before its cloud-node.
    ///
    /// # Errors
    ///
    /// Returns the final connect error once the schedule is exhausted.
    pub fn dial_with_backoff(addr: &str, retry: &RetryConfig) -> io::Result<TcpTransport> {
        let mut last = None;
        for attempt in 0..=retry.max_retries {
            if attempt > 0 {
                std::thread::sleep(Duration::from_secs_f64(retry.backoff_s(attempt)));
            }
            match TcpTransport::dial(addr) {
                Ok(t) => return Ok(t),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no dial attempts configured")))
    }

    fn from_stream(stream: TcpStream) -> io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp-peer".to_string());
        Ok(TcpTransport { stream, peer })
    }
}

struct TcpTx {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameTx for TcpTx {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        self.buf.clear();
        self.buf.reserve(4 + payload.len());
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.stream.write_all(&self.buf)
    }

    fn send_all(&mut self, payloads: &[&[u8]]) -> io::Result<()> {
        self.buf.clear();
        self.buf.reserve(payloads.iter().map(|p| 4 + p.len()).sum());
        for p in payloads {
            self.buf.extend_from_slice(&(p.len() as u32).to_le_bytes());
            self.buf.extend_from_slice(p);
        }
        self.stream.write_all(&self.buf)
    }
}

struct TcpRx {
    stream: TcpStream,
    reader: FrameReader,
    chunk: Vec<u8>,
    /// The read timeout currently configured on the socket. Steady-state
    /// receive loops call [`FrameRx::recv_timeout`] with the same tick
    /// every iteration; caching the value turns two `setsockopt` syscalls
    /// per received frame into zero.
    timeout: Option<Duration>,
}

impl TcpRx {
    fn pull(&mut self) -> io::Result<Option<Bytes>> {
        loop {
            if let Some(p) = self
                .reader
                .next_frame()
                .map_err(|e: WireError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                return Ok(Some(p));
            }
            let n = self.stream.read(&mut self.chunk)?;
            if n == 0 {
                return if self.reader.pending_bytes() == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            self.reader.feed(&self.chunk[..n]);
        }
    }
}

impl FrameRx for TcpRx {
    fn recv(&mut self) -> io::Result<Option<Bytes>> {
        if self.timeout.is_some() {
            self.stream.set_read_timeout(None)?;
            self.timeout = None;
        }
        self.pull()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Bytes>> {
        // A frame already buffered from an earlier read needs no syscall.
        if let Some(p) = self
            .reader
            .next_frame()
            .map_err(|e: WireError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        {
            return Ok(Some(p));
        }
        if self.timeout != Some(timeout) {
            self.stream.set_read_timeout(Some(timeout))?;
            self.timeout = Some(timeout);
        }
        match self.pull() {
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "frame read timed out",
                ))
            }
            other => other,
        }
    }
}

impl Transport for TcpTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>) {
        let this = *self;
        let read_half = this
            .stream
            .try_clone()
            .expect("cloning a TCP stream handle never fails on supported platforms");
        (
            Box::new(TcpTx {
                stream: this.stream,
                buf: Vec::new(),
            }),
            Box::new(TcpRx {
                stream: read_half,
                reader: FrameReader::new(),
                chunk: vec![0u8; 64 * 1024],
                timeout: None,
            }),
        )
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// A TCP [`Listener`] bound to a local address.
pub struct TcpWireListener {
    inner: TcpListener,
    addr: String,
}

impl TcpWireListener {
    /// Binds to `addr`; pass port `0` to let the OS choose (read the real
    /// port back from [`Listener::local_addr`]).
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(addr: &str) -> io::Result<TcpWireListener> {
        let inner = TcpListener::bind(addr)?;
        let addr = inner.local_addr()?.to_string();
        Ok(TcpWireListener { inner, addr })
    }
}

impl Listener for TcpWireListener {
    fn accept(&mut self) -> io::Result<Box<dyn Transport>> {
        let (stream, _) = self.inner.accept()?;
        Ok(Box::new(TcpTransport::from_stream(stream)?))
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }

    fn waker(&self) -> Box<dyn Fn() + Send + Sync> {
        let addr = self.addr.clone();
        Box::new(move || {
            // A throwaway connection that closes before sending anything:
            // the hello timeout (or immediate EOF) disposes of it silently.
            let _ = TcpStream::connect(&addr);
        })
    }
}

// ---------------------------------------------------------------------------
// Client handshake
// ---------------------------------------------------------------------------

/// Runs the client half of the handshake on a split transport: sends
/// `hello`, awaits [`Welcome`] or [`Refused`].
///
/// [`RemoteCloud::connect`] calls this internally; it is public so tests
/// and custom deployments can drive the handshake directly (e.g. with a
/// non-standard protocol version).
///
/// # Errors
///
/// Returns a typed [`HandshakeError`]; version rejections surface as
/// [`HandshakeError::VersionMismatch`].
pub fn client_handshake(
    tx: &mut dyn FrameTx,
    rx: &mut dyn FrameRx,
    hello: &Hello,
    timeout: Duration,
) -> Result<Welcome, HandshakeError> {
    tx.send(&msg(tag::HELLO, hello, Encoding::Json))
        .map_err(HandshakeError::Io)?;
    let frame = match rx.recv_timeout(timeout) {
        Ok(Some(f)) => f,
        Ok(None) => return Err(HandshakeError::Closed),
        Err(e) if e.kind() == io::ErrorKind::TimedOut => return Err(HandshakeError::Timeout),
        Err(e) => return Err(HandshakeError::Io(e)),
    };
    let Some((t, inner)) = split_msg(&frame) else {
        return Err(HandshakeError::Protocol("empty reply to hello".to_string()));
    };
    match t {
        tag::WELCOME => {
            let w: Welcome =
                wire::decode_frame(&inner).map_err(|e| HandshakeError::Protocol(e.to_string()))?;
            if w.protocol != hello.protocol {
                return Err(HandshakeError::VersionMismatch {
                    server: w.protocol,
                    client: hello.protocol,
                });
            }
            Ok(w)
        }
        tag::REFUSED => {
            let r: Refused =
                wire::decode_frame(&inner).map_err(|e| HandshakeError::Protocol(e.to_string()))?;
            match r.reason {
                RefuseReason::Version => Err(HandshakeError::VersionMismatch {
                    server: r.server_protocol,
                    client: hello.protocol,
                }),
                reason => Err(HandshakeError::Refused {
                    reason,
                    detail: r.detail,
                }),
            }
        }
        other => Err(HandshakeError::Protocol(format!(
            "unexpected reply tag {other}"
        ))),
    }
}

/// Resolves the frame encoding a completed handshake agreed on.
///
/// An absent [`Welcome::encoding`] is an old cloud: fall back to JSON
/// regardless of what the hello asked for. A named encoding must be one
/// this edge recognizes *and* either the one it requested or the JSON
/// fallback — anything else is a corrupted or hostile negotiation field,
/// surfaced as [`HandshakeError::Encoding`].
fn negotiated_encoding(hello: &Hello, welcome: &Welcome) -> Result<Encoding, HandshakeError> {
    let Some(name) = &welcome.encoding else {
        return Ok(Encoding::Json);
    };
    let Some(enc) = Encoding::parse(name) else {
        return Err(HandshakeError::Encoding {
            detail: format!("welcome named unknown encoding {name:?}"),
        });
    };
    let requested = hello
        .encoding
        .as_deref()
        .and_then(Encoding::parse)
        .unwrap_or_default();
    if enc != requested && enc != Encoding::Json {
        return Err(HandshakeError::Encoding {
            detail: format!("welcome named encoding {name:?}, which this edge did not offer"),
        });
    }
    Ok(enc)
}

/// Whether a completed handshake agreed to multiplex: both sides must have
/// said yes (an old cloud's welcome has no `mux` field — no agreement).
fn negotiated_mux(hello: &Hello, welcome: &Welcome) -> bool {
    hello.mux == Some(true) && welcome.mux == Some(true)
}

// ---------------------------------------------------------------------------
// Edge side: RemoteCloud
// ---------------------------------------------------------------------------

/// A redial closure for mid-run reconnection (see
/// [`ConnectOptions::dialer`]).
pub type Dialer = Box<dyn FnMut() -> io::Result<Box<dyn Transport>> + Send>;

/// Options for [`RemoteCloud::connect`].
pub struct ConnectOptions {
    /// How long to wait for the cloud's handshake reply (default 5 s).
    pub handshake_timeout: Duration,
    /// Wall-clock backoff schedule for mid-run reconnects.
    pub retry: RetryConfig,
    /// Redial closure. `None` (the default) disables mid-run reconnection:
    /// the first connection failure poisons the link and a waiting session
    /// fails loudly. With `Some`, a dropped connection is redialed with
    /// [`ConnectOptions::retry`]'s backoff, the handshake re-run, every
    /// session re-registered and unanswered frames replayed.
    pub dialer: Option<Dialer>,
    /// Frame encoding to request in the handshake (default JSON). The
    /// connection falls back to JSON against an old cloud whose welcome
    /// names no encoding.
    pub encoding: Encoding,
    /// Whether to request session multiplexing (default `false`). When the
    /// cloud confirms, [`RemoteCloud::attach_as`] drives many sessions over
    /// this one connection.
    pub mux: bool,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            handshake_timeout: Duration::from_secs(5),
            retry: RetryConfig::default(),
            dialer: None,
            encoding: Encoding::Json,
            mux: false,
        }
    }
}

enum Pending {
    Submit {
        session: u64,
        ticket: u64,
        payload: Vec<u8>,
    },
    Probe {
        session: u64,
        payload: Vec<u8>,
    },
}

impl Pending {
    fn payload(&self) -> &[u8] {
        match self {
            Pending::Submit { payload, .. } | Pending::Probe { payload, .. } => payload,
        }
    }
}

struct ConnState {
    generation: u64,
    dialer: Option<Dialer>,
    retry: RetryConfig,
    hello: Hello,
    handshake_timeout: Duration,
    /// What the original handshake negotiated; a reconnect handshake must
    /// land on the same outcome or the attempt is discarded (frames already
    /// encoded one way must not land on a peer expecting another).
    encoding: Encoding,
    mux: bool,
    /// Encoded REGISTER payloads by session id, replayed (in session-id
    /// order) on every reconnect.
    registers: BTreeMap<u64, Vec<u8>>,
    /// Unanswered submits/probes in send order, replayed on reconnect.
    pending: VecDeque<Pending>,
    fresh_tx: Option<Box<dyn FrameTx>>,
    fresh_rx: Option<Box<dyn FrameRx>>,
    resp_tx: HashMap<u64, Sender<(u64, Bytes)>>,
    probe_tx: HashMap<u64, Sender<ProbeReply>>,
    dead: bool,
}

struct ConnShared {
    state: Mutex<ConnState>,
    /// Negotiated frame encoding — fixed at handshake, read lock-free.
    encoding: Encoding,
    /// Whether the handshake agreed to multiplex sessions.
    mux: bool,
}

impl ConnShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, ConnState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn generation(&self) -> u64 {
        self.lock().generation
    }

    fn is_dead(&self) -> bool {
        self.lock().dead
    }

    fn mark_dead(&self) {
        self.lock().dead = true;
    }

    fn clear_session_handles(&self) {
        let mut st = self.lock();
        st.resp_tx.clear();
        st.probe_tx.clear();
    }

    fn set_register(
        &self,
        session: u64,
        payload: Vec<u8>,
        resp_tx: Sender<(u64, Bytes)>,
        probe_tx: Sender<ProbeReply>,
    ) -> u64 {
        let mut st = self.lock();
        st.registers.insert(session, payload);
        st.resp_tx.insert(session, resp_tx);
        st.probe_tx.insert(session, probe_tx);
        st.generation
    }

    fn push_pending(&self, p: Pending) -> u64 {
        let mut st = self.lock();
        st.pending.push_back(p);
        st.generation
    }

    /// Removes the pending submit matching `ticket` (and `session`, when
    /// the answer carried a mux session hint — tickets are per-session
    /// counters, so on multiplexed connections the hint disambiguates).
    /// Returns whether it was present (a duplicate replayed answer is
    /// dropped) and the owning session's response channel.
    fn take_submit(
        &self,
        session: Option<u64>,
        ticket: u64,
    ) -> (bool, Option<Sender<(u64, Bytes)>>) {
        let mut st = self.lock();
        let idx = st.pending.iter().position(|p| {
            matches!(p, Pending::Submit { session: s, ticket: t, .. }
                if *t == ticket && session.is_none_or(|hint| *s == hint))
        });
        match idx {
            Some(i) => {
                let Some(Pending::Submit { session: s, .. }) = st.pending.remove(i) else {
                    unreachable!("position matched a Pending::Submit");
                };
                let tx = st.resp_tx.get(&s).cloned();
                (true, tx)
            }
            None => (false, None),
        }
    }

    /// Like [`ConnShared::take_submit`], for probes: probes carry no ticket,
    /// so the oldest pending probe (for the hinted session, when given) is
    /// the one being answered.
    /// The response channel of a registered session, for frames routed by
    /// session alone (calibration updates).
    fn update_tx(&self, session: u64) -> Option<Sender<(u64, Bytes)>> {
        self.lock().resp_tx.get(&session).cloned()
    }

    fn take_probe(&self, session: Option<u64>) -> (bool, Option<Sender<ProbeReply>>) {
        let mut st = self.lock();
        let idx = st.pending.iter().position(|p| {
            matches!(p, Pending::Probe { session: s, .. }
                if session.is_none_or(|hint| *s == hint))
        });
        match idx {
            Some(i) => {
                let Some(Pending::Probe { session: s, .. }) = st.pending.remove(i) else {
                    unreachable!("position matched a Pending::Probe");
                };
                let tx = st.probe_tx.get(&s).cloned();
                (true, tx)
            }
            None => (false, None),
        }
    }

    fn reacquire_tx(&self, seen: u64) -> Option<(Box<dyn FrameTx>, u64)> {
        let mut st = self.lock();
        loop {
            if st.dead {
                return None;
            }
            if st.generation > seen {
                if let Some(t) = st.fresh_tx.take() {
                    return Some((t, st.generation));
                }
            }
            if !reconnect_locked(&mut st) {
                return None;
            }
        }
    }

    fn reacquire_rx(&self, seen: u64) -> Option<(Box<dyn FrameRx>, u64)> {
        let mut st = self.lock();
        loop {
            if st.dead {
                return None;
            }
            if st.generation > seen {
                if let Some(r) = st.fresh_rx.take() {
                    return Some((r, st.generation));
                }
            }
            if !reconnect_locked(&mut st) {
                return None;
            }
        }
    }
}

/// Redials, re-handshakes, re-registers every session and replays pending
/// frames, with wall-clock backoff. Runs under the connection lock: the
/// other pump blocks in its own reacquire until the outcome is decided. On
/// success both fresh halves are stored and the generation advances; on
/// exhausted retries the connection is poisoned.
fn reconnect_locked(st: &mut ConnState) -> bool {
    if st.dialer.is_none() {
        st.dead = true;
        return false;
    }
    let retry = st.retry;
    let hello = st.hello.clone();
    let hs_timeout = st.handshake_timeout;
    for attempt in 0..=retry.max_retries {
        if attempt > 0 {
            std::thread::sleep(Duration::from_secs_f64(retry.backoff_s(attempt)));
        }
        let dialed = st.dialer.as_mut().expect("checked above")();
        let Ok(t) = dialed else { continue };
        let (mut ntx, mut nrx) = t.split();
        let Ok(welcome) = client_handshake(&mut *ntx, &mut *nrx, &hello, hs_timeout) else {
            continue;
        };
        // The new peer must agree to exactly what the original handshake
        // negotiated: pending frames are already encoded one way, and the
        // sessions were attached under one mux regime.
        match negotiated_encoding(&hello, &welcome) {
            Ok(enc) if enc == st.encoding => {}
            _ => continue,
        }
        if negotiated_mux(&hello, &welcome) != st.mux {
            continue;
        }
        let mut ok = true;
        for reg in st.registers.values() {
            ok &= ntx.send(reg).is_ok();
        }
        let mut replayed: BTreeSet<u64> = BTreeSet::new();
        for p in &st.pending {
            ok &= ntx.send(p.payload()).is_ok();
            if let Pending::Submit { session, .. } = p {
                replayed.insert(*session);
            }
        }
        // Each replayed session's Flush went to the dead worker; re-issue
        // it so the fresh worker dispatches the replayed frames. On a mux
        // connection the flush is session-routed; legacy peers get the
        // body-less form they expect.
        if ok && !replayed.is_empty() {
            if st.mux {
                for session in replayed {
                    ok &= ntx
                        .send(&msg(tag::FLUSH, &WireFlush { session }, st.encoding))
                        .is_ok();
                }
            } else {
                ok &= ntx.send(&msg_bare(tag::FLUSH)).is_ok();
            }
        }
        if !ok {
            continue;
        }
        st.fresh_tx = Some(ntx);
        st.fresh_rx = Some(nrx);
        st.generation += 1;
        return true;
    }
    st.dead = true;
    false
}

/// Sends `payload`, transparently swapping to a reconnected link. For
/// pending-tracked payloads (`push_gen` is `Some`), a generation newer than
/// the push generation means a replay already delivered it.
fn send_msg(
    ftx: &mut Box<dyn FrameTx>,
    local_gen: &mut u64,
    payload: &[u8],
    push_gen: Option<u64>,
    shared: &ConnShared,
) -> bool {
    loop {
        // If the inbound pump already reconnected, stop writing into the
        // dead link (a buffered send could "succeed" and lose the frame).
        if shared.generation() > *local_gen {
            match shared.reacquire_tx(*local_gen) {
                Some((t, g)) => {
                    *ftx = t;
                    *local_gen = g;
                    if push_gen.is_some_and(|pg| g > pg) {
                        return true;
                    }
                }
                None => return false,
            }
        }
        if ftx.send(payload).is_ok() {
            return true;
        }
        match shared.reacquire_tx(*local_gen) {
            Some((t, g)) => {
                *ftx = t;
                *local_gen = g;
                if push_gen.is_some_and(|pg| g > pg) {
                    return true;
                }
            }
            None => return false,
        }
    }
}

/// Delivers a run of already-encoded payloads. The fast path — link
/// generation unchanged — is **one** [`FrameTx::send_all`] for the whole
/// run; anything else (reconnect in flight, write failure) falls back to
/// per-payload [`send_msg`], whose generation bookkeeping decides frame by
/// frame what a replay already covered. A payload "lost" to a write that
/// buffered into a dying link is re-delivered by the reconnect replay of
/// the pending set, exactly as with sequential sends.
fn flush_out_batch(
    ftx: &mut Box<dyn FrameTx>,
    local_gen: &mut u64,
    batch: &[(Vec<u8>, Option<u64>)],
    shared: &ConnShared,
) -> bool {
    if batch.is_empty() {
        return true;
    }
    if shared.generation() == *local_gen {
        let payloads: Vec<&[u8]> = batch.iter().map(|(p, _)| p.as_slice()).collect();
        if ftx.send_all(&payloads).is_ok() {
            return true;
        }
    }
    for (p, g) in batch {
        if !send_msg(ftx, local_gen, p, *g, shared) {
            return false;
        }
    }
    true
}

fn out_pump(mut ftx: Box<dyn FrameTx>, rx: Receiver<ToCloud>, shared: Arc<ConnShared>) {
    let enc = shared.encoding;
    let mut local_gen = shared.generation();
    let mut batch: Vec<(Vec<u8>, Option<u64>)> = Vec::new();
    'pump: loop {
        let Ok(mut item) = rx.recv() else { break };
        // Greedily drain whatever else the sessions already queued (a
        // fleet submits its frames back to back): the run goes out as one
        // coalesced write, so the peer's reader wakes once per run instead
        // of once per frame. The channel is bounded, so the batch is too.
        batch.clear();
        loop {
            let (payload, push_gen) = match item {
                ToCloud::Register {
                    session,
                    link,
                    resp_tx,
                    probe_tx,
                } => {
                    // Sessions attach to a transport bridge with channel-backed
                    // reply handles (the `Sink` variants are the cloud side's
                    // direct-write path and never cross a client connection).
                    let (AnswerTx::Chan(resp_tx), ProbeTx::Chan(probe_tx)) = (resp_tx, probe_tx)
                    else {
                        unreachable!("transport clients register with channel reply handles")
                    };
                    let p = msg(tag::REGISTER, &WireRegister { session, link }, enc);
                    let g = shared.set_register(session, p.clone(), resp_tx, probe_tx);
                    (p, Some(g))
                }
                ToCloud::Frame(req, scene) => {
                    let session = req.session;
                    let ticket = req.ticket;
                    let p = msg(
                        tag::SUBMIT,
                        &WireSubmitRef {
                            header: &req,
                            scene: &scene,
                        },
                        enc,
                    );
                    let g = shared.push_pending(Pending::Submit {
                        session,
                        ticket,
                        payload: p.clone(),
                    });
                    (p, Some(g))
                }
                ToCloud::Probe { session, now } => {
                    let p = msg(tag::PROBE, &WireProbe { session, now }, enc);
                    let g = shared.push_pending(Pending::Probe {
                        session,
                        payload: p.clone(),
                    });
                    (p, Some(g))
                }
                ToCloud::Flush { session } => {
                    // Mux peers route the flush to one session's worker; legacy
                    // peers expect (and old clouds only understand) the
                    // body-less form, which flushes the connection's single
                    // session.
                    if shared.mux {
                        (msg(tag::FLUSH, &WireFlush { session }, enc), None)
                    } else {
                        (msg_bare(tag::FLUSH), None)
                    }
                }
                ToCloud::Deregister { session } => {
                    (msg(tag::DEREGISTER, &WireDeregister { session }, enc), None)
                }
                ToCloud::Shutdown => {
                    // Anything queued ahead of the shutdown still goes out.
                    let _ = flush_out_batch(&mut ftx, &mut local_gen, &batch, &shared);
                    break 'pump;
                }
            };
            batch.push((payload, push_gen));
            match rx.try_recv() {
                Ok(next) => item = next,
                Err(_) => break,
            }
        }
        if !flush_out_batch(&mut ftx, &mut local_gen, &batch, &shared) {
            break 'pump;
        }
    }
    // All senders gone (session and handle dropped) or the link is poisoned:
    // close politely and stop the inbound pump. Mark dead BEFORE the `BYE`
    // goes out: the server closes the socket once it reads the `BYE`, and
    // the inbound pump must already see the dead flag when that EOF lands —
    // otherwise it would treat the clean close as a mid-run drop and
    // spuriously reconnect.
    shared.mark_dead();
    let _ = ftx.send(&msg_bare(tag::BYE));
}

fn deliver_answer(session: Option<u64>, inner: Bytes, shared: &ConnShared) -> bool {
    // Worker answers travel as the cloud worker's already-encoded JSON
    // frames regardless of the negotiated encoding (see module docs). A
    // legacy (non-mux) answer carries no envelope ticket, so routing it
    // means parsing it here.
    let Ok(resp) = wire::decode_frame::<SubmitResponse>(&inner) else {
        return false;
    };
    let (known, tx) = shared.take_submit(session, resp.ticket);
    if known {
        if let Some(tx) = tx {
            return tx.send((resp.ticket, inner)).is_ok();
        }
    }
    true
}

/// Mux answers carry (session, ticket) in the envelope
/// ([`msg_mux_answer`]), so the shared inbound pump routes them without
/// touching the payload — the owning session performs the one and only
/// parse. An envelope that names no pending frame is ignored, exactly like
/// a stale legacy answer.
fn deliver_answer_mux(session: u64, ticket: u64, inner: Bytes, shared: &ConnShared) -> bool {
    let (known, tx) = shared.take_submit(Some(session), ticket);
    if known {
        if let Some(tx) = tx {
            return tx.send((ticket, inner)).is_ok();
        }
    }
    true
}

/// Routes a pushed calibration update to its session's response channel
/// under the reserved ticket — never tracked in `pending` (an update is
/// not an answer and is never replayed by the transport; a lost update is
/// re-delivered by the cloud at the next version, which supersedes it). An
/// update for an unknown or already-detached session is dropped, like a
/// stale answer.
fn deliver_update(session: u64, inner: Bytes, shared: &ConnShared) -> bool {
    if let Some(tx) = shared.update_tx(session) {
        // A disconnected session channel just means the session is gone;
        // the connection itself stays healthy.
        let _ = tx.send((crate::UPDATE_TICKET, inner));
    }
    true
}

fn deliver_probe_reply(session: Option<u64>, inner: &Bytes, shared: &ConnShared) -> bool {
    let Ok(r) = wire::decode_frame_as::<WireProbeReply>(inner, shared.encoding) else {
        return false;
    };
    let (known, tx) = shared.take_probe(session);
    if known {
        if let Some(tx) = tx {
            return tx
                .send(ProbeReply {
                    admitted: r.admitted,
                    queue_depth: r.queue_depth,
                })
                .is_ok();
        }
    }
    true
}

fn handle_inbound(frame: &Bytes, shared: &ConnShared) -> bool {
    let Some((t, inner)) = split_msg(frame) else {
        return false;
    };
    match t {
        tag::ANSWER => deliver_answer(None, inner, shared),
        tag::ANSWER_MUX => match split_mux_answer(&inner) {
            Some((session, ticket, inner)) => deliver_answer_mux(session, ticket, inner, shared),
            None => false,
        },
        tag::PROBE_REPLY => deliver_probe_reply(None, &inner, shared),
        tag::PROBE_REPLY_MUX => match split_mux(&inner) {
            Some((session, inner)) => deliver_probe_reply(Some(session), &inner, shared),
            None => false,
        },
        tag::UPDATE => match split_mux(&inner) {
            Some((session, inner)) => deliver_update(session, inner, shared),
            None => false,
        },
        _ => true,
    }
}

fn in_pump(mut frx: Box<dyn FrameRx>, shared: Arc<ConnShared>) {
    let mut local_gen = shared.generation();
    loop {
        match frx.recv_timeout(IN_PUMP_TICK) {
            Ok(Some(frame)) => {
                if !handle_inbound(&frame, &shared) {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                if shared.is_dead() {
                    break;
                }
                if shared.generation() > local_gen {
                    match shared.reacquire_rx(local_gen) {
                        Some((r, g)) => {
                            frx = r;
                            local_gen = g;
                        }
                        None => break,
                    }
                }
            }
            Ok(None) | Err(_) => match shared.reacquire_rx(local_gen) {
                Some((r, g)) => {
                    frx = r;
                    local_gen = g;
                }
                None => break,
            },
        }
    }
    // Poison: a session still waiting on an answer must fail loudly (its
    // response channel disconnects) instead of hanging forever.
    shared.clear_session_handles();
    shared.mark_dead();
}

/// The edge side of a transport connection: bridges a real [`EdgeSession`]
/// onto a [`Transport`].
///
/// The bridge translates the session layer's channel messages to wire
/// frames on a pump thread and routes answers back, so a session attached
/// here runs byte-for-byte the in-process code path — reports over any
/// transport are bit-identical to the channel path.
///
/// Drop (or [`drain`](EdgeSession::drain) and drop) every attached session
/// before calling [`RemoteCloud::close`].
pub struct RemoteCloud {
    tx: Option<Sender<ToCloud>>,
    admission: bool,
    session: u64,
    encoding: Encoding,
    mux: bool,
    out_handle: Option<JoinHandle<()>>,
    in_handle: Option<JoinHandle<()>>,
}

impl RemoteCloud {
    /// Performs the handshake on `transport` and starts the bridge pumps.
    ///
    /// The hello carries [`ConnectOptions::encoding`] and
    /// [`ConnectOptions::mux`]; what the cloud actually agreed to is
    /// readable afterwards via [`RemoteCloud::encoding`] and
    /// [`RemoteCloud::mux`] (an old cloud silently downgrades both).
    ///
    /// # Errors
    ///
    /// Returns the typed [`HandshakeError`] when the cloud refuses, the
    /// encoding negotiation fails, or the connection fails before a
    /// welcome.
    pub fn connect(
        transport: Box<dyn Transport>,
        session: u64,
        opts: ConnectOptions,
    ) -> Result<RemoteCloud, HandshakeError> {
        let (mut ftx, mut frx) = transport.split();
        let hello = Hello {
            magic: HELLO_MAGIC,
            protocol: PROTOCOL_VERSION,
            session,
            encoding: Some(opts.encoding.name().to_string()),
            mux: Some(opts.mux),
        };
        let welcome = client_handshake(&mut *ftx, &mut *frx, &hello, opts.handshake_timeout)?;
        let encoding = negotiated_encoding(&hello, &welcome)?;
        let mux = negotiated_mux(&hello, &welcome);
        let shared = Arc::new(ConnShared {
            state: Mutex::new(ConnState {
                generation: 0,
                dialer: opts.dialer,
                retry: opts.retry,
                hello,
                handshake_timeout: opts.handshake_timeout,
                encoding,
                mux,
                registers: BTreeMap::new(),
                pending: VecDeque::new(),
                fresh_tx: None,
                fresh_rx: None,
                resp_tx: HashMap::new(),
                probe_tx: HashMap::new(),
                dead: false,
            }),
            encoding,
            mux,
        });
        let (tx, rx) = channel::bounded::<ToCloud>(FRAME_QUEUE_CAP);
        let sh_out = Arc::clone(&shared);
        let out_handle = std::thread::spawn(move || out_pump(ftx, rx, sh_out));
        let sh_in = Arc::clone(&shared);
        let in_handle = std::thread::spawn(move || in_pump(frx, sh_in));
        Ok(RemoteCloud {
            tx: Some(tx),
            admission: welcome.admission,
            session,
            encoding,
            mux,
            out_handle: Some(out_handle),
            in_handle: Some(in_handle),
        })
    }

    /// Dials `addr` over TCP (with `retry` backoff for the initial
    /// connect), handshakes, and installs a redial closure so mid-run
    /// connection drops reconnect with the same schedule.
    ///
    /// # Errors
    ///
    /// Returns [`HandshakeError::Io`] when no connection could be made, or
    /// any other [`HandshakeError`] from the handshake itself.
    pub fn connect_tcp(
        addr: &str,
        session: u64,
        retry: &RetryConfig,
    ) -> Result<RemoteCloud, HandshakeError> {
        RemoteCloud::connect_tcp_with(addr, session, retry, Encoding::Json, false)
    }

    /// Like [`RemoteCloud::connect_tcp`], additionally requesting a frame
    /// `encoding` and (with `mux`) session multiplexing in the handshake.
    ///
    /// # Errors
    ///
    /// As [`RemoteCloud::connect_tcp`], plus [`HandshakeError::Encoding`]
    /// when the cloud's answer to the encoding negotiation is invalid.
    pub fn connect_tcp_with(
        addr: &str,
        session: u64,
        retry: &RetryConfig,
        encoding: Encoding,
        mux: bool,
    ) -> Result<RemoteCloud, HandshakeError> {
        let t = TcpTransport::dial_with_backoff(addr, retry).map_err(HandshakeError::Io)?;
        let redial_addr = addr.to_string();
        let opts = ConnectOptions {
            retry: *retry,
            dialer: Some(Box::new(move || {
                TcpTransport::dial(&redial_addr).map(|t| Box::new(t) as Box<dyn Transport>)
            })),
            encoding,
            mux,
            ..ConnectOptions::default()
        };
        RemoteCloud::connect(Box::new(t), session, opts)
    }

    /// Attaches an [`EdgeSession`] over this connection — the transport
    /// twin of [`crate::CloudServer::connect`], using the session id
    /// negotiated in the handshake.
    pub fn attach<'a>(
        &self,
        config: SessionConfig,
        small: &'a (dyn Detector + Sync),
        policy: Box<dyn OffloadPolicy + 'a>,
    ) -> EdgeSession<'a> {
        self.attach_as(self.session, config, small, policy)
    }

    /// Attaches an [`EdgeSession`] with an explicit session id — the
    /// multiplexed form of [`RemoteCloud::attach`]: on a connection that
    /// negotiated [`RemoteCloud::mux`], every device in a fleet attaches
    /// its own session here and they all share this one connection. Session
    /// ids must be unique per connection.
    pub fn attach_as<'a>(
        &self,
        session: u64,
        config: SessionConfig,
        small: &'a (dyn Detector + Sync),
        policy: Box<dyn OffloadPolicy + 'a>,
    ) -> EdgeSession<'a> {
        let tx = self
            .tx
            .clone()
            .expect("RemoteCloud::attach called after close");
        EdgeSession::attach(session, config, small, policy, tx, self.admission)
    }

    /// The session id negotiated in the handshake.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Whether the cloud requires admission probes
    /// ([`CloudConfig::queue_limit`] set on the serving side).
    pub fn admission(&self) -> bool {
        self.admission
    }

    /// The frame encoding this connection negotiated (JSON when the cloud
    /// predates the negotiation).
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// Whether the cloud agreed to session multiplexing — only then may
    /// multiple sessions ride this connection via
    /// [`RemoteCloud::attach_as`].
    pub fn mux(&self) -> bool {
        self.mux
    }

    /// Closes the connection (sends `BYE`) and joins the pump threads.
    /// All attached sessions must already be dropped.
    pub fn close(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.tx = None;
        if let Some(h) = self.out_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.in_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RemoteCloud {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---------------------------------------------------------------------------
// Cloud side: serve
// ---------------------------------------------------------------------------

/// Options for [`serve`] / [`serve_connection`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// How long a fresh connection may take to send its [`Hello`] before
    /// the handler gives up (the half-open guard; default 5 s). The accept
    /// loop is never involved: handshakes run on per-connection threads.
    pub hello_timeout: Duration,
    /// Stop serving (set the stop flag and wake the accept loop) once this
    /// many registered sessions have completed. A legacy connection counts
    /// one session; a multiplexed connection counts every session it
    /// registered. `None` serves until the caller stops it.
    pub expect_sessions: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            hello_timeout: Duration::from_secs(5),
            expect_sessions: None,
        }
    }
}

/// What one connection handler observed (see [`serve_connection`]).
#[derive(Debug, Default)]
pub struct ConnOutcome {
    /// The connection's cloud worker stats, merged across its per-session
    /// workers (`None` when the handshake failed or a worker panicked
    /// before registering).
    pub stats: Option<CloudStats>,
    /// Whether the peer registered a session.
    pub registered: bool,
    /// How many distinct sessions the peer registered (1 on legacy
    /// connections; possibly more on multiplexed ones).
    pub sessions: usize,
    /// Whether the peer closed with a `BYE` (vs. vanishing mid-run).
    pub clean: bool,
    /// Whether the handshake was refused.
    pub refused: bool,
    /// Whether the peer never sent a hello within the timeout.
    pub hello_timed_out: bool,
}

/// Aggregate stats for one cloud node: per-connection worker stats merged,
/// plus connection accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Sum/max-merge of every connection worker's [`CloudStats`].
    pub cloud: CloudStats,
    /// Registered connections that completed (including aborted ones).
    pub connections: usize,
    /// Registered connections that vanished without a `BYE` (killed edge
    /// processes, mid-run reconnects).
    pub aborted: usize,
    /// Handshakes refused (version mismatch, oversized/malformed hello).
    pub refused: usize,
    /// Connections that never sent a hello within the timeout (half-open).
    pub hello_timeouts: usize,
}

/// Sum/max-merges one worker's [`CloudStats`] into an aggregate (additive
/// counters summed, high-water marks maxed).
fn merge_cloud_stats(into: &mut CloudStats, s: &CloudStats) {
    into.served += s.served;
    into.batches += s.batches;
    into.busy_s += s.busy_s;
    into.sessions += s.sessions;
    into.admission_rejects += s.admission_rejects;
    into.peak_workers = into.peak_workers.max(s.peak_workers);
    into.scale_changes += s.scale_changes;
    into.updates_published += s.updates_published;
    into.calibration_version = into.calibration_version.max(s.calibration_version);
}

impl NodeStats {
    /// Folds one connection's outcome into the node totals.
    pub fn absorb(&mut self, outcome: ConnOutcome) {
        if outcome.registered {
            self.connections += 1;
            if !outcome.clean {
                self.aborted += 1;
            }
        }
        if outcome.refused {
            self.refused += 1;
        }
        if outcome.hello_timed_out {
            self.hello_timeouts += 1;
        }
        if let Some(s) = outcome.stats {
            merge_cloud_stats(&mut self.cloud, &s);
        }
    }
}

fn send_locked(ftx: &Arc<Mutex<Box<dyn FrameTx>>>, payload: &[u8]) -> io::Result<()> {
    ftx.lock().unwrap_or_else(|e| e.into_inner()).send(payload)
}

fn parse_hello(first: &Bytes) -> Result<Hello, Refused> {
    let refuse = |reason, detail: String| Refused {
        server_protocol: PROTOCOL_VERSION,
        reason,
        detail,
    };
    let Some((t, inner)) = split_msg(first) else {
        return Err(refuse(
            RefuseReason::MalformedHello,
            "empty first frame".to_string(),
        ));
    };
    if t != tag::HELLO {
        return Err(refuse(
            RefuseReason::MalformedHello,
            format!("expected hello, got tag {t}"),
        ));
    }
    match wire::decode_frame_with_limit::<Hello>(&inner, MAX_HELLO_BYTES) {
        Err(WireError::Oversized(n)) => Err(refuse(
            RefuseReason::OversizedHello,
            format!("hello payload of {n} bytes exceeds {MAX_HELLO_BYTES}"),
        )),
        Err(e) => Err(refuse(RefuseReason::MalformedHello, e.to_string())),
        Ok(h) if h.magic != HELLO_MAGIC => Err(refuse(
            RefuseReason::BadMagic,
            format!("bad magic {:#x}", h.magic),
        )),
        Ok(h) if h.protocol != PROTOCOL_VERSION => Err(refuse(
            RefuseReason::Version,
            format!(
                "server speaks v{PROTOCOL_VERSION}, client offered v{}",
                h.protocol
            ),
        )),
        Ok(h) => Ok(h),
    }
}

/// Serves one accepted connection to completion: handshake, then a
/// dedicated cloud worker fed from the connection's frames.
///
/// The per-connection worker is what keeps a distributed fleet
/// deterministic: the worker's state depends only on this connection's
/// message order, never on how the OS interleaves other edges.
pub fn serve_connection(
    conn: Box<dyn Transport>,
    config: &CloudConfig,
    big: &Arc<dyn Detector + Send + Sync>,
    opts: &ServeOptions,
) -> ConnOutcome {
    let mut outcome = ConnOutcome::default();
    let (ftx, mut frx) = conn.split();
    let ftx = Arc::new(Mutex::new(ftx));

    let first = match frx.recv_timeout(opts.hello_timeout) {
        Ok(Some(f)) => f,
        Err(e) if e.kind() == io::ErrorKind::TimedOut => {
            outcome.hello_timed_out = true;
            return outcome;
        }
        Ok(None) | Err(_) => return outcome,
    };
    let hello = match parse_hello(&first) {
        Ok(h) => h,
        Err(refused) => {
            let _ = send_locked(&ftx, &msg(tag::REFUSED, &refused, Encoding::Json));
            outcome.refused = true;
            return outcome;
        }
    };
    // Negotiate the frame encoding and mux mode (handshake itself is
    // always JSON): absent fields are an old edge — JSON, no mux. An
    // encoding this cloud does not recognize is a typed refusal, never a
    // guess.
    let encoding = match hello.encoding.as_deref() {
        None => Encoding::Json,
        Some(name) => match Encoding::parse(name) {
            Some(e) => e,
            None => {
                let refused = Refused {
                    server_protocol: PROTOCOL_VERSION,
                    reason: RefuseReason::Encoding,
                    detail: format!("unknown encoding {name:?}"),
                };
                let _ = send_locked(&ftx, &msg(tag::REFUSED, &refused, Encoding::Json));
                outcome.refused = true;
                return outcome;
            }
        },
    };
    let mux = hello.mux == Some(true);
    let welcome = Welcome {
        protocol: PROTOCOL_VERSION,
        session: hello.session,
        admission: config.queue_limit.is_some(),
        encoding: Some(encoding.name().to_string()),
        mux: Some(mux),
    };
    if send_locked(&ftx, &msg(tag::WELCOME, &welcome, Encoding::Json)).is_err() {
        return outcome;
    }

    if let Some(a) = &config.autoscale {
        a.assert_valid();
    }

    // One dedicated cloud state machine per registered session, created
    // lazily at its REGISTER — the shared-nothing sharding that keeps a
    // fleet deterministic, whether sessions arrive on separate connections
    // or multiplexed onto this one. With the default single-worker cloud
    // the machine runs *inline on this reader thread*: every SUBMIT is
    // handled (and its answer written) before the next frame is read, so
    // a frame costs zero cross-thread handoffs. A multi-worker cloud
    // needs real wall-clock detect parallelism, so it keeps the
    // thread-per-session shape and pays the queue hop.
    struct SessionWorker {
        ctx: Sender<ToCloud>,
        handle: JoinHandle<CloudStats>,
    }
    enum SessionExec<'a> {
        Inline(Box<CloudMachine<'a>>),
        Threaded(SessionWorker),
    }
    impl SessionExec<'_> {
        // Never used for Shutdown: inline machines are finish()ed at
        // connection teardown, threaded workers get Shutdown there too.
        fn deliver(&mut self, msg: ToCloud) -> bool {
            match self {
                SessionExec::Inline(m) => m.handle(msg),
                SessionExec::Threaded(w) => w.ctx.send(msg).is_ok(),
            }
        }
    }
    let inline = config.workers == 1;
    let mut workers: HashMap<u64, SessionExec> = HashMap::new();
    let mut clean = false;
    while let Ok(Some(frame)) = frx.recv() {
        let Some((t, inner)) = split_msg(&frame) else {
            break;
        };
        let ok = match t {
            tag::REGISTER => match wire::decode_frame_as::<WireRegister>(&inner, encoding) {
                Ok(r) => {
                    outcome.registered = true;
                    let session = r.session;
                    // A re-REGISTER for a live session (edge reconnect
                    // replay) reuses its machine/worker; the Register
                    // message swaps in the fresh reply handles.
                    let worker = workers.entry(session).or_insert_with(|| {
                        if inline {
                            let sched = SchedulerSlot::from_config(&config.scheduler);
                            SessionExec::Inline(Box::new(CloudMachine::new(
                                &**big, config, sched, None,
                            )))
                        } else {
                            let (ctx, crx) = channel::bounded::<ToCloud>(FRAME_QUEUE_CAP);
                            let cfg = config.clone();
                            let big2 = Arc::clone(big);
                            let sched = SchedulerSlot::from_config(&cfg.scheduler);
                            let handle =
                                std::thread::spawn(move || cloud_loop(&crx, &*big2, &cfg, sched));
                            SessionExec::Threaded(SessionWorker { ctx, handle })
                        }
                    });
                    // Replies are written straight from the worker thread
                    // (no forwarder-thread hop — on a busy host each hop is
                    // a context switch per answer). The worker's answer
                    // frame is forwarded opaquely (always JSON — see module
                    // docs); mux connections prefix the session id AND the
                    // ticket, so the edge routes the answer straight to its
                    // session without parsing the payload on its (shared)
                    // inbound pump. A blocked peer blocks the write — and
                    // therefore the worker and its bounded queue — which is
                    // exactly the backpressure cascade the channels gave.
                    let ftx_a = Arc::clone(&ftx);
                    let resp_tx = AnswerTx::Sink(Box::new(move |ticket, b: Bytes| {
                        // Calibration pushes ride the answer path under the
                        // reserved ticket but are not answers to a pending
                        // submit: they ship under their own session-prefixed
                        // tag on mux and plain connections alike.
                        let payload = if ticket == crate::UPDATE_TICKET {
                            msg_mux(tag::UPDATE, session, &b)
                        } else if mux {
                            msg_mux_answer(session, ticket, &b)
                        } else {
                            let mut p = Vec::with_capacity(1 + b.len());
                            p.push(tag::ANSWER);
                            p.extend_from_slice(&b);
                            p
                        };
                        send_locked(&ftx_a, &payload).is_ok()
                    }));
                    let ftx_p = Arc::clone(&ftx);
                    let probe_tx = ProbeTx::Sink(Box::new(move |r: ProbeReply| {
                        let reply = WireProbeReply {
                            admitted: r.admitted,
                            queue_depth: r.queue_depth,
                        };
                        let payload = if mux {
                            let inner = wire::encode_frame_as(&reply, encoding);
                            msg_mux(tag::PROBE_REPLY_MUX, session, &inner)
                        } else {
                            msg(tag::PROBE_REPLY, &reply, encoding)
                        };
                        send_locked(&ftx_p, &payload).is_ok()
                    }));
                    worker.deliver(ToCloud::Register {
                        session,
                        link: r.link,
                        resp_tx,
                        probe_tx,
                    })
                }
                Err(_) => false,
            },
            tag::SUBMIT => match wire::decode_frame_as::<WireSubmit>(&inner, encoding) {
                Ok(s) => match workers.get_mut(&s.header.session) {
                    Some(w) => w.deliver(ToCloud::Frame(s.header, Arc::new(s.scene))),
                    None => false,
                },
                Err(_) => false,
            },
            tag::PROBE => match wire::decode_frame_as::<WireProbe>(&inner, encoding) {
                Ok(p) => match workers.get_mut(&p.session) {
                    Some(w) => w.deliver(ToCloud::Probe {
                        session: p.session,
                        now: p.now,
                    }),
                    None => false,
                },
                Err(_) => false,
            },
            tag::FLUSH => {
                if inner.is_empty() {
                    // Legacy body-less flush: flush every session on this
                    // connection (a legacy connection carries exactly one).
                    workers
                        .iter_mut()
                        .all(|(s, w)| w.deliver(ToCloud::Flush { session: *s }))
                } else {
                    match wire::decode_frame_as::<WireFlush>(&inner, encoding) {
                        Ok(fl) => match workers.get_mut(&fl.session) {
                            Some(w) => w.deliver(ToCloud::Flush {
                                session: fl.session,
                            }),
                            None => false,
                        },
                        Err(_) => false,
                    }
                }
            }
            tag::DEREGISTER => match wire::decode_frame_as::<WireDeregister>(&inner, encoding) {
                Ok(d) => match workers.get_mut(&d.session) {
                    Some(w) => w.deliver(ToCloud::Deregister { session: d.session }),
                    None => false,
                },
                Err(_) => false,
            },
            tag::BYE => {
                clean = true;
                false
            }
            _ => false,
        };
        if !ok {
            break;
        }
    }
    outcome.clean = clean;
    outcome.sessions = workers.len();
    let mut merged: Option<CloudStats> = None;
    for (_, w) in workers {
        let stats = match w {
            SessionExec::Inline(m) => Some(m.finish()),
            SessionExec::Threaded(w) => {
                let _ = w.ctx.send(ToCloud::Shutdown);
                drop(w.ctx);
                w.handle.join().ok()
            }
        };
        if let Some(stats) = stats {
            merge_cloud_stats(merged.get_or_insert_with(CloudStats::default), &stats);
        }
    }
    outcome.stats = merged;
    outcome
}

/// Runs a cloud node: accepts connections on `listener` and serves each on
/// its own handler thread (see [`serve_connection`]) until `stop` is set
/// (wake the accept loop with [`Listener::waker`]) or
/// [`ServeOptions::expect_sessions`] connections completed.
///
/// Returns the node's merged [`NodeStats`] after every handler finished.
pub fn serve(
    listener: &mut dyn Listener,
    config: &CloudConfig,
    big: &Arc<dyn Detector + Send + Sync>,
    opts: &ServeOptions,
    stop: &AtomicBool,
) -> NodeStats {
    if let Some(a) = &config.autoscale {
        a.assert_valid();
    }
    let waker = listener.waker();
    let agg = Mutex::new(NodeStats::default());
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => break,
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let (agg, completed, waker) = (&agg, &completed, &waker);
        scope.spawn(move || {
            let outcome = serve_connection(conn, config, big, opts);
            let counted = outcome.sessions;
            agg.lock()
                .unwrap_or_else(|e| e.into_inner())
                .absorb(outcome);
            if counted > 0 {
                let done = completed.fetch_add(counted, Ordering::SeqCst) + counted;
                if opts.expect_sessions.is_some_and(|n| done >= n) {
                    stop.store(true, Ordering::SeqCst);
                    waker();
                }
            }
        });
    });
    agg.into_inner().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pair_round_trips_frames() {
        let (a, b) = memory_pair();
        let (mut atx, _arx) = Box::new(a).split();
        let (_btx, mut brx) = Box::new(b).split();
        atx.send(b"hello frame").unwrap();
        let got = brx.recv().unwrap().unwrap();
        assert_eq!(&got[..], b"hello frame");
        drop(atx);
        assert!(brx.recv().unwrap().is_none());
    }

    #[test]
    fn memory_recv_timeout_times_out() {
        let (a, b) = memory_pair();
        let (_atx, _arx) = Box::new(a).split();
        let (_btx, mut brx) = Box::new(b).split();
        let err = brx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn tcp_loopback_round_trips_frames_across_splits() {
        let mut listener = TcpWireListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let (mut tx, mut rx) = conn.split();
            while let Some(frame) = rx.recv().unwrap() {
                tx.send(&frame).unwrap(); // echo
            }
        });
        let client = Box::new(TcpTransport::dial(&addr).unwrap());
        let (mut tx, mut rx) = client.split();
        for size in [0usize, 1, 7, 4096, 100_000] {
            let payload = vec![0xA5u8; size];
            tx.send(&payload).unwrap();
            let echoed = rx.recv().unwrap().unwrap();
            assert_eq!(&echoed[..], &payload[..]);
        }
        drop(tx);
        drop(rx);
        server.join().unwrap();
    }

    #[test]
    fn oversized_hello_is_refused_via_limit() {
        // An inner frame whose payload bursts MAX_HELLO_BYTES.
        let big = wire::encode_frame(&vec![7u8; 2 * MAX_HELLO_BYTES]);
        let mut payload = Vec::with_capacity(1 + big.len());
        payload.push(tag::HELLO);
        payload.extend_from_slice(&big);
        let refused = parse_hello(&Bytes::from(payload)).unwrap_err();
        assert_eq!(refused.reason, RefuseReason::OversizedHello);
    }

    #[test]
    fn bad_magic_and_bad_tag_are_refused() {
        let wrong_magic = msg(
            tag::HELLO,
            &Hello {
                magic: 0xdead_beef,
                protocol: PROTOCOL_VERSION,
                session: 0,
                encoding: None,
                mux: None,
            },
            Encoding::Json,
        );
        let refused = parse_hello(&Bytes::from(wrong_magic)).unwrap_err();
        assert_eq!(refused.reason, RefuseReason::BadMagic);

        let not_hello = msg(tag::SUBMIT, &7u32, Encoding::Json);
        let refused = parse_hello(&Bytes::from(not_hello)).unwrap_err();
        assert_eq!(refused.reason, RefuseReason::MalformedHello);
    }

    #[test]
    fn memory_transport_session_is_bit_identical_to_channel_path() {
        use crate::{CloudServer, DifficultCaseDiscriminator};
        use datagen::{Dataset, DatasetProfile, SplitId};
        use modelzoo::{ModelKind, SimDetector};

        let data = Dataset::generate("conf", &DatasetProfile::helmet(), 12, 9);
        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
        let big: Arc<dyn Detector + Send + Sync> =
            Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
        let cfg = SessionConfig {
            frame_size: (96, 96),
            ..SessionConfig::new(2)
        };

        // Channel path: a fresh server and one session (id 0).
        let mut cloud = CloudServer::spawn(CloudConfig::default(), Arc::clone(&big));
        let mut sess = cloud.connect(
            cfg.clone(),
            &small,
            Box::new(DifficultCaseDiscriminator::default()),
        );
        for scene in data.iter() {
            let t = sess.submit(scene);
            sess.poll(t).expect("frame resolves");
        }
        let want = sess.drain();
        drop(sess);
        let want_stats = cloud.shutdown();

        // The same session over the in-memory transport.
        let (mut listener, connector) = memory_listener();
        let config = CloudConfig::default();
        let big2 = Arc::clone(&big);
        let server = std::thread::spawn(move || {
            let opts = ServeOptions {
                expect_sessions: Some(1),
                ..ServeOptions::default()
            };
            let stop = AtomicBool::new(false);
            serve(&mut listener, &config, &big2, &opts, &stop)
        });
        let remote = RemoteCloud::connect(
            Box::new(connector.connect().unwrap()),
            0,
            ConnectOptions::default(),
        )
        .unwrap();
        let mut sess = remote.attach(cfg, &small, Box::new(DifficultCaseDiscriminator::default()));
        for scene in data.iter() {
            let t = sess.submit(scene);
            sess.poll(t).expect("frame resolves over transport");
        }
        let got = sess.drain();
        drop(sess);
        remote.close();
        let stats = server.join().unwrap();

        assert_eq!(got, want);
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.aborted, 0);
        assert_eq!(stats.cloud.served, want_stats.served);
    }

    #[test]
    fn encoding_negotiation_covers_fallback_and_corruption() {
        let hello = |enc: Option<&str>, mux: Option<bool>| Hello {
            magic: HELLO_MAGIC,
            protocol: PROTOCOL_VERSION,
            session: 0,
            encoding: enc.map(str::to_string),
            mux,
        };
        let welcome = |enc: Option<&str>, mux: Option<bool>| Welcome {
            protocol: PROTOCOL_VERSION,
            session: 0,
            admission: false,
            encoding: enc.map(str::to_string),
            mux,
        };

        // Matching offers stick; an old cloud (no field) means JSON no
        // matter what the edge asked for.
        let h = hello(Some("binary"), None);
        assert_eq!(
            negotiated_encoding(&h, &welcome(Some("binary"), None)).unwrap(),
            Encoding::Binary
        );
        assert_eq!(
            negotiated_encoding(&h, &welcome(None, None)).unwrap(),
            Encoding::Json
        );
        // A cloud may decline binary down to JSON, but never invent an
        // encoding the edge did not offer, nor name an unknown one.
        assert_eq!(
            negotiated_encoding(&h, &welcome(Some("json"), None)).unwrap(),
            Encoding::Json
        );
        let old_edge = hello(None, None);
        assert!(matches!(
            negotiated_encoding(&old_edge, &welcome(Some("binary"), None)),
            Err(HandshakeError::Encoding { .. })
        ));
        assert!(matches!(
            negotiated_encoding(&h, &welcome(Some("zstd"), None)),
            Err(HandshakeError::Encoding { .. })
        ));

        // Mux needs both sides to say yes explicitly.
        assert!(negotiated_mux(
            &hello(None, Some(true)),
            &welcome(None, Some(true))
        ));
        assert!(!negotiated_mux(
            &hello(None, Some(true)),
            &welcome(None, None)
        ));
        assert!(!negotiated_mux(
            &hello(None, None),
            &welcome(None, Some(true))
        ));
    }

    #[test]
    fn version_mismatch_surfaces_as_typed_error() {
        let (mut listener, connector) = memory_listener();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let (tx, mut rx) = conn.split();
            let ftx = Arc::new(Mutex::new(tx));
            let first = rx.recv().unwrap().unwrap();
            let refused = parse_hello(&first).unwrap_err();
            assert_eq!(refused.reason, RefuseReason::Version);
            send_locked(&ftx, &msg(tag::REFUSED, &refused, Encoding::Json)).unwrap();
        });
        let conn: Box<dyn Transport> = Box::new(connector.connect().unwrap());
        let (mut tx, mut rx) = conn.split();
        let hello = Hello {
            magic: HELLO_MAGIC,
            protocol: 999,
            session: 3,
            encoding: None,
            mux: None,
        };
        let err = client_handshake(&mut *tx, &mut *rx, &hello, Duration::from_secs(5)).unwrap_err();
        match err {
            HandshakeError::VersionMismatch { server, client } => {
                assert_eq!(server, PROTOCOL_VERSION);
                assert_eq!(client, 999);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        server.join().unwrap();
    }
}
