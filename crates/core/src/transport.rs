//! Process-separated deployment: wire transports, handshake, and the
//! cloud-node / edge-node halves of a real distributed system.
//!
//! The streaming runtime ([`crate::CloudServer`] / [`crate::EdgeSession`])
//! runs edge and cloud in one process behind channels. This module carries
//! the *same* session layer over a real connection:
//!
//! * [`Transport`] / [`Listener`] — object-safe connection traits. Two
//!   implementations ship: an in-memory duplex ([`memory_listener`],
//!   [`memory_pair`]) for deterministic tests, and length-framed TCP over
//!   `std::net` ([`TcpTransport`], [`TcpWireListener`]) for real
//!   deployments.
//! * A versioned handshake — the edge opens with [`Hello`] (magic +
//!   [`PROTOCOL_VERSION`] + its session id), the cloud answers [`Welcome`]
//!   or [`Refused`]; failures surface as typed [`HandshakeError`]s. A
//!   hostile `Hello` cannot drive allocation: the cloud decodes it with
//!   [`crate::wire::decode_frame_with_limit`] under [`MAX_HELLO_BYTES`].
//! * [`RemoteCloud`] — the edge-side bridge. It speaks the session layer's
//!   own channel protocol, so [`RemoteCloud::attach`] returns a completely
//!   ordinary [`EdgeSession`]: the session code path is byte-for-byte the
//!   in-process one, which is what makes transport reports bit-identical
//!   to the channel path by construction.
//! * [`serve`] / [`serve_connection`] — the cloud side. **Each accepted
//!   connection gets its own dedicated cloud worker** (shared-nothing
//!   sharding): a session's results are then a pure function of its own
//!   frame stream, so a multi-process fleet is bit-identical to the same
//!   sessions run in-process — regardless of how the OS interleaves the
//!   processes. Per-worker [`CloudStats`] merge into a [`NodeStats`].
//! * Reconnect-with-backoff riding [`simnet::RetryConfig`]: give
//!   [`ConnectOptions::dialer`] a redial closure and a dropped connection
//!   is re-established with wall-clock backoff, the session re-registered
//!   and every unanswered frame replayed. Exhausted retries poison the
//!   connection so a waiting session fails loudly instead of hanging.
//!
//! ## Wire layout
//!
//! Every transport frame's payload is `[1 tag byte][standard wire frame]`,
//! where the inner frame is [`crate::wire`]'s length-prefixed JSON. Answers
//! travel as the cloud worker's already-encoded response frames, forwarded
//! opaquely — the edge decodes exactly the bytes the worker produced.

use crate::server::{cloud_loop, ProbeReply, SubmitRequest, SubmitResponse, ToCloud};
use crate::wire::{self, FrameReader, WireError};
use crate::{CloudConfig, CloudStats, EdgeSession, OffloadPolicy, SessionConfig};
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use datagen::Scene;
use modelzoo::Detector;
use serde::{Deserialize, Serialize};
use simnet::{LinkModel, RetryConfig};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Version of the edge↔cloud wire protocol spoken by this build.
pub const PROTOCOL_VERSION: u16 = 1;

/// Maximum accepted [`Hello`] payload. A handshake message is tiny; this
/// bound lets the cloud reject an oversized (hostile) hello before its
/// payload is ever parsed.
pub const MAX_HELLO_BYTES: usize = 4096;

/// Magic number opening every [`Hello`] (`"SMBG"`).
pub const HELLO_MAGIC: u32 = 0x534d_4247;

/// How often the edge's inbound pump wakes to check connection liveness.
const IN_PUMP_TICK: Duration = Duration::from_millis(500);

mod tag {
    pub const HELLO: u8 = 1;
    pub const WELCOME: u8 = 2;
    pub const REFUSED: u8 = 3;
    pub const REGISTER: u8 = 4;
    pub const SUBMIT: u8 = 5;
    pub const PROBE: u8 = 6;
    pub const PROBE_REPLY: u8 = 7;
    pub const FLUSH: u8 = 8;
    pub const DEREGISTER: u8 = 9;
    pub const ANSWER: u8 = 10;
    pub const BYE: u8 = 11;
}

// ---------------------------------------------------------------------------
// Handshake messages
// ---------------------------------------------------------------------------

/// The first message on every connection (edge → cloud).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hello {
    /// Must be [`HELLO_MAGIC`].
    pub magic: u32,
    /// Protocol version the edge speaks ([`PROTOCOL_VERSION`]).
    pub protocol: u16,
    /// Session id the edge proposes for itself — chosen by the deployment
    /// so reports are comparable across runs and transports.
    pub session: u64,
}

/// The cloud's acceptance reply to a [`Hello`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Welcome {
    /// Protocol version the cloud speaks (echoes the hello's on success).
    pub protocol: u16,
    /// Session id echoed back.
    pub session: u64,
    /// Whether this cloud runs admission control
    /// ([`CloudConfig::queue_limit`]) — the edge must probe before
    /// uploading when set.
    pub admission: bool,
}

/// Why a cloud refused a [`Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefuseReason {
    /// Protocol version mismatch.
    Version,
    /// The hello's magic number was wrong (not a smallbig peer).
    BadMagic,
    /// The hello exceeded [`MAX_HELLO_BYTES`].
    OversizedHello,
    /// The hello did not decode as a [`Hello`] frame.
    MalformedHello,
}

/// The cloud's rejection reply to a [`Hello`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Refused {
    /// Protocol version the cloud speaks.
    pub server_protocol: u16,
    /// Machine-readable rejection reason.
    pub reason: RefuseReason,
    /// Human-readable detail.
    pub detail: String,
}

/// A handshake that did not produce a [`Welcome`].
#[derive(Debug)]
pub enum HandshakeError {
    /// The two peers speak different protocol versions.
    VersionMismatch {
        /// Version the cloud speaks.
        server: u16,
        /// Version this edge offered.
        client: u16,
    },
    /// The cloud refused the hello for a non-version reason.
    Refused {
        /// Machine-readable rejection reason.
        reason: RefuseReason,
        /// Human-readable detail from the cloud.
        detail: String,
    },
    /// No reply arrived within the handshake timeout.
    Timeout,
    /// The connection closed before any reply.
    Closed,
    /// The peer replied with something that is not a handshake message.
    Protocol(String),
    /// The connection failed at the I/O layer.
    Io(io::Error),
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::VersionMismatch { server, client } => {
                write!(
                    f,
                    "protocol version mismatch: server v{server}, client v{client}"
                )
            }
            HandshakeError::Refused { reason, detail } => {
                write!(f, "cloud refused handshake ({reason:?}): {detail}")
            }
            HandshakeError::Timeout => write!(f, "handshake timed out"),
            HandshakeError::Closed => write!(f, "connection closed during handshake"),
            HandshakeError::Protocol(d) => write!(f, "handshake protocol error: {d}"),
            HandshakeError::Io(e) => write!(f, "handshake I/O error: {e}"),
        }
    }
}

impl std::error::Error for HandshakeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HandshakeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Data-plane messages (private: the session layer never sees them)
// ---------------------------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct WireRegister {
    session: u64,
    link: LinkModel,
}

#[derive(Serialize, Deserialize)]
struct WireSubmit {
    header: SubmitRequest,
    scene: Scene,
}

#[derive(Serialize, Deserialize)]
struct WireProbe {
    session: u64,
    now: f64,
}

#[derive(Serialize, Deserialize)]
struct WireProbeReply {
    admitted: bool,
    queue_depth: usize,
}

#[derive(Serialize, Deserialize)]
struct WireDeregister {
    session: u64,
}

fn msg<T: Serialize>(t: u8, body: &T) -> Vec<u8> {
    let inner = wire::encode_frame(body);
    let mut payload = Vec::with_capacity(1 + inner.len());
    payload.push(t);
    payload.extend_from_slice(&inner);
    payload
}

fn msg_bare(t: u8) -> Vec<u8> {
    vec![t]
}

fn split_msg(payload: &Bytes) -> Option<(u8, Bytes)> {
    if payload.is_empty() {
        return None;
    }
    Some((payload[0], payload.slice(1..)))
}

// ---------------------------------------------------------------------------
// Transport traits
// ---------------------------------------------------------------------------

/// The sending half of a split [`Transport`]: ships one opaque payload as
/// one frame.
pub trait FrameTx: Send {
    /// Sends one frame; the peer's [`FrameRx::recv`] yields exactly
    /// `payload`.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the connection is gone.
    fn send(&mut self, payload: &[u8]) -> io::Result<()>;
}

/// The receiving half of a split [`Transport`].
pub trait FrameRx: Send {
    /// Blocks for the next frame; `Ok(None)` is a clean end-of-stream.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] on connection failure or framing
    /// corruption.
    fn recv(&mut self) -> io::Result<Option<Bytes>>;

    /// Like [`FrameRx::recv`] but gives up after `timeout` with an error of
    /// kind [`io::ErrorKind::TimedOut`]. Partially received frames stay
    /// buffered for the next call.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] of kind [`io::ErrorKind::TimedOut`] on
    /// expiry, or any other kind on connection failure.
    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Bytes>>;
}

/// One bidirectional connection carrying opaque frames.
///
/// Object safe: the cloud accepts `Box<dyn Transport>` and never knows
/// whether frames cross a socket or a channel.
pub trait Transport: Send {
    /// Splits the connection into independently owned halves, so sending
    /// and receiving can run on different threads.
    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>);

    /// Human-readable peer name, for diagnostics.
    fn peer(&self) -> String;
}

/// Accepts inbound [`Transport`] connections (the cloud side).
pub trait Listener: Send {
    /// Blocks for the next inbound connection.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the listener can no longer accept.
    fn accept(&mut self) -> io::Result<Box<dyn Transport>>;

    /// The address peers dial, as a string (for TCP, `ip:port` with the
    /// real bound port).
    fn local_addr(&self) -> String;

    /// A handle that unblocks a pending [`Listener::accept`] by delivering
    /// a throwaway connection — how [`serve`] is shut down.
    fn waker(&self) -> Box<dyn Fn() + Send + Sync>;
}

// ---------------------------------------------------------------------------
// In-memory transport
// ---------------------------------------------------------------------------

/// One end of an in-memory duplex connection (see [`memory_pair`] and
/// [`memory_listener`]).
pub struct MemoryTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

/// Creates a connected pair of in-memory transports.
pub fn memory_pair() -> (MemoryTransport, MemoryTransport) {
    let (a_tx, b_rx) = channel::unbounded();
    let (b_tx, a_rx) = channel::unbounded();
    (
        MemoryTransport { tx: a_tx, rx: a_rx },
        MemoryTransport { tx: b_tx, rx: b_rx },
    )
}

struct MemoryTx {
    tx: Sender<Bytes>,
}

impl FrameTx for MemoryTx {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        self.tx
            .send(Bytes::copy_from_slice(payload))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))
    }
}

struct MemoryRx {
    rx: Receiver<Bytes>,
}

impl FrameRx for MemoryRx {
    fn recv(&mut self) -> io::Result<Option<Bytes>> {
        match self.rx.recv() {
            Ok(b) => Ok(Some(b)),
            Err(_) => Ok(None),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Bytes>> {
        match self.rx.recv_timeout(timeout) {
            Ok(b) => Ok(Some(b)),
            Err(RecvTimeoutError::Timeout) => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "frame read timed out",
            )),
            Err(RecvTimeoutError::Disconnected) => Ok(None),
        }
    }
}

impl Transport for MemoryTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>) {
        let this = *self;
        (
            Box::new(MemoryTx { tx: this.tx }),
            Box::new(MemoryRx { rx: this.rx }),
        )
    }

    fn peer(&self) -> String {
        "memory".to_string()
    }
}

/// The accepting side of an in-memory "network" (see [`memory_listener`]).
pub struct MemoryWireListener {
    rx: Receiver<MemoryTransport>,
    tx: Sender<MemoryTransport>,
}

/// Dials new connections into a [`MemoryWireListener`]; clone one per edge.
#[derive(Clone)]
pub struct MemoryConnector {
    tx: Sender<MemoryTransport>,
}

impl MemoryConnector {
    /// Opens a new in-memory connection to the listener.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::ConnectionRefused`] when the listener is
    /// gone.
    pub fn connect(&self) -> io::Result<MemoryTransport> {
        let (local, remote) = memory_pair();
        self.tx
            .send(remote)
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionRefused, "listener dropped"))?;
        Ok(local)
    }
}

/// Creates an in-memory listener and a connector that dials it.
pub fn memory_listener() -> (MemoryWireListener, MemoryConnector) {
    let (tx, rx) = channel::unbounded();
    (
        MemoryWireListener { rx, tx: tx.clone() },
        MemoryConnector { tx },
    )
}

impl Listener for MemoryWireListener {
    fn accept(&mut self) -> io::Result<Box<dyn Transport>> {
        match self.rx.recv() {
            Ok(t) => Ok(Box::new(t)),
            Err(_) => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "all connectors dropped",
            )),
        }
    }

    fn local_addr(&self) -> String {
        "memory".to_string()
    }

    fn waker(&self) -> Box<dyn Fn() + Send + Sync> {
        let tx = self.tx.clone();
        Box::new(move || {
            // Deliver a connection whose far end is already gone: a handler
            // that sees it reads immediate EOF and exits silently, and the
            // serve loop re-checks its stop flag.
            let (local, remote) = memory_pair();
            drop(local);
            let _ = tx.send(remote);
        })
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// A length-framed TCP connection (4-byte little-endian length prefix per
/// frame, decoded incrementally by [`FrameReader`]).
pub struct TcpTransport {
    stream: TcpStream,
    peer: String,
}

impl TcpTransport {
    /// Connects to `addr` (e.g. `"127.0.0.1:4820"`), with `TCP_NODELAY`.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn dial(addr: &str) -> io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            peer: addr.to_string(),
        })
    }

    /// Like [`TcpTransport::dial`], retrying with `retry`'s wall-clock
    /// backoff schedule (up to `max_retries` redials after the initial
    /// attempt) — lets an edge-node start before its cloud-node.
    ///
    /// # Errors
    ///
    /// Returns the final connect error once the schedule is exhausted.
    pub fn dial_with_backoff(addr: &str, retry: &RetryConfig) -> io::Result<TcpTransport> {
        let mut last = None;
        for attempt in 0..=retry.max_retries {
            if attempt > 0 {
                std::thread::sleep(Duration::from_secs_f64(retry.backoff_s(attempt)));
            }
            match TcpTransport::dial(addr) {
                Ok(t) => return Ok(t),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no dial attempts configured")))
    }

    fn from_stream(stream: TcpStream) -> io::Result<TcpTransport> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp-peer".to_string());
        Ok(TcpTransport { stream, peer })
    }
}

struct TcpTx {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameTx for TcpTx {
    fn send(&mut self, payload: &[u8]) -> io::Result<()> {
        self.buf.clear();
        self.buf.reserve(4 + payload.len());
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.stream.write_all(&self.buf)
    }
}

struct TcpRx {
    stream: TcpStream,
    reader: FrameReader,
    chunk: Vec<u8>,
}

impl TcpRx {
    fn pull(&mut self) -> io::Result<Option<Bytes>> {
        loop {
            if let Some(p) = self
                .reader
                .next_frame()
                .map_err(|e: WireError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            {
                return Ok(Some(p));
            }
            let n = self.stream.read(&mut self.chunk)?;
            if n == 0 {
                return if self.reader.pending_bytes() == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                };
            }
            self.reader.feed(&self.chunk[..n]);
        }
    }
}

impl FrameRx for TcpRx {
    fn recv(&mut self) -> io::Result<Option<Bytes>> {
        self.pull()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Bytes>> {
        self.stream.set_read_timeout(Some(timeout))?;
        let res = self.pull();
        let _ = self.stream.set_read_timeout(None);
        match res {
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "frame read timed out",
                ))
            }
            other => other,
        }
    }
}

impl Transport for TcpTransport {
    fn split(self: Box<Self>) -> (Box<dyn FrameTx>, Box<dyn FrameRx>) {
        let this = *self;
        let read_half = this
            .stream
            .try_clone()
            .expect("cloning a TCP stream handle never fails on supported platforms");
        (
            Box::new(TcpTx {
                stream: this.stream,
                buf: Vec::new(),
            }),
            Box::new(TcpRx {
                stream: read_half,
                reader: FrameReader::new(),
                chunk: vec![0u8; 64 * 1024],
            }),
        )
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// A TCP [`Listener`] bound to a local address.
pub struct TcpWireListener {
    inner: TcpListener,
    addr: String,
}

impl TcpWireListener {
    /// Binds to `addr`; pass port `0` to let the OS choose (read the real
    /// port back from [`Listener::local_addr`]).
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn bind(addr: &str) -> io::Result<TcpWireListener> {
        let inner = TcpListener::bind(addr)?;
        let addr = inner.local_addr()?.to_string();
        Ok(TcpWireListener { inner, addr })
    }
}

impl Listener for TcpWireListener {
    fn accept(&mut self) -> io::Result<Box<dyn Transport>> {
        let (stream, _) = self.inner.accept()?;
        Ok(Box::new(TcpTransport::from_stream(stream)?))
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }

    fn waker(&self) -> Box<dyn Fn() + Send + Sync> {
        let addr = self.addr.clone();
        Box::new(move || {
            // A throwaway connection that closes before sending anything:
            // the hello timeout (or immediate EOF) disposes of it silently.
            let _ = TcpStream::connect(&addr);
        })
    }
}

// ---------------------------------------------------------------------------
// Client handshake
// ---------------------------------------------------------------------------

/// Runs the client half of the handshake on a split transport: sends
/// `hello`, awaits [`Welcome`] or [`Refused`].
///
/// [`RemoteCloud::connect`] calls this internally; it is public so tests
/// and custom deployments can drive the handshake directly (e.g. with a
/// non-standard protocol version).
///
/// # Errors
///
/// Returns a typed [`HandshakeError`]; version rejections surface as
/// [`HandshakeError::VersionMismatch`].
pub fn client_handshake(
    tx: &mut dyn FrameTx,
    rx: &mut dyn FrameRx,
    hello: &Hello,
    timeout: Duration,
) -> Result<Welcome, HandshakeError> {
    tx.send(&msg(tag::HELLO, hello))
        .map_err(HandshakeError::Io)?;
    let frame = match rx.recv_timeout(timeout) {
        Ok(Some(f)) => f,
        Ok(None) => return Err(HandshakeError::Closed),
        Err(e) if e.kind() == io::ErrorKind::TimedOut => return Err(HandshakeError::Timeout),
        Err(e) => return Err(HandshakeError::Io(e)),
    };
    let Some((t, inner)) = split_msg(&frame) else {
        return Err(HandshakeError::Protocol("empty reply to hello".to_string()));
    };
    match t {
        tag::WELCOME => {
            let w: Welcome =
                wire::decode_frame(&inner).map_err(|e| HandshakeError::Protocol(e.to_string()))?;
            if w.protocol != hello.protocol {
                return Err(HandshakeError::VersionMismatch {
                    server: w.protocol,
                    client: hello.protocol,
                });
            }
            Ok(w)
        }
        tag::REFUSED => {
            let r: Refused =
                wire::decode_frame(&inner).map_err(|e| HandshakeError::Protocol(e.to_string()))?;
            match r.reason {
                RefuseReason::Version => Err(HandshakeError::VersionMismatch {
                    server: r.server_protocol,
                    client: hello.protocol,
                }),
                reason => Err(HandshakeError::Refused {
                    reason,
                    detail: r.detail,
                }),
            }
        }
        other => Err(HandshakeError::Protocol(format!(
            "unexpected reply tag {other}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Edge side: RemoteCloud
// ---------------------------------------------------------------------------

/// A redial closure for mid-run reconnection (see
/// [`ConnectOptions::dialer`]).
pub type Dialer = Box<dyn FnMut() -> io::Result<Box<dyn Transport>> + Send>;

/// Options for [`RemoteCloud::connect`].
pub struct ConnectOptions {
    /// How long to wait for the cloud's handshake reply (default 5 s).
    pub handshake_timeout: Duration,
    /// Wall-clock backoff schedule for mid-run reconnects.
    pub retry: RetryConfig,
    /// Redial closure. `None` (the default) disables mid-run reconnection:
    /// the first connection failure poisons the link and a waiting session
    /// fails loudly. With `Some`, a dropped connection is redialed with
    /// [`ConnectOptions::retry`]'s backoff, the handshake re-run, the
    /// session re-registered and unanswered frames replayed.
    pub dialer: Option<Dialer>,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            handshake_timeout: Duration::from_secs(5),
            retry: RetryConfig::default(),
            dialer: None,
        }
    }
}

enum Pending {
    Submit { ticket: u64, payload: Vec<u8> },
    Probe { payload: Vec<u8> },
}

impl Pending {
    fn payload(&self) -> &[u8] {
        match self {
            Pending::Submit { payload, .. } | Pending::Probe { payload } => payload,
        }
    }
}

struct ConnState {
    generation: u64,
    dialer: Option<Dialer>,
    retry: RetryConfig,
    hello: Hello,
    handshake_timeout: Duration,
    /// Encoded REGISTER payload, replayed on every reconnect.
    register: Option<Vec<u8>>,
    /// Unanswered submits/probes in send order, replayed on reconnect.
    pending: VecDeque<Pending>,
    fresh_tx: Option<Box<dyn FrameTx>>,
    fresh_rx: Option<Box<dyn FrameRx>>,
    resp_tx: Option<Sender<Bytes>>,
    probe_tx: Option<Sender<ProbeReply>>,
    dead: bool,
}

struct ConnShared {
    state: Mutex<ConnState>,
}

impl ConnShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, ConnState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn generation(&self) -> u64 {
        self.lock().generation
    }

    fn is_dead(&self) -> bool {
        self.lock().dead
    }

    fn mark_dead(&self) {
        self.lock().dead = true;
    }

    fn clear_session_handles(&self) {
        let mut st = self.lock();
        st.resp_tx = None;
        st.probe_tx = None;
    }

    fn set_register(
        &self,
        payload: Vec<u8>,
        resp_tx: Sender<Bytes>,
        probe_tx: Sender<ProbeReply>,
    ) -> u64 {
        let mut st = self.lock();
        st.register = Some(payload);
        st.resp_tx = Some(resp_tx);
        st.probe_tx = Some(probe_tx);
        st.generation
    }

    fn push_pending(&self, p: Pending) -> u64 {
        let mut st = self.lock();
        st.pending.push_back(p);
        st.generation
    }

    /// Removes the pending submit with `ticket`. Returns whether it was
    /// present (a duplicate replayed answer is dropped) and the session's
    /// response channel.
    fn take_submit(&self, ticket: u64) -> (bool, Option<Sender<Bytes>>) {
        let mut st = self.lock();
        let idx = st
            .pending
            .iter()
            .position(|p| matches!(p, Pending::Submit { ticket: t, .. } if *t == ticket));
        if let Some(i) = idx {
            st.pending.remove(i);
        }
        (idx.is_some(), st.resp_tx.clone())
    }

    fn take_probe(&self) -> (bool, Option<Sender<ProbeReply>>) {
        let mut st = self.lock();
        let idx = st
            .pending
            .iter()
            .position(|p| matches!(p, Pending::Probe { .. }));
        if let Some(i) = idx {
            st.pending.remove(i);
        }
        (idx.is_some(), st.probe_tx.clone())
    }

    fn reacquire_tx(&self, seen: u64) -> Option<(Box<dyn FrameTx>, u64)> {
        let mut st = self.lock();
        loop {
            if st.dead {
                return None;
            }
            if st.generation > seen {
                if let Some(t) = st.fresh_tx.take() {
                    return Some((t, st.generation));
                }
            }
            if !reconnect_locked(&mut st) {
                return None;
            }
        }
    }

    fn reacquire_rx(&self, seen: u64) -> Option<(Box<dyn FrameRx>, u64)> {
        let mut st = self.lock();
        loop {
            if st.dead {
                return None;
            }
            if st.generation > seen {
                if let Some(r) = st.fresh_rx.take() {
                    return Some((r, st.generation));
                }
            }
            if !reconnect_locked(&mut st) {
                return None;
            }
        }
    }
}

/// Redials, re-handshakes, re-registers and replays pending frames, with
/// wall-clock backoff. Runs under the connection lock: the other pump
/// blocks in its own reacquire until the outcome is decided. On success
/// both fresh halves are stored and the generation advances; on exhausted
/// retries the connection is poisoned.
fn reconnect_locked(st: &mut ConnState) -> bool {
    if st.dialer.is_none() {
        st.dead = true;
        return false;
    }
    let retry = st.retry;
    let hello = st.hello.clone();
    let hs_timeout = st.handshake_timeout;
    for attempt in 0..=retry.max_retries {
        if attempt > 0 {
            std::thread::sleep(Duration::from_secs_f64(retry.backoff_s(attempt)));
        }
        let dialed = st.dialer.as_mut().expect("checked above")();
        let Ok(t) = dialed else { continue };
        let (mut ntx, mut nrx) = t.split();
        if client_handshake(&mut *ntx, &mut *nrx, &hello, hs_timeout).is_err() {
            continue;
        }
        let mut ok = true;
        if let Some(reg) = &st.register {
            ok &= ntx.send(reg).is_ok();
        }
        let mut replayed_submit = false;
        for p in &st.pending {
            ok &= ntx.send(p.payload()).is_ok();
            replayed_submit |= matches!(p, Pending::Submit { .. });
        }
        // The session's Flush went to the dead worker; re-issue it so the
        // fresh worker dispatches the replayed frames.
        if ok && replayed_submit {
            ok &= ntx.send(&msg_bare(tag::FLUSH)).is_ok();
        }
        if !ok {
            continue;
        }
        st.fresh_tx = Some(ntx);
        st.fresh_rx = Some(nrx);
        st.generation += 1;
        return true;
    }
    st.dead = true;
    false
}

/// Sends `payload`, transparently swapping to a reconnected link. For
/// pending-tracked payloads (`push_gen` is `Some`), a generation newer than
/// the push generation means a replay already delivered it.
fn send_msg(
    ftx: &mut Box<dyn FrameTx>,
    local_gen: &mut u64,
    payload: &[u8],
    push_gen: Option<u64>,
    shared: &ConnShared,
) -> bool {
    loop {
        // If the inbound pump already reconnected, stop writing into the
        // dead link (a buffered send could "succeed" and lose the frame).
        if shared.generation() > *local_gen {
            match shared.reacquire_tx(*local_gen) {
                Some((t, g)) => {
                    *ftx = t;
                    *local_gen = g;
                    if push_gen.is_some_and(|pg| g > pg) {
                        return true;
                    }
                }
                None => return false,
            }
        }
        if ftx.send(payload).is_ok() {
            return true;
        }
        match shared.reacquire_tx(*local_gen) {
            Some((t, g)) => {
                *ftx = t;
                *local_gen = g;
                if push_gen.is_some_and(|pg| g > pg) {
                    return true;
                }
            }
            None => return false,
        }
    }
}

fn out_pump(mut ftx: Box<dyn FrameTx>, rx: Receiver<ToCloud>, shared: Arc<ConnShared>) {
    let mut local_gen = shared.generation();
    while let Ok(item) = rx.recv() {
        let (payload, push_gen) = match item {
            ToCloud::Register {
                session,
                link,
                resp_tx,
                probe_tx,
            } => {
                let p = msg(tag::REGISTER, &WireRegister { session, link });
                let g = shared.set_register(p.clone(), resp_tx, probe_tx);
                (p, Some(g))
            }
            ToCloud::Frame(header, scene) => {
                let Ok(req) = wire::decode_frame::<SubmitRequest>(&header) else {
                    break;
                };
                let ticket = req.ticket;
                let p = msg(
                    tag::SUBMIT,
                    &WireSubmit {
                        header: req,
                        scene: (*scene).clone(),
                    },
                );
                let g = shared.push_pending(Pending::Submit {
                    ticket,
                    payload: p.clone(),
                });
                (p, Some(g))
            }
            ToCloud::Probe { session, now } => {
                let p = msg(tag::PROBE, &WireProbe { session, now });
                let g = shared.push_pending(Pending::Probe { payload: p.clone() });
                (p, Some(g))
            }
            ToCloud::Flush => (msg_bare(tag::FLUSH), None),
            ToCloud::Deregister { session } => {
                (msg(tag::DEREGISTER, &WireDeregister { session }), None)
            }
            ToCloud::Shutdown => break,
        };
        if !send_msg(&mut ftx, &mut local_gen, &payload, push_gen, &shared) {
            break;
        }
    }
    // All senders gone (session and handle dropped) or the link is poisoned:
    // close politely and stop the inbound pump. Mark dead BEFORE the `BYE`
    // goes out: the server closes the socket once it reads the `BYE`, and
    // the inbound pump must already see the dead flag when that EOF lands —
    // otherwise it would treat the clean close as a mid-run drop and
    // spuriously reconnect.
    shared.mark_dead();
    let _ = ftx.send(&msg_bare(tag::BYE));
}

fn handle_inbound(frame: &Bytes, shared: &ConnShared) -> bool {
    let Some((t, inner)) = split_msg(frame) else {
        return false;
    };
    match t {
        tag::ANSWER => {
            let Ok(resp) = wire::decode_frame::<SubmitResponse>(&inner) else {
                return false;
            };
            let (known, tx) = shared.take_submit(resp.ticket);
            if known {
                if let Some(tx) = tx {
                    return tx.send(inner).is_ok();
                }
            }
            true
        }
        tag::PROBE_REPLY => {
            let Ok(r) = wire::decode_frame::<WireProbeReply>(&inner) else {
                return false;
            };
            let (known, tx) = shared.take_probe();
            if known {
                if let Some(tx) = tx {
                    return tx
                        .send(ProbeReply {
                            admitted: r.admitted,
                            queue_depth: r.queue_depth,
                        })
                        .is_ok();
                }
            }
            true
        }
        _ => true,
    }
}

fn in_pump(mut frx: Box<dyn FrameRx>, shared: Arc<ConnShared>) {
    let mut local_gen = shared.generation();
    loop {
        match frx.recv_timeout(IN_PUMP_TICK) {
            Ok(Some(frame)) => {
                if !handle_inbound(&frame, &shared) {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                if shared.is_dead() {
                    break;
                }
                if shared.generation() > local_gen {
                    match shared.reacquire_rx(local_gen) {
                        Some((r, g)) => {
                            frx = r;
                            local_gen = g;
                        }
                        None => break,
                    }
                }
            }
            Ok(None) | Err(_) => match shared.reacquire_rx(local_gen) {
                Some((r, g)) => {
                    frx = r;
                    local_gen = g;
                }
                None => break,
            },
        }
    }
    // Poison: a session still waiting on an answer must fail loudly (its
    // response channel disconnects) instead of hanging forever.
    shared.clear_session_handles();
    shared.mark_dead();
}

/// The edge side of a transport connection: bridges a real [`EdgeSession`]
/// onto a [`Transport`].
///
/// The bridge translates the session layer's channel messages to wire
/// frames on a pump thread and routes answers back, so a session attached
/// here runs byte-for-byte the in-process code path — reports over any
/// transport are bit-identical to the channel path.
///
/// Drop (or [`drain`](EdgeSession::drain) and drop) every attached session
/// before calling [`RemoteCloud::close`].
pub struct RemoteCloud {
    tx: Option<Sender<ToCloud>>,
    admission: bool,
    session: u64,
    out_handle: Option<JoinHandle<()>>,
    in_handle: Option<JoinHandle<()>>,
}

impl RemoteCloud {
    /// Performs the handshake on `transport` and starts the bridge pumps.
    ///
    /// # Errors
    ///
    /// Returns the typed [`HandshakeError`] when the cloud refuses or the
    /// connection fails before a welcome.
    pub fn connect(
        transport: Box<dyn Transport>,
        session: u64,
        opts: ConnectOptions,
    ) -> Result<RemoteCloud, HandshakeError> {
        let (mut ftx, mut frx) = transport.split();
        let hello = Hello {
            magic: HELLO_MAGIC,
            protocol: PROTOCOL_VERSION,
            session,
        };
        let welcome = client_handshake(&mut *ftx, &mut *frx, &hello, opts.handshake_timeout)?;
        let shared = Arc::new(ConnShared {
            state: Mutex::new(ConnState {
                generation: 0,
                dialer: opts.dialer,
                retry: opts.retry,
                hello,
                handshake_timeout: opts.handshake_timeout,
                register: None,
                pending: VecDeque::new(),
                fresh_tx: None,
                fresh_rx: None,
                resp_tx: None,
                probe_tx: None,
                dead: false,
            }),
        });
        let (tx, rx) = channel::unbounded::<ToCloud>();
        let sh_out = Arc::clone(&shared);
        let out_handle = std::thread::spawn(move || out_pump(ftx, rx, sh_out));
        let sh_in = Arc::clone(&shared);
        let in_handle = std::thread::spawn(move || in_pump(frx, sh_in));
        Ok(RemoteCloud {
            tx: Some(tx),
            admission: welcome.admission,
            session,
            out_handle: Some(out_handle),
            in_handle: Some(in_handle),
        })
    }

    /// Dials `addr` over TCP (with `retry` backoff for the initial
    /// connect), handshakes, and installs a redial closure so mid-run
    /// connection drops reconnect with the same schedule.
    ///
    /// # Errors
    ///
    /// Returns [`HandshakeError::Io`] when no connection could be made, or
    /// any other [`HandshakeError`] from the handshake itself.
    pub fn connect_tcp(
        addr: &str,
        session: u64,
        retry: &RetryConfig,
    ) -> Result<RemoteCloud, HandshakeError> {
        let t = TcpTransport::dial_with_backoff(addr, retry).map_err(HandshakeError::Io)?;
        let redial_addr = addr.to_string();
        let opts = ConnectOptions {
            retry: *retry,
            dialer: Some(Box::new(move || {
                TcpTransport::dial(&redial_addr).map(|t| Box::new(t) as Box<dyn Transport>)
            })),
            ..ConnectOptions::default()
        };
        RemoteCloud::connect(Box::new(t), session, opts)
    }

    /// Attaches an [`EdgeSession`] over this connection — the transport
    /// twin of [`crate::CloudServer::connect`], using the session id
    /// negotiated in the handshake.
    pub fn attach<'a>(
        &self,
        config: SessionConfig,
        small: &'a (dyn Detector + Sync),
        policy: Box<dyn OffloadPolicy + 'a>,
    ) -> EdgeSession<'a> {
        let tx = self
            .tx
            .clone()
            .expect("RemoteCloud::attach called after close");
        EdgeSession::attach(self.session, config, small, policy, tx, self.admission)
    }

    /// The session id negotiated in the handshake.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Whether the cloud requires admission probes
    /// ([`CloudConfig::queue_limit`] set on the serving side).
    pub fn admission(&self) -> bool {
        self.admission
    }

    /// Closes the connection (sends `BYE`) and joins the pump threads.
    /// All attached sessions must already be dropped.
    pub fn close(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.tx = None;
        if let Some(h) = self.out_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.in_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RemoteCloud {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

// ---------------------------------------------------------------------------
// Cloud side: serve
// ---------------------------------------------------------------------------

/// Options for [`serve`] / [`serve_connection`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// How long a fresh connection may take to send its [`Hello`] before
    /// the handler gives up (the half-open guard; default 5 s). The accept
    /// loop is never involved: handshakes run on per-connection threads.
    pub hello_timeout: Duration,
    /// Stop serving (set the stop flag and wake the accept loop) once this
    /// many registered connections have completed. `None` serves until the
    /// caller stops it.
    pub expect_sessions: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            hello_timeout: Duration::from_secs(5),
            expect_sessions: None,
        }
    }
}

/// What one connection handler observed (see [`serve_connection`]).
#[derive(Debug, Default)]
pub struct ConnOutcome {
    /// The connection's dedicated cloud worker stats (`None` when the
    /// handshake failed or the worker panicked).
    pub stats: Option<CloudStats>,
    /// Whether the peer registered a session.
    pub registered: bool,
    /// Whether the peer closed with a `BYE` (vs. vanishing mid-run).
    pub clean: bool,
    /// Whether the handshake was refused.
    pub refused: bool,
    /// Whether the peer never sent a hello within the timeout.
    pub hello_timed_out: bool,
}

/// Aggregate stats for one cloud node: per-connection worker stats merged,
/// plus connection accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Sum/max-merge of every connection worker's [`CloudStats`].
    pub cloud: CloudStats,
    /// Registered connections that completed (including aborted ones).
    pub connections: usize,
    /// Registered connections that vanished without a `BYE` (killed edge
    /// processes, mid-run reconnects).
    pub aborted: usize,
    /// Handshakes refused (version mismatch, oversized/malformed hello).
    pub refused: usize,
    /// Connections that never sent a hello within the timeout (half-open).
    pub hello_timeouts: usize,
}

impl NodeStats {
    /// Folds one connection's outcome into the node totals.
    pub fn absorb(&mut self, outcome: ConnOutcome) {
        if outcome.registered {
            self.connections += 1;
            if !outcome.clean {
                self.aborted += 1;
            }
        }
        if outcome.refused {
            self.refused += 1;
        }
        if outcome.hello_timed_out {
            self.hello_timeouts += 1;
        }
        if let Some(s) = outcome.stats {
            self.cloud.served += s.served;
            self.cloud.batches += s.batches;
            self.cloud.busy_s += s.busy_s;
            self.cloud.sessions += s.sessions;
            self.cloud.admission_rejects += s.admission_rejects;
            self.cloud.peak_workers = self.cloud.peak_workers.max(s.peak_workers);
            self.cloud.scale_changes += s.scale_changes;
        }
    }
}

fn send_locked(ftx: &Arc<Mutex<Box<dyn FrameTx>>>, payload: &[u8]) -> io::Result<()> {
    ftx.lock().unwrap_or_else(|e| e.into_inner()).send(payload)
}

fn parse_hello(first: &Bytes) -> Result<Hello, Refused> {
    let refuse = |reason, detail: String| Refused {
        server_protocol: PROTOCOL_VERSION,
        reason,
        detail,
    };
    let Some((t, inner)) = split_msg(first) else {
        return Err(refuse(
            RefuseReason::MalformedHello,
            "empty first frame".to_string(),
        ));
    };
    if t != tag::HELLO {
        return Err(refuse(
            RefuseReason::MalformedHello,
            format!("expected hello, got tag {t}"),
        ));
    }
    match wire::decode_frame_with_limit::<Hello>(&inner, MAX_HELLO_BYTES) {
        Err(WireError::Oversized(n)) => Err(refuse(
            RefuseReason::OversizedHello,
            format!("hello payload of {n} bytes exceeds {MAX_HELLO_BYTES}"),
        )),
        Err(e) => Err(refuse(RefuseReason::MalformedHello, e.to_string())),
        Ok(h) if h.magic != HELLO_MAGIC => Err(refuse(
            RefuseReason::BadMagic,
            format!("bad magic {:#x}", h.magic),
        )),
        Ok(h) if h.protocol != PROTOCOL_VERSION => Err(refuse(
            RefuseReason::Version,
            format!(
                "server speaks v{PROTOCOL_VERSION}, client offered v{}",
                h.protocol
            ),
        )),
        Ok(h) => Ok(h),
    }
}

/// Serves one accepted connection to completion: handshake, then a
/// dedicated cloud worker fed from the connection's frames.
///
/// The per-connection worker is what keeps a distributed fleet
/// deterministic: the worker's state depends only on this connection's
/// message order, never on how the OS interleaves other edges.
pub fn serve_connection(
    conn: Box<dyn Transport>,
    config: &CloudConfig,
    big: &Arc<dyn Detector + Send + Sync>,
    opts: &ServeOptions,
) -> ConnOutcome {
    let mut outcome = ConnOutcome::default();
    let (ftx, mut frx) = conn.split();
    let ftx = Arc::new(Mutex::new(ftx));

    let first = match frx.recv_timeout(opts.hello_timeout) {
        Ok(Some(f)) => f,
        Err(e) if e.kind() == io::ErrorKind::TimedOut => {
            outcome.hello_timed_out = true;
            return outcome;
        }
        Ok(None) | Err(_) => return outcome,
    };
    let hello = match parse_hello(&first) {
        Ok(h) => h,
        Err(refused) => {
            let _ = send_locked(&ftx, &msg(tag::REFUSED, &refused));
            outcome.refused = true;
            return outcome;
        }
    };
    let welcome = Welcome {
        protocol: PROTOCOL_VERSION,
        session: hello.session,
        admission: config.queue_limit.is_some(),
    };
    if send_locked(&ftx, &msg(tag::WELCOME, &welcome)).is_err() {
        return outcome;
    }

    if let Some(a) = &config.autoscale {
        a.assert_valid();
    }
    let (ctx, crx) = channel::unbounded::<ToCloud>();
    let cfg = config.clone();
    let big2 = Arc::clone(big);
    let sched = cfg.scheduler.build();
    let worker = std::thread::spawn(move || cloud_loop(&crx, &*big2, &cfg, sched));

    let mut forwarders: Vec<JoinHandle<()>> = Vec::new();
    let mut clean = false;
    while let Ok(Some(frame)) = frx.recv() {
        let Some((t, inner)) = split_msg(&frame) else {
            break;
        };
        let ok = match t {
            tag::REGISTER => match wire::decode_frame::<WireRegister>(&inner) {
                Ok(r) => {
                    outcome.registered = true;
                    let (resp_tx, resp_rx) = channel::unbounded::<Bytes>();
                    let (probe_tx, probe_rx) = channel::unbounded::<ProbeReply>();
                    let sent = ctx
                        .send(ToCloud::Register {
                            session: r.session,
                            link: r.link,
                            resp_tx,
                            probe_tx,
                        })
                        .is_ok();
                    if sent {
                        let ftx_a = Arc::clone(&ftx);
                        forwarders.push(std::thread::spawn(move || {
                            while let Ok(b) = resp_rx.recv() {
                                let mut payload = Vec::with_capacity(1 + b.len());
                                payload.push(tag::ANSWER);
                                payload.extend_from_slice(&b);
                                let _ = send_locked(&ftx_a, &payload);
                            }
                        }));
                        let ftx_p = Arc::clone(&ftx);
                        forwarders.push(std::thread::spawn(move || {
                            while let Ok(r) = probe_rx.recv() {
                                let reply = WireProbeReply {
                                    admitted: r.admitted,
                                    queue_depth: r.queue_depth,
                                };
                                let _ = send_locked(&ftx_p, &msg(tag::PROBE_REPLY, &reply));
                            }
                        }));
                    }
                    sent
                }
                Err(_) => false,
            },
            tag::SUBMIT => match wire::decode_frame::<WireSubmit>(&inner) {
                Ok(s) => {
                    let header = wire::encode_frame(&s.header);
                    ctx.send(ToCloud::Frame(header, Arc::new(s.scene))).is_ok()
                }
                Err(_) => false,
            },
            tag::PROBE => match wire::decode_frame::<WireProbe>(&inner) {
                Ok(p) => ctx
                    .send(ToCloud::Probe {
                        session: p.session,
                        now: p.now,
                    })
                    .is_ok(),
                Err(_) => false,
            },
            tag::FLUSH => ctx.send(ToCloud::Flush).is_ok(),
            tag::DEREGISTER => match wire::decode_frame::<WireDeregister>(&inner) {
                Ok(d) => ctx.send(ToCloud::Deregister { session: d.session }).is_ok(),
                Err(_) => false,
            },
            tag::BYE => {
                clean = true;
                false
            }
            _ => false,
        };
        if !ok {
            break;
        }
    }
    outcome.clean = clean;
    let _ = ctx.send(ToCloud::Shutdown);
    drop(ctx);
    if let Ok(stats) = worker.join() {
        outcome.stats = Some(stats);
    }
    for f in forwarders {
        let _ = f.join();
    }
    outcome
}

/// Runs a cloud node: accepts connections on `listener` and serves each on
/// its own handler thread (see [`serve_connection`]) until `stop` is set
/// (wake the accept loop with [`Listener::waker`]) or
/// [`ServeOptions::expect_sessions`] connections completed.
///
/// Returns the node's merged [`NodeStats`] after every handler finished.
pub fn serve(
    listener: &mut dyn Listener,
    config: &CloudConfig,
    big: &Arc<dyn Detector + Send + Sync>,
    opts: &ServeOptions,
    stop: &AtomicBool,
) -> NodeStats {
    if let Some(a) = &config.autoscale {
        a.assert_valid();
    }
    let waker = listener.waker();
    let agg = Mutex::new(NodeStats::default());
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => break,
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let (agg, completed, waker) = (&agg, &completed, &waker);
        scope.spawn(move || {
            let outcome = serve_connection(conn, config, big, opts);
            let counted = outcome.registered;
            agg.lock()
                .unwrap_or_else(|e| e.into_inner())
                .absorb(outcome);
            if counted {
                let done = completed.fetch_add(1, Ordering::SeqCst) + 1;
                if opts.expect_sessions.is_some_and(|n| done >= n) {
                    stop.store(true, Ordering::SeqCst);
                    waker();
                }
            }
        });
    });
    agg.into_inner().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_pair_round_trips_frames() {
        let (a, b) = memory_pair();
        let (mut atx, _arx) = Box::new(a).split();
        let (_btx, mut brx) = Box::new(b).split();
        atx.send(b"hello frame").unwrap();
        let got = brx.recv().unwrap().unwrap();
        assert_eq!(&got[..], b"hello frame");
        drop(atx);
        assert!(brx.recv().unwrap().is_none());
    }

    #[test]
    fn memory_recv_timeout_times_out() {
        let (a, b) = memory_pair();
        let (_atx, _arx) = Box::new(a).split();
        let (_btx, mut brx) = Box::new(b).split();
        let err = brx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn tcp_loopback_round_trips_frames_across_splits() {
        let mut listener = TcpWireListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let (mut tx, mut rx) = conn.split();
            while let Some(frame) = rx.recv().unwrap() {
                tx.send(&frame).unwrap(); // echo
            }
        });
        let client = Box::new(TcpTransport::dial(&addr).unwrap());
        let (mut tx, mut rx) = client.split();
        for size in [0usize, 1, 7, 4096, 100_000] {
            let payload = vec![0xA5u8; size];
            tx.send(&payload).unwrap();
            let echoed = rx.recv().unwrap().unwrap();
            assert_eq!(&echoed[..], &payload[..]);
        }
        drop(tx);
        drop(rx);
        server.join().unwrap();
    }

    #[test]
    fn oversized_hello_is_refused_via_limit() {
        // An inner frame whose payload bursts MAX_HELLO_BYTES.
        let big = wire::encode_frame(&vec![7u8; 2 * MAX_HELLO_BYTES]);
        let mut payload = Vec::with_capacity(1 + big.len());
        payload.push(tag::HELLO);
        payload.extend_from_slice(&big);
        let refused = parse_hello(&Bytes::from(payload)).unwrap_err();
        assert_eq!(refused.reason, RefuseReason::OversizedHello);
    }

    #[test]
    fn bad_magic_and_bad_tag_are_refused() {
        let wrong_magic = msg(
            tag::HELLO,
            &Hello {
                magic: 0xdead_beef,
                protocol: PROTOCOL_VERSION,
                session: 0,
            },
        );
        let refused = parse_hello(&Bytes::from(wrong_magic)).unwrap_err();
        assert_eq!(refused.reason, RefuseReason::BadMagic);

        let not_hello = msg(tag::SUBMIT, &7u32);
        let refused = parse_hello(&Bytes::from(not_hello)).unwrap_err();
        assert_eq!(refused.reason, RefuseReason::MalformedHello);
    }

    #[test]
    fn memory_transport_session_is_bit_identical_to_channel_path() {
        use crate::{CloudServer, DifficultCaseDiscriminator};
        use datagen::{Dataset, DatasetProfile, SplitId};
        use modelzoo::{ModelKind, SimDetector};

        let data = Dataset::generate("conf", &DatasetProfile::helmet(), 12, 9);
        let small = SimDetector::new(ModelKind::VggLiteSsd, SplitId::Helmet, 2);
        let big: Arc<dyn Detector + Send + Sync> =
            Arc::new(SimDetector::new(ModelKind::SsdVgg16, SplitId::Helmet, 2));
        let cfg = SessionConfig {
            frame_size: (96, 96),
            ..SessionConfig::new(2)
        };

        // Channel path: a fresh server and one session (id 0).
        let mut cloud = CloudServer::spawn(CloudConfig::default(), Arc::clone(&big));
        let mut sess = cloud.connect(
            cfg.clone(),
            &small,
            Box::new(DifficultCaseDiscriminator::default()),
        );
        for scene in data.iter() {
            let t = sess.submit(scene);
            sess.poll(t).expect("frame resolves");
        }
        let want = sess.drain();
        drop(sess);
        let want_stats = cloud.shutdown();

        // The same session over the in-memory transport.
        let (mut listener, connector) = memory_listener();
        let config = CloudConfig::default();
        let big2 = Arc::clone(&big);
        let server = std::thread::spawn(move || {
            let opts = ServeOptions {
                expect_sessions: Some(1),
                ..ServeOptions::default()
            };
            let stop = AtomicBool::new(false);
            serve(&mut listener, &config, &big2, &opts, &stop)
        });
        let remote = RemoteCloud::connect(
            Box::new(connector.connect().unwrap()),
            0,
            ConnectOptions::default(),
        )
        .unwrap();
        let mut sess = remote.attach(cfg, &small, Box::new(DifficultCaseDiscriminator::default()));
        for scene in data.iter() {
            let t = sess.submit(scene);
            sess.poll(t).expect("frame resolves over transport");
        }
        let got = sess.drain();
        drop(sess);
        remote.close();
        let stats = server.join().unwrap();

        assert_eq!(got, want);
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.aborted, 0);
        assert_eq!(stats.cloud.served, want_stats.served);
    }

    #[test]
    fn version_mismatch_surfaces_as_typed_error() {
        let (mut listener, connector) = memory_listener();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let (tx, mut rx) = conn.split();
            let ftx = Arc::new(Mutex::new(tx));
            let first = rx.recv().unwrap().unwrap();
            let refused = parse_hello(&first).unwrap_err();
            assert_eq!(refused.reason, RefuseReason::Version);
            send_locked(&ftx, &msg(tag::REFUSED, &refused)).unwrap();
        });
        let conn: Box<dyn Transport> = Box::new(connector.connect().unwrap());
        let (mut tx, mut rx) = conn.split();
        let hello = Hello {
            magic: HELLO_MAGIC,
            protocol: 999,
            session: 3,
        };
        let err = client_handshake(&mut *tx, &mut *rx, &hello, Duration::from_secs(5)).unwrap_err();
        match err {
            HandshakeError::VersionMismatch { server, client } => {
                assert_eq!(server, PROTOCOL_VERSION);
                assert_eq!(client, 999);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        server.join().unwrap();
    }
}
